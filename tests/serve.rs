//! Cross-crate integration for the serving layer (DESIGN.md §13):
//!
//! * batched multi-source personalized PageRank is **bitwise** equal to
//!   one-at-a-time solves across a corpus of graph shapes;
//! * a reused [`SpmvWorkspace`] matches the one-shot entry point bitwise
//!   across the corpus × thread counts;
//! * [`Server`] responses are deterministic under seeded concurrent load —
//!   two servers fed the same seeded request set from many client threads
//!   answer identically, regardless of how requests interleave into batches;
//! * invalid input gets an error response and the server keeps serving.

use hipa::algos::{
    personalized_pagerank, spmv_partition_centric, teleport_from_seeds, PersonalizedConfig,
    PprSolver, SpmvWorkspace,
};
use hipa::prelude::*;
use hipa::serve::{
    edge_list_of, loadgen::request_for, LoadConfig, Request, Response, ServeConfig, Server,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn graphs() -> Vec<(&'static str, DiGraph)> {
    use hipa::graph::gen::*;
    vec![
        ("cycle", DiGraph::from_edge_list(&cycle(64))),
        ("star", DiGraph::from_edge_list(&star(40))),
        ("path-dangling", DiGraph::from_edge_list(&path(50))),
        ("rmat", hipa::graph::datasets::small_test_graph(7)),
        ("er", DiGraph::from_edge_list(&erdos_renyi(300, 2400, 5))),
    ]
}

#[test]
fn batched_ppr_is_bitwise_equal_to_one_at_a_time() {
    for (gname, g) in graphs() {
        let n = g.num_vertices();
        let cfg = PersonalizedConfig {
            iterations: 30,
            threads: 3,
            verts_per_partition: 32,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let teleports: Vec<Vec<f32>> = (0..9)
            .map(|_| {
                let seeds: Vec<u32> =
                    (0..rng.gen_range(1..4usize)).map(|_| rng.gen_range(0..n as u32)).collect();
                teleport_from_seeds(n, &seeds).unwrap()
            })
            .collect();
        let solo: Vec<_> = teleports.iter().map(|t| personalized_pagerank(&g, t, &cfg)).collect();
        let mut solver = PprSolver::new(&g, &cfg);
        let batch = solver.solve_batch(&teleports);
        for (i, (b, s)) in batch.iter().zip(&solo).enumerate() {
            assert_eq!(b.ranks, s.ranks, "{gname}: batch member {i} != solo solve");
            assert_eq!(b.iterations_run, s.iterations_run, "{gname}: member {i} iterations");
            assert_eq!(b.converged, s.converged, "{gname}: member {i} convergence");
        }
    }
}

#[test]
fn workspace_reuse_matches_one_shot_across_corpus_and_threads() {
    for (gname, g) in graphs() {
        let n = g.num_vertices();
        let x: Vec<f32> = (0..n).map(|v| 1.0 + (v % 13) as f32 * 0.25).collect();
        for threads in [1, 2, 4] {
            let want = spmv_partition_centric(&g, &x, threads, 32);
            let mut ws = SpmvWorkspace::new(&g, threads, 32);
            for round in 0..3 {
                let got = ws.run(&x);
                assert_eq!(got, want, "{gname} t={threads} round {round}: reuse diverged");
            }
        }
    }
}

/// Replays a seeded request set against a fresh server and returns every
/// response in submission order. `users` client threads submit concurrently
/// (so admission order and batch composition vary run to run), but each
/// response must not: edge updates are excluded from the mix, so all
/// requests hit the same epoch, and batch members are bitwise-independent
/// of their batch. A tiny `batch_max` forces multi-chunk batching.
fn serve_responses(g: &DiGraph, users: usize, batch_max: usize) -> Vec<Vec<Response>> {
    let server = Server::start(
        edge_list_of(g),
        ServeConfig {
            threads: 2,
            verts_per_partition: 32,
            batch_max,
            ppr: PersonalizedConfig { iterations: 15, ..Default::default() },
            ..Default::default()
        },
    );
    let lcfg = LoadConfig {
        users,
        requests_per_user: 12,
        seed: 99,
        mix: (2, 3, 0), // reads only: responses must not depend on ordering
        topk: 5,
        ppr_sources_max: 2,
        invalid_share: 0.2, // error path exercised under load
        mean_gap_ns: 0,
    };
    let n = g.num_vertices();
    // A dedicated shim pool sized to `users` (not bare std::thread — audit
    // rule 6 — and not the global pool, where jobs parked in Ticket::wait
    // could starve other tests' parallel work).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(users.max(1))
        .build()
        .expect("build client pool");
    let results: Vec<std::sync::Mutex<Vec<Response>>> =
        (0..users).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    pool.scope(|scope| {
        for user in 0..users {
            let (server, lcfg, results) = (&server, &lcfg, &results);
            scope.spawn(move |_| {
                let tickets: Vec<_> = (0..lcfg.requests_per_user)
                    .map(|i| server.submit(request_for(lcfg, n, user, i)))
                    .collect();
                *results[user].lock().unwrap() =
                    tickets.into_iter().map(|t| t.wait()).collect::<Vec<Response>>();
            });
        }
    });
    results.into_iter().map(|m| m.into_inner().unwrap()).collect()
}

#[test]
fn serve_responses_are_deterministic_under_concurrent_load() {
    let g = hipa::graph::datasets::small_test_graph(21);
    let a = serve_responses(&g, 4, 3);
    let b = serve_responses(&g, 4, 3);
    assert_eq!(a, b, "same seeded load, different responses");
    // Batch composition is also irrelevant: replaying with a different
    // client-thread split and batch limit gives the same per-request
    // responses (requests are a pure function of (seed, user, index), and
    // users 0..2 of the 4-user run exist identically in the 2-user run).
    let c = serve_responses(&g, 2, 7);
    assert_eq!(a[..2], c[..], "responses depend on batch composition");
    // The seeded mix above includes invalid seeds; the server answered all
    // of them (with errors), proving the error path doesn't wedge serving.
    let errors = a.iter().flatten().filter(|r| matches!(r, Response::Error { .. })).count();
    assert!(errors > 0, "seeded mix was expected to exercise the error path");
}

#[test]
fn server_survives_a_full_mixed_epoch_cycle() {
    let g = hipa::graph::datasets::small_test_graph(33);
    let n = g.num_vertices() as u32;
    let server = Server::start(
        edge_list_of(&g),
        ServeConfig { threads: 2, verts_per_partition: 64, ..Default::default() },
    );
    // Reads at epoch 0.
    let before = match server.call(Request::TopK { k: 8 }) {
        Response::TopK { entries, epoch } => {
            assert_eq!(epoch, 0);
            entries
        }
        other => panic!("unexpected {other:?}"),
    };
    // An invalid seed mid-stream must not take the server down.
    assert!(matches!(
        server.call(Request::Ppr { sources: vec![n + 7], k: 3 }),
        Response::Error { .. }
    ));
    // Commit a delta epoch, then read again.
    match server.call(Request::AddEdges { edges: vec![(0, n - 1), (1, n - 2)] }) {
        Response::EdgesCommitted { accepted, epoch } => {
            assert_eq!((accepted, epoch), (2, 1));
        }
        other => panic!("unexpected {other:?}"),
    }
    match server.call(Request::TopK { k: 8 }) {
        Response::TopK { entries, epoch } => {
            assert_eq!(epoch, 1);
            assert_ne!(entries, before, "delta epoch must re-rank");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(server.stats().epochs.get(), 1);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any batch split of a random teleport set yields the same results as
    /// solo solves (and hence as any other split).
    #[test]
    fn prop_batch_split_is_invisible(seed in 0u64..200, k in 2usize..6) {
        let g = hipa::graph::datasets::small_test_graph(9);
        let n = g.num_vertices();
        let cfg = PersonalizedConfig {
            iterations: 12,
            threads: 2,
            verts_per_partition: 64,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let teleports: Vec<Vec<f32>> = (0..k)
            .map(|_| teleport_from_seeds(n, &[rng.gen_range(0..n as u32)]).unwrap())
            .collect();
        let mut solver = PprSolver::new(&g, &cfg);
        let together = solver.solve_batch(&teleports);
        for (i, t) in teleports.iter().enumerate() {
            let solo = personalized_pagerank(&g, t, &cfg);
            prop_assert_eq!(&together[i].ranks, &solo.ranks);
        }
    }
}
