//! End-to-end proof that the `threads` knob is honoured now that the rayon
//! shim runs persistent pools: an engine run with `threads = 2` never has
//! more than two OS threads executing pool work, spawns exactly two resident
//! workers, and reports `pool.*` counters in its trace.
//!
//! The shim's [`rayon::pool_stats`] counters are process-wide and cumulative
//! (`max_active` is a high-watermark that never resets), so this file holds
//! a SINGLE `#[test]` — its own test binary, hence its own process — and
//! every parallel region in that process is width-bounded by 2.

use hipa::prelude::*;
use rayon::prelude::*;

const THREADS: usize = 2;

#[test]
fn thread_knob_bounds_pool_concurrency_end_to_end() {
    // Graph construction stays on the sequential CSR builder, so no pool
    // exists yet and the deltas below belong to the engine run alone.
    let g = hipa::graph::datasets::small_test_graph(7);
    let s0 = rayon::pool_stats();
    assert_eq!(s0.workers_spawned, 0, "no pool activity before the run");

    let cfg = PageRankConfig::default().with_iterations(6);
    let opts = NativeOpts::new(THREADS, 1024).with_trace(true);
    let run = hipa_baselines::vpr::run_native(&g, &cfg, &opts);
    let s1 = rayon::pool_stats();

    // The regression this file pins down: the old shim spawned `threads`
    // fresh OS threads per scope (one scope per iteration); the pool spawns
    // exactly `threads` resident workers once and reuses them.
    assert_eq!(s1.workers_spawned - s0.workers_spawned, THREADS as u64);
    assert_eq!(s1.jobs - s0.jobs, (THREADS * run.iterations_run) as u64);
    // `num_threads(2)` is a hard concurrency bound, not a hint.
    assert!(
        s1.max_active <= THREADS as u64,
        "pool ran {} threads concurrently under a width-{THREADS} pool",
        s1.max_active
    );

    // The run's trace carries the pool attribution (hipa-obs bridge).
    let trace = run.trace.expect("trace requested");
    let counter = |name: &str| {
        trace
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .1
    };
    assert_eq!(counter("pool.width"), THREADS as u64);
    assert_eq!(counter("pool.workers_spawned"), THREADS as u64);
    assert_eq!(counter("pool.jobs"), (THREADS * run.iterations_run) as u64);

    // `with_min_len` bounds dispatch overhead: 1000 items at min_len 100 on
    // an installed width-2 pool is exactly ten chunk claims.
    let pool = rayon::ThreadPoolBuilder::new().num_threads(THREADS).build().unwrap();
    pool.install(|| {
        assert_eq!(rayon::current_num_threads(), THREADS);
        let s2 = rayon::pool_stats();
        let items = vec![1u32; 1000];
        items.par_iter().with_min_len(100).for_each(|&x| assert_eq!(x, 1));
        let s3 = rayon::pool_stats();
        assert_eq!(s3.tasks_claimed - s2.tasks_claimed, 10);
    });

    // Still bounded after every region in the process has run.
    assert!(rayon::pool_stats().max_active <= THREADS as u64);
}
