//! Property-based tests on PageRank invariants, run through the full HiPa
//! engine (not just the oracle).

use hipa::core::reference::{max_rel_error, reference_pagerank};
use hipa::prelude::*;
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = DiGraph> {
    (2usize..120, prop::collection::vec((0u32..120, 0u32..120), 1..600)).prop_map(|(n, pairs)| {
        let edges: Vec<(u32, u32)> =
            pairs.into_iter().map(|(s, d)| (s % n as u32, d % n as u32)).collect();
        let mut el = EdgeList::new(n, edges.into_iter().map(Into::into).collect());
        el.dedup_simplify();
        DiGraph::from_edge_list(&EdgeList::new(n, el.into_edges()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under the Redistribute policy the rank vector stays a probability
    /// distribution (non-negative, sums to 1) at any iteration count.
    #[test]
    fn redistribute_preserves_simplex(g in graph_strategy(), iters in 0usize..15) {
        let cfg = PageRankConfig::default()
            .with_iterations(iters)
            .with_dangling(DanglingPolicy::Redistribute);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(3, 256));
        let sum: f64 = run.ranks.iter().map(|&r| r as f64).sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "sum {}", sum);
        prop_assert!(run.ranks.iter().all(|&r| r >= 0.0));
    }

    /// Under Ignore the total mass is non-increasing and bounded by 1.
    #[test]
    fn ignore_mass_bounded(g in graph_strategy(), iters in 1usize..12) {
        let cfg = PageRankConfig::default().with_iterations(iters);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(2, 256));
        let sum: f64 = run.ranks.iter().map(|&r| r as f64).sum();
        prop_assert!(sum <= 1.0 + 1e-4, "sum {}", sum);
        prop_assert!(run.ranks.iter().all(|&r| r >= 0.0));
    }

    /// Damping 0 collapses to the uniform vector after one iteration.
    #[test]
    fn zero_damping_is_uniform(g in graph_strategy()) {
        let cfg = PageRankConfig::new(0.0, 3);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(2, 256));
        let n = g.num_vertices() as f32;
        prop_assert!(run.ranks.iter().all(|&r| (r - 1.0 / n).abs() < 1e-6));
    }

    /// Every vertex retains at least the teleport floor (1-d)/n.
    #[test]
    fn teleport_floor_holds(g in graph_strategy(), iters in 1usize..10) {
        let cfg = PageRankConfig::default().with_iterations(iters);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(2, 256));
        let floor = 0.15 / g.num_vertices() as f32;
        prop_assert!(run.ranks.iter().all(|&r| r >= floor * 0.999), "floor violated");
    }

    /// The engine tracks the oracle on arbitrary graphs.
    #[test]
    fn engine_matches_oracle(g in graph_strategy()) {
        let cfg = PageRankConfig::default().with_iterations(8);
        let oracle = reference_pagerank(&g, &cfg);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(4, 128));
        prop_assert!(max_rel_error(&run.ranks, &oracle) < 5e-3);
    }
}
