//! Property-based tests on PageRank invariants, run through the full HiPa
//! engine (not just the oracle).

use hipa::core::reference::{max_rel_error, reference_pagerank};
use hipa::prelude::*;
use hipa_baselines::all_engines;
use proptest::prelude::*;

/// L1 delta of one additional Eq. 1 power-iteration step, applied in f64 to
/// an engine's final f32 ranks. A genuinely converged vector must move by
/// less than the tolerance when iterated once more (the damped operator
/// contracts the L1 residual by at least the damping factor).
fn one_more_iteration_l1_delta(g: &DiGraph, cfg: &PageRankConfig, ranks: &[f32]) -> f64 {
    let n = g.num_vertices();
    let d = cfg.damping as f64;
    let inv_n = 1.0 / n as f64;
    let dangling_sum: f64 = match cfg.dangling {
        DanglingPolicy::Ignore => 0.0,
        DanglingPolicy::Redistribute => {
            (0..n).filter(|&v| g.out_degree(v as u32) == 0).map(|v| ranks[v] as f64).sum()
        }
    };
    let base = (1.0 - d) * inv_n + d * dangling_sum * inv_n;
    let mut delta = 0.0f64;
    for v in 0..n {
        let mut acc = 0.0f64;
        for &u in g.in_csr().neighbors(v as u32) {
            acc += ranks[u as usize] as f64 / g.out_degree(u) as f64;
        }
        delta += (base + d * acc - ranks[v] as f64).abs();
    }
    delta
}

fn graph_strategy() -> impl Strategy<Value = DiGraph> {
    (2usize..120, prop::collection::vec((0u32..120, 0u32..120), 1..600)).prop_map(|(n, pairs)| {
        let edges: Vec<(u32, u32)> =
            pairs.into_iter().map(|(s, d)| (s % n as u32, d % n as u32)).collect();
        let mut el = EdgeList::new(n, edges.into_iter().map(Into::into).collect());
        el.dedup_simplify();
        DiGraph::from_edge_list(&EdgeList::new(n, el.into_edges()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under the Redistribute policy the rank vector stays a probability
    /// distribution (non-negative, sums to 1) at any iteration count.
    #[test]
    fn redistribute_preserves_simplex(g in graph_strategy(), iters in 0usize..15) {
        let cfg = PageRankConfig::default()
            .with_iterations(iters)
            .with_dangling(DanglingPolicy::Redistribute);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(3, 256));
        let sum: f64 = run.ranks.iter().map(|&r| r as f64).sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "sum {}", sum);
        prop_assert!(run.ranks.iter().all(|&r| r >= 0.0));
    }

    /// Under Ignore the total mass is non-increasing and bounded by 1.
    #[test]
    fn ignore_mass_bounded(g in graph_strategy(), iters in 1usize..12) {
        let cfg = PageRankConfig::default().with_iterations(iters);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(2, 256));
        let sum: f64 = run.ranks.iter().map(|&r| r as f64).sum();
        prop_assert!(sum <= 1.0 + 1e-4, "sum {}", sum);
        prop_assert!(run.ranks.iter().all(|&r| r >= 0.0));
    }

    /// Damping 0 collapses to the uniform vector after one iteration.
    #[test]
    fn zero_damping_is_uniform(g in graph_strategy()) {
        let cfg = PageRankConfig::new(0.0, 3);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(2, 256));
        let n = g.num_vertices() as f32;
        prop_assert!(run.ranks.iter().all(|&r| (r - 1.0 / n).abs() < 1e-6));
    }

    /// Every vertex retains at least the teleport floor (1-d)/n.
    #[test]
    fn teleport_floor_holds(g in graph_strategy(), iters in 1usize..10) {
        let cfg = PageRankConfig::default().with_iterations(iters);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(2, 256));
        let floor = 0.15 / g.num_vertices() as f32;
        prop_assert!(run.ranks.iter().all(|&r| r >= floor * 0.999), "floor violated");
    }

    /// For random CSRs and random tolerances, `converged == true` is an
    /// honest claim for every engine: one extra reference iteration from the
    /// reported ranks moves them by less than the tolerance. (The damped
    /// operator contracts the L1 residual by ≥ the damping factor, leaving
    /// ample headroom over f32 rounding noise at these tolerances.)
    #[test]
    fn converged_flag_implies_true_fixed_point(
        g in graph_strategy(),
        // Lower bound sits above the f32 oscillation floor of worst-case
        // hub-heavy graphs (~3e-6 L1) so every engine can actually converge.
        tol_exp in -4.5f64..-2.0,
        redistribute in any::<bool>(),
    ) {
        let tol = 10f64.powf(tol_exp) as f32;
        let policy = if redistribute {
            DanglingPolicy::Redistribute
        } else {
            DanglingPolicy::Ignore
        };
        let cfg = PageRankConfig::default()
            .with_iterations(300)
            .with_dangling(policy)
            .with_tolerance(tol);
        for e in all_engines() {
            let run = e.run_native(&g, &cfg, &NativeOpts::new(3, 256));
            prop_assert!(run.converged, "{} should converge within 300 iters", e.name());
            prop_assert!(run.iterations_run <= 300);
            let extra = one_more_iteration_l1_delta(&g, &cfg, &run.ranks);
            prop_assert!(
                extra < tol as f64,
                "{}: extra-iteration L1 delta {extra} ≥ tol {tol}",
                e.name()
            );
        }
    }

    /// The engine tracks the oracle on arbitrary graphs.
    #[test]
    fn engine_matches_oracle(g in graph_strategy()) {
        let cfg = PageRankConfig::default().with_iterations(8);
        let oracle = reference_pagerank(&g, &cfg);
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(4, 128));
        prop_assert!(max_rel_error(&run.ranks, &oracle) < 5e-3);
    }
}
