//! Property-based tests for the rayon shim's persistent work-stealing pool:
//! pooled `par_iter` / `par_iter_mut` / `par_chunks_mut` must be
//! bit-identical to sequential execution for every thread count, `min_len`
//! hint, and input shape — including oversubscription (far more tasks than
//! workers) and nested scopes.

use proptest::prelude::*;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A cheap injective-ish mixer so ordering or duplication bugs change the
/// output instead of cancelling out.
fn mix(i: usize, x: u32) -> u32 {
    (x ^ i as u32).wrapping_mul(0x9e37_79b9).rotate_left(7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `par_iter_mut` on a pool of any width applies an element-wise update
    /// bit-identically to the sequential loop.
    #[test]
    fn pooled_par_iter_mut_matches_sequential(
        data in prop::collection::vec(any::<u32>(), 0..3000),
        threads in 1usize..6,
        min_len in 0usize..400,
    ) {
        let mut expect = data.clone();
        for (i, x) in expect.iter_mut().enumerate() {
            *x = mix(i, *x);
        }
        let mut got = data;
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            got.par_iter_mut().enumerate().with_min_len(min_len).for_each(|(i, x)| *x = mix(i, *x));
        });
        prop_assert_eq!(got, expect);
    }

    /// `par_chunks_mut` sees exactly the chunks `chunks_mut` would: an
    /// in-chunk prefix sum (order-sensitive within a chunk, independent
    /// across chunks) lands bit-identically.
    #[test]
    fn pooled_par_chunks_mut_matches_sequential(
        data in prop::collection::vec(any::<u32>(), 1..3000),
        chunk in 1usize..700,
        threads in 1usize..6,
    ) {
        let mut expect = data.clone();
        for c in expect.chunks_mut(chunk) {
            for i in 1..c.len() {
                c[i] = c[i].wrapping_add(c[i - 1]);
            }
        }
        let mut got = data;
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            got.par_chunks_mut(chunk).for_each(|c| {
                for i in 1..c.len() {
                    c[i] = c[i].wrapping_add(c[i - 1]);
                }
            });
        });
        prop_assert_eq!(got, expect);
    }

    /// Read-side: a pooled `par_chunks` sum equals the sequential sum, and a
    /// pooled `par_iter` reduction into an atomic covers every element
    /// exactly once.
    #[test]
    fn pooled_reads_cover_every_element_once(
        data in prop::collection::vec(any::<u32>(), 0..3000),
        threads in 1usize..6,
    ) {
        let expect: u64 = data.iter().map(|&x| x as u64).sum();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let total = AtomicU64::new(0);
        pool.install(|| {
            data.par_chunks(97).for_each(|c| {
                let s: u64 = c.iter().map(|&x| x as u64).sum();
                // ordering: relaxed (commutative tally; published by the
                // scope join inside `for_each`).
                total.fetch_add(s, Ordering::Relaxed);
            });
        });
        // ordering: relaxed (read after the parallel region joined).
        prop_assert_eq!(total.load(Ordering::Relaxed), expect);
    }
}

/// Oversubscription: many more spawned tasks than workers — every task runs
/// exactly once and the pool width stays a hard concurrency bound.
#[test]
fn oversubscribed_scope_runs_every_task_once_bounded() {
    const TASKS: usize = 256;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let hits: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
    let active = AtomicUsize::new(0);
    let high = AtomicUsize::new(0);
    pool.scope(|s| {
        for (i, h) in hits.iter().enumerate() {
            let (active, high) = (&active, &high);
            s.spawn(move |_| {
                // ordering: relaxed (test tallies; the scope join publishes
                // every count before the asserts read them).
                let now = active.fetch_add(1, Ordering::Relaxed) + 1;
                // ordering: relaxed (same tally set as above).
                high.fetch_max(now, Ordering::Relaxed);
                // ordering: relaxed (same tally set as above).
                h.fetch_add(i + 1, Ordering::Relaxed);
                // ordering: relaxed (same tally set as above).
                active.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
    for (i, h) in hits.iter().enumerate() {
        // ordering: relaxed (read after join — no concurrent writers left).
        assert_eq!(h.load(Ordering::Relaxed), i + 1, "task {i} must run exactly once");
    }
    // ordering: relaxed (read after join — no concurrent writers left).
    assert!(high.load(Ordering::Relaxed) <= 2, "width-2 pool exceeded its bound");
}

/// Nested scopes on a saturated pool: tasks that open inner scopes complete
/// via help-while-waiting instead of deadlocking, and inner results are
/// bit-identical to sequential.
#[test]
fn nested_scopes_match_sequential() {
    const OUTER: usize = 8;
    const INNER: usize = 64;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let out = Mutex::new(vec![0u64; OUTER]);
    pool.scope(|s| {
        for o in 0..OUTER {
            let out = &out;
            s.spawn(move |_| {
                // Inner parallel region from inside a pool worker: a fresh
                // scope on the same pool (free `rayon::scope` resolves to
                // the worker's own pool).
                let mut inner = vec![0u32; INNER];
                inner.par_iter_mut().enumerate().for_each(|(i, x)| *x = mix(i, o as u32));
                let sum: u64 = inner.iter().map(|&x| x as u64).sum();
                out.lock().unwrap()[o] = sum;
            });
        }
    });
    let expect: Vec<u64> =
        (0..OUTER).map(|o| (0..INNER).map(|i| mix(i, o as u32) as u64).sum()).collect();
    assert_eq!(out.into_inner().unwrap(), expect);
}
