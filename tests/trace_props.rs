//! Cross-crate tests of the observability layer: counter exactness under
//! concurrency, the zero-overhead-when-off contract, and the native/sim
//! `RunTrace` agreement for every engine.

use hipa::obs::{Recorder, RunTrace, TraceMeta};
use hipa::prelude::*;
use hipa_baselines::all_engines;
use proptest::prelude::*;

fn finish_trace(rec: Recorder) -> RunTrace {
    rec.finish(TraceMeta::default()).expect("enabled recorder must produce a trace")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counter totals are exact whatever the interleaving: `threads` workers
    /// each add their own list of increments; the counter must end at the
    /// grand total.
    #[test]
    fn counters_exact_under_concurrent_increments(
        per_thread in prop::collection::vec(prop::collection::vec(0u64..1000, 1..40), 1..8)
    ) {
        let rec = Recorder::new(true);
        let expected: u64 = per_thread.iter().flatten().sum();
        rayon::scope(|s| {
            for incs in per_thread {
                let rec = &rec;
                s.spawn(move |_| {
                    let c = rec.counter("hits");
                    for v in incs {
                        c.add(v);
                    }
                });
            }
        });
        let trace = finish_trace(rec);
        prop_assert_eq!(trace.counter("hits"), Some(expected));
    }
}

/// The disabled recorder produces no trace at all, and its handles are
/// inert: spans, counters and gauges all vanish.
#[test]
fn disabled_recorder_emits_nothing() {
    let rec = Recorder::new(false);
    assert!(!rec.enabled());
    let t = rec.start();
    rec.end(t, "phase", 0, 0);
    rec.counter("c").incr();
    rec.gauge(0, Some(1.0), None);
    let mut spans = rec.thread_spans(0);
    let t = spans.start();
    spans.end(t, "phase", 0);
    spans.flush(&rec);
    assert!(rec.finish(TraceMeta::default()).is_none());
}

/// Disabled engines return `trace: None` on both paths; the ranks they
/// produce are bitwise unaffected by turning tracing on.
#[test]
fn tracing_never_perturbs_ranks() {
    let g = hipa::graph::datasets::small_test_graph(21);
    for cfg in [
        PageRankConfig::default().with_iterations(6),
        PageRankConfig::default().with_iterations(30).with_tolerance(1e-5),
    ] {
        for e in all_engines() {
            let plain = e.run_native(&g, &cfg, &NativeOpts::new(4, 2048));
            let traced = e.run_native(&g, &cfg, &NativeOpts::new(4, 2048).with_trace(true));
            assert!(plain.trace.is_none(), "{}: trace off must yield None", e.name());
            assert_eq!(plain.ranks, traced.ranks, "{} native ranks drifted", e.name());

            let sopts =
                SimOpts::new(MachineSpec::tiny_test()).with_threads(4).with_partition_bytes(2048);
            let plain_s = e.run_sim(&g, &cfg, &sopts);
            let traced_s = e.run_sim(&g, &cfg, &sopts.clone().with_trace(true));
            assert!(plain_s.trace.is_none(), "{}: sim trace off must yield None", e.name());
            assert_eq!(plain_s.ranks, traced_s.ranks, "{} sim ranks drifted", e.name());
            assert_eq!(
                plain_s.report.cycles,
                traced_s.report.cycles,
                "{}: tracing must not change simulated cycles",
                e.name()
            );
        }
    }
}

/// Every engine's native and sim traces agree on the run's shape: same
/// iteration count, same converged flag, residual recorded every iteration,
/// and matching residual *values* (both paths execute bit-identical rank
/// updates, and the trace reduction is deterministic).
#[test]
fn native_and_sim_traces_agree() {
    let g = hipa::graph::datasets::small_test_graph(22);
    let cfg = PageRankConfig::default().with_iterations(40).with_tolerance(1e-4);
    for e in all_engines() {
        let nat = e.run_native(&g, &cfg, &NativeOpts::new(4, 2048).with_trace(true));
        let sopts = SimOpts::new(MachineSpec::tiny_test())
            .with_threads(4)
            .with_partition_bytes(2048)
            .with_trace(true);
        let sim = e.run_sim(&g, &cfg, &sopts);
        let nt = nat.trace.expect("native trace");
        let st = sim.trace.expect("sim trace");
        assert_eq!(nt.meta.engine, st.meta.engine);
        assert_eq!(nt.meta.iterations_run, st.meta.iterations_run, "{}", e.name());
        assert_eq!(nt.meta.converged, st.meta.converged, "{}", e.name());
        assert!(nt.meta.converged, "{} should converge at 1e-4 within 40 iters", e.name());
        assert_eq!(nt.iterations.len() as u64, nt.meta.iterations_run);
        assert_eq!(st.iterations.len() as u64, st.meta.iterations_run);
        assert_eq!(nt.time_unit(), "ns");
        assert_eq!(st.time_unit(), "cycles");
        for (a, b) in nt.iterations.iter().zip(&st.iterations) {
            assert_eq!(a.iter, b.iter);
            let (ra, rb) =
                (a.residual.expect("native residual"), b.residual.expect("sim residual"));
            assert_eq!(ra, rb, "{} residual diverged at iter {}", e.name(), a.iter);
        }
    }
}

/// Forward-compat contract (prep for `hipa-obs/v2`): a reader of today's
/// schema must skip unknown object fields anywhere in the document — a
/// future writer may *add* fields freely — but must refuse a bumped schema
/// string outright, because a version bump signals changed semantics.
#[test]
fn trace_parser_skips_unknown_fields_and_rejects_schema_bumps() {
    use hipa::obs::Json;

    let g = hipa::graph::datasets::small_test_graph(24);
    let cfg = PageRankConfig::default().with_iterations(4);
    let sopts = SimOpts::new(MachineSpec::tiny_test()).with_threads(2).with_trace(true);
    let trace = HiPa.run_sim(&g, &cfg, &sopts).trace.expect("sim trace");

    // Inject unknown fields at the top level, into a span, and into an
    // iteration gauge; the parse must come back bitwise-equal.
    let mut v = Json::parse(&trace.to_json()).expect("own JSON parses");
    let inject = |obj: &mut Json, key: &str| {
        if let Json::Obj(fields) = obj {
            fields.push((key.to_string(), Json::Arr(vec![Json::Num(7.0), Json::Null])));
        }
    };
    inject(&mut v, "x_v2_extension");
    if let Some(Json::Arr(spans)) = match &mut v {
        Json::Obj(fields) => fields.iter_mut().find(|(k, _)| k == "spans").map(|(_, s)| s),
        _ => None,
    } {
        inject(&mut spans[0], "x_span_cost_model");
    }
    if let Some(Json::Arr(iters)) = match &mut v {
        Json::Obj(fields) => fields.iter_mut().find(|(k, _)| k == "iterations").map(|(_, s)| s),
        _ => None,
    } {
        inject(&mut iters[0], "x_frontier_bytes");
    }
    let reparsed = RunTrace::from_json(&v.render()).expect("unknown fields must be skipped");
    assert_eq!(reparsed, trace);
    // An array document with decorated members parses too.
    let arr = Json::Arr(vec![v.clone(), Json::parse(&trace.to_json()).unwrap()]);
    let many = RunTrace::parse_many(&arr.render()).expect("array with unknown fields");
    assert_eq!(many, vec![trace.clone(), trace.clone()]);

    // Version bump: hard error naming both schemas.
    let bumped = trace.to_json().replace("hipa-obs/v1", "hipa-obs/v2");
    let err = RunTrace::from_json(&bumped).expect_err("v2 must be rejected");
    assert!(err.contains("hipa-obs/v2"), "error should name the found schema: {err}");
    assert!(err.contains("hipa-obs/v1"), "error should name the supported schema: {err}");
    // And a document with no schema at all is rejected, not guessed at.
    let stripped = trace.to_json().replacen("\"schema\":\"hipa-obs/v1\",", "", 1);
    assert!(RunTrace::from_json(&stripped).expect_err("schema required").contains("schema"));
}

/// Engine traces survive the JSON round trip, one object or as an array.
#[test]
fn engine_traces_round_trip_json() {
    let g = hipa::graph::datasets::small_test_graph(23);
    let cfg = PageRankConfig::default().with_iterations(5).with_tolerance(1e-6);
    let mut traces = Vec::new();
    for e in all_engines() {
        let sopts = SimOpts::new(MachineSpec::tiny_test()).with_threads(2).with_trace(true);
        let run = e.run_sim(&g, &cfg, &sopts);
        traces.push(run.trace.expect("sim trace"));
    }
    for t in &traces {
        let back = RunTrace::from_json(&t.to_json()).expect("round trip");
        assert_eq!(t, &back);
        assert!(!t.render().is_empty());
    }
    let arr = RunTrace::array_to_json(&traces);
    let back = RunTrace::parse_many(&arr).expect("array round trip");
    assert_eq!(traces, back);
}
