//! Property test: PageRank is equivariant under vertex relabelling —
//! running the full HiPa engine on a permuted graph permutes the ranks.
//! This exercises generators, reordering, partitioning and the engine in
//! one property.

use hipa::graph::reorder::random_permutation;
use hipa::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pagerank_is_relabel_equivariant(
        n in 8usize..150,
        edges in prop::collection::vec((0u32..150, 0u32..150), 1..500),
        seed in 0u64..1000,
        threads in 1usize..5,
    ) {
        let pairs: Vec<(u32, u32)> =
            edges.into_iter().map(|(s, d)| (s % n as u32, d % n as u32)).collect();
        let mut el = EdgeList::new(n, pairs.into_iter().map(Into::into).collect());
        el.dedup_simplify();
        let el = EdgeList::new(n, el.into_edges());
        let perm = random_permutation(n, seed);
        let permuted = perm.apply(&el);

        let cfg = PageRankConfig::default().with_iterations(8);
        let opts = NativeOpts::new(threads, 256);
        let r1 = HiPa.run_native(&DiGraph::from_edge_list(&el), &cfg, &opts).ranks;
        let r2 = HiPa.run_native(&DiGraph::from_edge_list(&permuted), &cfg, &opts).ranks;
        for v in 0..n as u32 {
            let a = r1[v as usize];
            let b = r2[perm.map(v) as usize];
            // Partition boundaries differ after relabelling, so summation
            // order differs: compare with float tolerance.
            prop_assert!(
                (a - b).abs() <= 2e-4 * a.abs().max(1e-6),
                "v{} -> {}: {} vs {}", v, perm.map(v), a, b
            );
        }
    }

    #[test]
    fn census_totals_are_relabel_invariant_under_full_shuffle(
        n in 4usize..200,
        edges in prop::collection::vec((0u32..200, 0u32..200), 0..400),
        seed in 0u64..1000,
    ) {
        let pairs: Vec<(u32, u32)> =
            edges.into_iter().map(|(s, d)| (s % n as u32, d % n as u32)).collect();
        let el = EdgeList::new(n, pairs.into_iter().map(Into::into).collect());
        let perm = random_permutation(n, seed);
        let permuted = perm.apply(&el);
        // Edge and degree multisets are preserved.
        prop_assert_eq!(el.num_edges(), permuted.num_edges());
        let g1 = DiGraph::from_edge_list(&el);
        let g2 = DiGraph::from_edge_list(&permuted);
        let mut d1: Vec<u32> = (0..n as u32).map(|v| g1.out_degree(v)).collect();
        let mut d2: Vec<u32> = (0..n as u32).map(|v| g2.out_degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }
}
