//! The dynamic half of the soundness audit (DESIGN.md §10): with the
//! `check-disjoint` feature on, every `SharedSlice` records per-element
//! writer-thread tags and panics on an overlapping write. Running the whole
//! engine corpus under the checker certifies that each engine's partition
//! plan really does keep concurrent writes disjoint — and a deliberately
//! overlapping plan proves the checker is actually armed.
//!
//! Run with: `cargo test -q --features check-disjoint`.
//!
//! disjointness: negative-control plan — the direct `SharedSlice` use below
//! deliberately gives two threads the same index range so the checker's
//! panic path is exercised; the engine runs use each engine's own plan.

#![cfg(feature = "check-disjoint")]

use hipa::core::disjoint::SharedSlice;
use hipa::prelude::*;
use hipa_baselines::all_engines;

fn graphs() -> Vec<(&'static str, DiGraph)> {
    use hipa::graph::gen::*;
    vec![
        ("cycle", DiGraph::from_edge_list(&cycle(64))),
        ("star", DiGraph::from_edge_list(&star(40))),
        ("path-dangling", DiGraph::from_edge_list(&path(50))),
        ("rmat", hipa::graph::datasets::small_test_graph(7)),
        ("er", DiGraph::from_edge_list(&erdos_renyi(300, 2400, 5))),
    ]
}

/// All ten engine paths (five engines, native + simulated) complete under
/// the race checker, with bitwise-identical ranks between the paths and
/// across thread counts — i.e. the tag table neither fires nor perturbs
/// the arithmetic.
#[test]
fn whole_engine_corpus_is_disjoint_under_checker() {
    let machine = MachineSpec::tiny_test();
    for (gname, g) in graphs() {
        for policy in [DanglingPolicy::Ignore, DanglingPolicy::Redistribute] {
            let cfg = PageRankConfig::default().with_iterations(6).with_dangling(policy);
            for e in all_engines() {
                let nat = e.run_native(&g, &cfg, &NativeOpts::new(4, 512));
                let sim = e.run_sim(
                    &g,
                    &cfg,
                    &SimOpts::new(machine.clone()).with_threads(4).with_partition_bytes(512),
                );
                assert_eq!(
                    nat.ranks,
                    sim.ranks,
                    "{} on {gname} ({policy:?}): native != sim under check-disjoint",
                    e.name()
                );
                let one = e.run_native(&g, &cfg, &NativeOpts::new(1, 512));
                assert_eq!(
                    nat.ranks,
                    one.ranks,
                    "{} on {gname} ({policy:?}): thread count changed ranks",
                    e.name()
                );
            }
        }
    }
}

/// The partition-centric extension kernels run under the checker too.
#[test]
fn algo_extensions_are_disjoint_under_checker() {
    let g = hipa::graph::datasets::small_test_graph(23);
    let x: Vec<f32> = (0..g.num_vertices()).map(|v| 1.0 + (v % 7) as f32).collect();
    let want = hipa_algos::spmv_reference(&g, &x);
    let got = hipa_algos::spmv_partition_centric(&g, &x, 4, 128);
    for (v, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!((a - b).abs() <= 1e-3 * b.abs().max(1e-6), "spmv differs at v{v}: {a} vs {b}");
    }
}

/// Negative control: a deliberately overlapping "plan" — two threads given
/// the same vertex range — must panic, and the message must name both
/// thread tags and the clashing index.
#[test]
fn overlapping_plan_is_caught_and_names_both_threads() {
    let n = 128;
    let mut ranks = vec![0.0f32; n];
    let s = SharedSlice::new(&mut ranks);
    // Both "workers" own 0..n — the broken plan the checker exists for. The
    // first worker runs to completion before the second starts; lifetime-
    // scoped tags catch the overlap regardless of interleaving. The second
    // worker catches its own panic so the payload survives the scope join.
    let msg = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                for v in 0..n {
                    // SAFETY: deliberately overlapping writes — the checker
                    // must abort before any aliasing matters (indices stay
                    // in bounds, and the racing thread below is serialised
                    // after this one).
                    unsafe { s.write(v, 1.0) };
                }
            })
            .join()
            .expect("first writer completes cleanly");
        scope
            .spawn(|| {
                let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // SAFETY: as above — same range, different thread.
                    unsafe { s.write(0, 2.0) };
                }))
                .expect_err("overlapping write must panic under check-disjoint");
                err.downcast_ref::<String>()
                    .cloned()
                    .or_else(|| err.downcast_ref::<&str>().map(|m| m.to_string()))
                    .expect("panic payload is a string")
            })
            .join()
            .expect("second writer caught its own panic")
    });
    assert!(
        msg.contains("check-disjoint: overlapping SharedSlice write"),
        "unexpected panic message: {msg}"
    );
    assert!(
        msg.contains("thread tag") && msg.contains("first written by thread tag"),
        "message must name both writer tags: {msg}"
    );
    assert!(msg.contains("at index"), "message must name the index: {msg}");
}
