//! The hot-kernel pass invariants (DESIGN.md §12), as tier-1 tests:
//!
//! * the corpus x strategy equality matrix — within a reorder strategy,
//!   every engine returns bitwise-identical f32 ranks on all four execution
//!   paths (native/sim x prefetch on/off);
//! * `by_frequency_clusters` is always a valid permutation that never moves
//!   a vertex across a partition boundary, so the partition census the
//!   engines plan against is untouched (property-tested);
//! * reordered runs still answer the same question: ranks mapped back to
//!   the input labelling agree with the input-order run to float tolerance.

use hipa::graph::reorder::by_frequency_clusters;
use hipa::graph::stats::partition_census;
use hipa::prelude::*;
use hipa_baselines::all_engines;
use proptest::prelude::*;

fn corpus() -> Vec<(&'static str, DiGraph)> {
    use hipa::graph::gen::*;
    vec![
        ("rmat", hipa::graph::datasets::small_test_graph(31)),
        ("star", DiGraph::from_edge_list(&star(48))),
        ("er", DiGraph::from_edge_list(&erdos_renyi(220, 1600, 9))),
    ]
}

const STRATEGIES: [ReorderStrategy; 4] = [
    ReorderStrategy::None,
    ReorderStrategy::DegreeDesc,
    ReorderStrategy::FrequencyClusters,
    ReorderStrategy::Random(23),
];

/// Within one (engine, graph, strategy) cell, all four execution paths
/// must agree bit-for-bit: prefetch hints never touch data, and the sim
/// replays the native arithmetic exactly.
#[test]
fn equality_matrix_native_sim_prefetch_within_strategy() {
    let cfg = PageRankConfig::default().with_iterations(5);
    for (gname, g) in corpus() {
        for e in all_engines() {
            for strat in STRATEGIES {
                let nat = NativeOpts::new(4, 512).with_reorder(strat);
                let sim = SimOpts::new(MachineSpec::tiny_test())
                    .with_threads(4)
                    .with_partition_bytes(512)
                    .with_reorder(strat);
                let reference = e.run_native(&g, &cfg, &nat).ranks;
                let paths = [
                    ("native off", e.run_native(&g, &cfg, &nat.clone().with_prefetch(false)).ranks),
                    ("sim on", e.run_sim(&g, &cfg, &sim).ranks),
                    ("sim off", e.run_sim(&g, &cfg, &sim.clone().with_prefetch(false)).ranks),
                ];
                for (path, ranks) in paths {
                    assert_eq!(
                        reference,
                        ranks,
                        "{} on {gname} / {}: {path} diverged from native on",
                        e.name(),
                        strat.name()
                    );
                }
            }
        }
    }
}

/// Reordering relabels the computation but not the answer: ranks mapped
/// back to input labels match the input-order run (float tolerance —
/// summation order inside each partition legitimately differs).
#[test]
fn reordered_runs_map_back_to_input_order_ranks() {
    let g = hipa::graph::datasets::small_test_graph(32);
    let cfg = PageRankConfig::default().with_iterations(10);
    let base =
        HiPa.run_native(&g, &cfg, &NativeOpts::new(4, 512).with_reorder(ReorderStrategy::None));
    for strat in &STRATEGIES[1..] {
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(4, 512).with_reorder(*strat));
        for (v, (&a, &b)) in base.ranks.iter().zip(&run.ranks).enumerate() {
            assert!((a - b).abs() <= 2e-4 * a.abs().max(1e-6), "{}: v{v} {a} vs {b}", strat.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `by_frequency_clusters` is partition-preserving on arbitrary graphs
    /// and block sizes: a bijection (checked by `Permutation::new`) with
    /// `map(v) / vpp == v / vpp` for every vertex, leaving the partition
    /// census bit-identical.
    #[test]
    fn frequency_clusters_is_partition_preserving(
        n in 1usize..300,
        edges in prop::collection::vec((0u32..300, 0u32..300), 0..900),
        vpp in 1usize..128,
    ) {
        let pairs: Vec<(u32, u32)> =
            edges.into_iter().map(|(s, d)| (s % n as u32, d % n as u32)).collect();
        let el = EdgeList::new(n, pairs.into_iter().map(Into::into).collect());
        let g = DiGraph::from_edge_list(&el);
        let p = by_frequency_clusters(g.in_csr(), vpp);
        prop_assert_eq!(p.len(), n);
        for v in 0..n as u32 {
            prop_assert_eq!(
                p.map(v) as usize / vpp,
                v as usize / vpp,
                "v{} crossed a partition boundary (vpp={})", v, vpp
            );
        }
        let before = partition_census(g.out_csr(), vpp);
        let after = partition_census(&Csr::from_edge_list(&p.apply(&el)), vpp);
        prop_assert_eq!(before.num_parts, after.num_parts);
        prop_assert_eq!(before.intra_total, after.intra_total);
        prop_assert_eq!(before.inter_total, after.inter_total);
    }
}
