//! Integration tests of the NUMA machine simulator through the engines'
//! public API: determinism, counter consistency, and the architectural
//! effects the paper's evaluation leans on.

use hipa::prelude::*;
use hipa_baselines::all_engines;

fn journal_small() -> DiGraph {
    hipa::graph::datasets::small_test_graph(3)
}

#[test]
fn simulation_is_deterministic_for_every_engine() {
    let g = journal_small();
    let cfg = PageRankConfig::default().with_iterations(5);
    for e in all_engines() {
        let run = || {
            let r = e.run_sim(
                &g,
                &cfg,
                &SimOpts::new(MachineSpec::tiny_test()).with_threads(6).with_partition_bytes(512),
            );
            (r.ranks, r.report.cycles.to_bits(), r.report.mem)
        };
        assert_eq!(run(), run(), "{} simulation not deterministic", e.name());
    }
}

#[test]
fn counters_are_internally_consistent() {
    let g = journal_small();
    let cfg = PageRankConfig::default().with_iterations(4);
    for e in all_engines() {
        for prefetch in [false, true] {
            let run = e.run_sim(
                &g,
                &cfg,
                &SimOpts::new(MachineSpec::tiny_test())
                    .with_threads(4)
                    .with_partition_bytes(512)
                    .with_prefetch(prefetch),
            );
            let m = &run.report.mem;
            let accesses = m.reads + m.writes;
            let served = m.l1_hits + m.l2_hits + m.llc_hits + m.dram_local + m.dram_remote;
            if prefetch {
                // DRAM lines pulled by hints have no matching demand access,
                // so `served` may exceed demand by at most the hint count.
                assert!(
                    served >= accesses && served - accesses <= m.prefetches,
                    "{}: served {served} vs accesses {accesses} (+{} hints)",
                    e.name(),
                    m.prefetches
                );
            } else {
                assert_eq!(
                    accesses,
                    served,
                    "{}: every demand access must be served at exactly one level",
                    e.name()
                );
                assert_eq!(m.prefetches, 0, "{}: hints off must issue none", e.name());
            }
            assert!(run.report.cycles > 0.0);
            assert!(run.compute_cycles > 0.0);
            assert!(run.preprocess_cycles > 0.0);
        }
    }
}

#[test]
fn numa_aware_engines_have_lower_remote_fraction() {
    let g = journal_small();
    let cfg = PageRankConfig::default().with_iterations(6);
    let mut aware = Vec::new();
    let mut oblivious = Vec::new();
    for e in all_engines() {
        let run = e.run_sim(
            &g,
            &cfg,
            &SimOpts::new(MachineSpec::tiny_test()).with_threads(8).with_partition_bytes(512),
        );
        let frac = run.report.mem.remote_fraction();
        if e.numa_aware() {
            aware.push((e.name(), frac));
        } else {
            oblivious.push((e.name(), frac));
        }
    }
    let max_aware = aware.iter().map(|(_, f)| *f).fold(0.0, f64::max);
    let min_obliv = oblivious.iter().map(|(_, f)| *f).fold(1.0, f64::min);
    assert!(
        max_aware < min_obliv,
        "NUMA-aware {aware:?} should all be below NUMA-oblivious {oblivious:?}"
    );
}

#[test]
fn more_iterations_mean_more_traffic_and_time() {
    let g = journal_small();
    let opts = SimOpts::new(MachineSpec::tiny_test()).with_threads(4).with_partition_bytes(512);
    let short = HiPa.run_sim(&g, &PageRankConfig::default().with_iterations(3), &opts);
    let long = HiPa.run_sim(&g, &PageRankConfig::default().with_iterations(9), &opts);
    assert!(long.compute_cycles > 2.0 * short.compute_cycles);
    assert!(long.report.mem.dram_bytes(64) > short.report.mem.dram_bytes(64));
    // Preprocessing is iteration-independent.
    assert!((long.preprocess_cycles - short.preprocess_cycles).abs() < 1.0);
}

#[test]
fn algorithm1_engines_create_threads_per_region() {
    let g = journal_small();
    let iters = 5;
    let cfg = PageRankConfig::default().with_iterations(iters);
    let opts = SimOpts::new(MachineSpec::tiny_test()).with_threads(8).with_partition_bytes(512);
    // HiPa (Algorithm 2): one pool for the whole run.
    let hipa = HiPa.run_sim(&g, &cfg, &opts);
    assert_eq!(hipa.report.threads_created, 8);
    assert_eq!(hipa.report.migrations, 0);
    // p-PR (Algorithm 1): two regions per iteration.
    let ppr = Ppr.run_sim(&g, &cfg, &opts);
    assert_eq!(ppr.report.threads_created, (2 * iters as u64) * 8);
    // Polymer: three bound regions per iteration, with migrations.
    let poly = Polymer.run_sim(&g, &cfg, &opts);
    assert_eq!(poly.report.threads_created, (3 * iters as u64) * 8);
    assert!(poly.report.migrations > 0);
}

#[test]
fn single_node_machine_has_no_remote_traffic() {
    let g = journal_small();
    let cfg = PageRankConfig::default().with_iterations(4);
    let machine = MachineSpec::tiny_test().with_sockets(1);
    let run =
        HiPa.run_sim(&g, &cfg, &SimOpts::new(machine).with_threads(4).with_partition_bytes(512));
    assert_eq!(run.report.mem.dram_remote, 0);
    assert_eq!(run.report.mem.wb_remote, 0);
}

#[test]
fn smaller_caches_mean_more_dram_traffic() {
    let g = journal_small();
    let cfg = PageRankConfig::default().with_iterations(4);
    let big = MachineSpec::skylake_4210();
    let small = MachineSpec::skylake_4210().scaled(512);
    let run_big =
        HiPa.run_sim(&g, &cfg, &SimOpts::new(big).with_threads(8).with_partition_bytes(4096));
    let run_small =
        HiPa.run_sim(&g, &cfg, &SimOpts::new(small).with_threads(8).with_partition_bytes(4096));
    assert!(
        run_small.report.mem.dram_bytes(64) > run_big.report.mem.dram_bytes(64),
        "scaled-down caches must increase DRAM traffic"
    );
}

#[test]
fn ablation_variants_change_performance_not_results() {
    use hipa::core::hipa::sim::{run_variant, HiPaVariant};
    let g = hipa::graph::datasets::small_test_graph(120);
    let cfg = PageRankConfig::default().with_iterations(5);
    let opts = SimOpts::new(MachineSpec::tiny_test()).with_threads(4).with_partition_bytes(512);
    let base = run_variant(&g, &cfg, &opts, &HiPaVariant::default());
    let variants = [
        HiPaVariant { compress_inter: false, ..Default::default() },
        HiPaVariant { thread_pinning: false, ..Default::default() },
        HiPaVariant { persistent_threads: false, ..Default::default() },
        HiPaVariant { partitioned_placement: false, ..Default::default() },
    ];
    for v in variants {
        let run = run_variant(&g, &cfg, &opts, &v);
        // Compression changes accumulation granularity but not per-element
        // order, pinning/placement/threading change nothing numerical: all
        // variants must return bit-identical ranks.
        assert_eq!(run.ranks, base.ranks, "variant {v:?} altered results");
        assert!(run.compute_cycles > 0.0);
    }
}

#[test]
fn uncompressed_variant_moves_more_bytes() {
    use hipa::core::hipa::sim::{run_variant, HiPaVariant};
    let g = hipa::graph::datasets::small_test_graph(121);
    let cfg = PageRankConfig::default().with_iterations(6);
    let opts = SimOpts::new(MachineSpec::tiny_test()).with_threads(4).with_partition_bytes(256);
    let on = run_variant(&g, &cfg, &opts, &HiPaVariant::default());
    let off =
        run_variant(&g, &cfg, &opts, &HiPaVariant { compress_inter: false, ..Default::default() });
    assert!(
        off.report.mem.dram_bytes(64) > on.report.mem.dram_bytes(64),
        "compression must reduce DRAM traffic"
    );
}
