//! Cross-crate tests for the §6 extensions: SpMV, PageRank-Delta and BFS
//! interacting with the PageRank machinery.

use hipa::algos::{bfs_levels, bfs_partition_centric, pagerank_delta, PrDeltaConfig};
use hipa::algos::{spmv_partition_centric, spmv_reference};
use hipa::core::reference_pagerank;
use hipa::prelude::*;

/// One PageRank iteration *is* an SpMV plus an affine map: feed the scaled
/// contribution vector through SpMV and compare against the oracle's next
/// iterate. This ties the SpMV extension to Eq. 1 exactly as §1 claims.
#[test]
fn pagerank_step_equals_spmv_plus_affine() {
    let g = hipa::graph::datasets::small_test_graph(30);
    let n = g.num_vertices();
    let d = 0.85f64;
    let one = reference_pagerank(&g, &PageRankConfig::default().with_iterations(1));
    // x[u] = rank0[u] / outdeg(u), rank0 uniform.
    let x: Vec<f32> = (0..n)
        .map(|v| {
            let deg = g.out_degree(v as u32);
            if deg == 0 {
                0.0
            } else {
                (1.0 / n as f32) / deg as f32
            }
        })
        .collect();
    let y = spmv_partition_centric(&g, &x, 4, 256);
    for v in 0..n {
        let expect = (1.0 - d) / n as f64 + d * y[v] as f64;
        assert!((expect - one[v]).abs() < 1e-6, "v{v}: spmv-derived {expect} vs oracle {}", one[v]);
    }
}

#[test]
fn spmv_parallel_matches_reference_on_datasets() {
    let g = hipa::graph::datasets::small_test_graph(31);
    let x: Vec<f32> = (0..g.num_vertices()).map(|i| ((i * 37) % 11) as f32 / 11.0).collect();
    let want = spmv_reference(&g, &x);
    let got = spmv_partition_centric(&g, &x, 6, 128);
    for (v, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0), "v{v}: {a} vs {b}");
    }
}

#[test]
fn pagerank_delta_matches_engine_at_convergence() {
    let g = hipa::graph::datasets::small_test_graph(32);
    let res = pagerank_delta(&g, &PrDeltaConfig { threshold: 1e-10, ..Default::default() });
    assert!(res.converged);
    // Compare against a long power iteration from the full engine.
    let run = HiPa.run_native(
        &g,
        &PageRankConfig::default().with_iterations(100),
        &NativeOpts::new(3, 1024),
    );
    for (v, (a, b)) in res.ranks.iter().zip(&run.ranks).enumerate() {
        assert!((a - b).abs() < 1e-4, "v{v}: delta {a} vs engine {b}");
    }
}

#[test]
fn bfs_levels_respect_edges() {
    // Structural invariant: along any edge, levels differ by at most 1
    // downward (level[dst] <= level[src] + 1 when src is reached).
    let g = hipa::graph::datasets::small_test_graph(33);
    let levels = bfs_partition_centric(&g, 0, 64);
    assert_eq!(levels, bfs_levels(&g, 0));
    for (src, dst) in g.out_csr().iter_edges() {
        let ls = levels[src as usize];
        if ls != hipa::algos::bfs::UNREACHED {
            let ld = levels[dst as usize];
            assert!(ld <= ls + 1, "edge ({src},{dst}): levels {ls} -> {ld}");
        }
    }
}

#[test]
fn bfs_on_paper_dataset_standin() {
    // A heavier cross-check on a real stand-in (journal).
    let g = Dataset::Journal.build();
    let a = bfs_partition_centric(&g, 1, 4096);
    let b = bfs_levels(&g, 1);
    assert_eq!(a, b);
}
