//! The parallel PCPM layout builder must be *bit-identical* to the
//! sequential reference for every graph shape, partition size, binning mode,
//! compression mode, thread count, and chunk decomposition. `PcpmLayout`
//! derives `PartialEq` over every array, so one `assert_eq!` covers the
//! whole structure.

use hipa::core::PcpmLayout;
use hipa::graph::DiGraph;
use proptest::prelude::*;

fn graphs() -> Vec<(&'static str, DiGraph)> {
    use hipa::graph::gen::*;
    vec![
        ("cycle", DiGraph::from_edge_list(&cycle(64))),
        ("star", DiGraph::from_edge_list(&star(40))),
        ("path-dangling", DiGraph::from_edge_list(&path(50))),
        ("grid", DiGraph::from_edge_list(&grid(8, 9))),
        ("rmat", hipa::graph::datasets::small_test_graph(7)),
        (
            "zipf-local",
            DiGraph::from_edge_list(&zipf_graph(
                &ZipfParams {
                    num_vertices: 900,
                    mean_degree: 9.0,
                    locality: 0.4,
                    block_size: 128,
                    ..Default::default()
                },
                11,
            )),
        ),
        ("er", DiGraph::from_edge_list(&erdos_renyi(300, 2400, 5))),
    ]
}

#[test]
fn parallel_layout_is_bit_identical_to_sequential() {
    for (gname, g) in graphs() {
        let csr = g.out_csr();
        for vpp in [1usize, 7, 16, 64, 300] {
            for binned in [false, true] {
                for compress in [true, false] {
                    let seq = PcpmLayout::build_seq_ext(csr, vpp, binned, compress);
                    for threads in [2usize, 3, 4, 8] {
                        // Small chunks force genuine multi-chunk execution
                        // on these test-sized graphs.
                        for chunk in [5usize, 64, 4096] {
                            let par = PcpmLayout::build_par_chunked(
                                csr, vpp, binned, compress, threads, chunk,
                            );
                            assert_eq!(
                                par, seq,
                                "{gname} vpp={vpp} binned={binned} compress={compress} \
                                 threads={threads} chunk={chunk}"
                            );
                        }
                    }
                    // The default entry points agree too.
                    assert_eq!(PcpmLayout::build_ext(csr, vpp, binned, compress), seq);
                }
            }
        }
    }
}

#[test]
fn parallel_layout_on_larger_graph_default_chunking() {
    // Big enough that the default CHUNK_VERTS decomposition produces
    // several chunks per pass.
    use hipa::graph::gen::{zipf_graph, ZipfParams};
    let g = DiGraph::from_edge_list(&zipf_graph(
        &ZipfParams {
            num_vertices: 20_000,
            mean_degree: 8.0,
            locality: 0.3,
            block_size: 256,
            ..Default::default()
        },
        23,
    ));
    let csr = g.out_csr();
    for vpp in [64usize, 1024] {
        let seq = PcpmLayout::build_seq_ext(csr, vpp, false, true);
        for threads in [2usize, 4] {
            let par = PcpmLayout::build_par_ext(csr, vpp, false, true, threads);
            assert_eq!(par, seq, "vpp={vpp} threads={threads}");
        }
    }
}

#[test]
fn build_threads_does_not_change_engine_output() {
    use hipa::prelude::*;
    let g = hipa::graph::datasets::small_test_graph(21);
    let cfg = PageRankConfig::default().with_iterations(8);
    let engines = hipa_baselines::all_engines();
    for e in &engines {
        let base = e.run_native(&g, &cfg, &NativeOpts::new(3, 1024).with_build_threads(1)).ranks;
        for bt in [2usize, 4, 7] {
            let got =
                e.run_native(&g, &cfg, &NativeOpts::new(3, 1024).with_build_threads(bt)).ranks;
            assert_eq!(got, base, "{} build_threads={bt}", e.name());
        }
        let sim_base = e
            .run_sim(&g, &cfg, &SimOpts::new(MachineSpec::tiny_test()).with_build_threads(1))
            .ranks;
        let sim_par = e
            .run_sim(&g, &cfg, &SimOpts::new(MachineSpec::tiny_test()).with_build_threads(4))
            .ranks;
        assert_eq!(sim_par, sim_base, "{} sim build_threads", e.name());
    }
}

/// Random-CSR strategy: adjacency from arbitrary directed edges (the CSR
/// sorts and keeps duplicates, matching what engines feed the builder).
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..120).prop_flat_map(|n| {
        let edges = prop::collection::vec((0u32..n as u32, 0u32..n as u32), 0..400);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_layout_matches_sequential_on_random_csrs(
        n_edges in edges_strategy(),
        vpp in 1usize..40,
        threads in 2usize..6,
        chunk in 1usize..50,
        binned in any::<bool>(),
        compress in any::<bool>(),
    ) {
        let (n, edges) = n_edges;
        let el = hipa::graph::EdgeList::new(n, edges.into_iter().map(Into::into).collect());
        let g = DiGraph::from_edge_list(&el);
        let csr = g.out_csr();
        let seq = PcpmLayout::build_seq_ext(csr, vpp, binned, compress);
        let par = PcpmLayout::build_par_chunked(csr, vpp, binned, compress, threads, chunk);
        prop_assert_eq!(par, seq);
    }
}
