//! Property-based tests for the partitioning invariants of §3.1–§3.2.

use hipa::partition::{
    degree_prefix, edge_balanced, edges_in, hipa_plan, vertex_balanced, LookupTable,
};
use proptest::prelude::*;

fn degrees_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..50, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vertex-balanced parts tile 0..n and differ in size by at most one.
    #[test]
    fn vertex_balanced_tiles_and_balances(n in 0usize..5000, parts in 1usize..64) {
        let r = vertex_balanced(n, parts);
        prop_assert_eq!(r.len(), parts);
        let mut expect = 0u32;
        for range in &r {
            prop_assert_eq!(range.start, expect);
            expect = range.end;
        }
        prop_assert_eq!(expect as usize, n);
        let sizes: Vec<usize> = r.iter().map(|x| x.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    /// Edge-balanced parts tile the vertex space and each part's edge count
    /// deviates from the quota by at most one vertex's degree.
    #[test]
    fn edge_balanced_respects_quota(degs in degrees_strategy(), parts in 1usize..16) {
        let prefix = degree_prefix(&degs);
        let total = *prefix.last().unwrap();
        let r = edge_balanced(&degs, parts);
        prop_assert_eq!(r.len(), parts);
        let mut expect = 0u32;
        let max_deg = *degs.iter().max().unwrap() as f64;
        for range in &r {
            prop_assert_eq!(range.start, expect);
            expect = range.end;
            let e = edges_in(&prefix, range) as f64;
            let quota = total as f64 / parts as f64;
            prop_assert!((e - quota).abs() <= max_deg + 1.0,
                "part {:?}: {} edges vs quota {}", range, e, quota);
        }
        prop_assert_eq!(expect as usize, degs.len());
    }

    /// The hierarchical plan covers all vertices and edges, aligns interior
    /// node boundaries to |P|, and its per-thread groups tile each node.
    #[test]
    fn hipa_plan_invariants(
        degs in degrees_strategy(),
        nodes in 1usize..4,
        tpn in 1usize..6,
        vpp in 1usize..64,
    ) {
        let plan = hipa_plan(&degs, nodes, tpn, vpp);
        let total_edges: u64 = degs.iter().map(|&d| d as u64).sum();
        prop_assert_eq!(plan.num_edges, total_edges);
        prop_assert_eq!(plan.num_vertices, degs.len());
        let mut v = 0u32;
        let mut e = 0u64;
        for (i, node) in plan.nodes.iter().enumerate() {
            prop_assert_eq!(node.vertex_range.start, v);
            v = node.vertex_range.end;
            e += node.edges;
            if i + 1 < plan.nodes.len() {
                let end = node.vertex_range.end as usize;
                prop_assert!(end.is_multiple_of(vpp) || end == degs.len(),
                    "interior node boundary must be a multiple of |P| (or capped at |V|): {}", end);
            }
            // Thread groups tile the node's partitions and edges.
            let mut p = node.part_range.start;
            let mut te = 0u64;
            prop_assert_eq!(node.threads.len(), tpn);
            for t in &node.threads {
                prop_assert_eq!(t.part_range.start, p);
                p = t.part_range.end;
                te += t.edges;
            }
            prop_assert_eq!(p, node.part_range.end);
            prop_assert_eq!(te, node.edges);
        }
        prop_assert_eq!(v as usize, degs.len());
        prop_assert_eq!(e, total_edges);
    }

    /// The lookup table is consistent with its plan: every partition has
    /// exactly one owning thread and thread vertex ranges concatenate
    /// their partitions.
    #[test]
    fn lookup_table_consistent(
        degs in degrees_strategy(),
        nodes in 1usize..3,
        tpn in 1usize..5,
        vpp in 1usize..48,
    ) {
        let plan = hipa_plan(&degs, nodes, tpn, vpp);
        let lt = LookupTable::from_plan(&plan);
        prop_assert_eq!(lt.num_partitions(), plan.num_partitions);
        let mut owned = vec![0u32; plan.num_partitions];
        for t in 0..lt.num_threads() {
            for p in lt.partitions_of(t) {
                owned[p] += 1;
            }
            let vr = lt.thread_vertices(t);
            let parts = lt.partitions_of(t);
            if !parts.is_empty() {
                prop_assert_eq!(vr.start, lt.vertices_of(parts.start).start);
                prop_assert_eq!(vr.end, lt.vertices_of(parts.end - 1).end);
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1), "each partition owned exactly once");
    }
}
