//! Cross-crate integration: every engine (HiPa + four baselines), on both
//! execution paths (native threads and simulated machine), agrees with the
//! sequential f64 oracle on a spread of graph shapes and both dangling
//! policies — and each engine's sim path is bit-identical to its native
//! path.

use hipa::core::reference::{max_rel_error, reference_pagerank};
use hipa::prelude::*;
use hipa_baselines::all_engines;

fn graphs() -> Vec<(&'static str, DiGraph)> {
    use hipa::graph::gen::*;
    vec![
        ("cycle", DiGraph::from_edge_list(&cycle(64))),
        ("star", DiGraph::from_edge_list(&star(40))),
        ("path-dangling", DiGraph::from_edge_list(&path(50))),
        ("grid", DiGraph::from_edge_list(&grid(8, 9))),
        ("rmat", hipa::graph::datasets::small_test_graph(7)),
        (
            "zipf-local",
            DiGraph::from_edge_list(&zipf_graph(
                &ZipfParams {
                    num_vertices: 900,
                    mean_degree: 9.0,
                    locality: 0.4,
                    block_size: 128,
                    ..Default::default()
                },
                11,
            )),
        ),
        ("er", DiGraph::from_edge_list(&erdos_renyi(300, 2400, 5))),
    ]
}

#[test]
fn every_engine_native_matches_oracle() {
    for (gname, g) in graphs() {
        for policy in [DanglingPolicy::Ignore, DanglingPolicy::Redistribute] {
            let cfg = PageRankConfig::default().with_iterations(10).with_dangling(policy);
            let oracle = reference_pagerank(&g, &cfg);
            for e in all_engines() {
                let run = e.run_native(&g, &cfg, &NativeOpts::new(3, 512));
                let err = max_rel_error(&run.ranks, &oracle);
                assert!(
                    err < 5e-3,
                    "{} native on {gname} ({policy:?}): max rel err {err}",
                    e.name()
                );
            }
        }
    }
}

#[test]
fn every_engine_sim_is_bitwise_identical_to_native() {
    let machine = MachineSpec::tiny_test();
    for (gname, g) in graphs() {
        let cfg = PageRankConfig::default().with_iterations(6);
        for e in all_engines() {
            let threads = 4;
            let sim = e.run_sim(
                &g,
                &cfg,
                &SimOpts::new(machine.clone()).with_threads(threads).with_partition_bytes(512),
            );
            let nat = e.run_native(&g, &cfg, &NativeOpts::new(threads, 512));
            assert_eq!(sim.ranks, nat.ranks, "{} on {gname}: sim != native", e.name());
        }
    }
}

#[test]
fn engines_agree_with_each_other_to_float_tolerance() {
    let g = hipa::graph::datasets::small_test_graph(13);
    let cfg = PageRankConfig::default().with_iterations(12);
    let runs: Vec<(String, Vec<f32>)> = all_engines()
        .iter()
        .map(|e| (e.name().to_string(), e.run_native(&g, &cfg, &NativeOpts::new(2, 1024)).ranks))
        .collect();
    let (base_name, base) = &runs[0];
    for (name, ranks) in &runs[1..] {
        for (v, (a, b)) in ranks.iter().zip(base).enumerate() {
            assert!(
                (a - b).abs() <= 1e-4 * b.abs().max(1e-6),
                "{name} vs {base_name} differ at v{v}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn hipa_and_ppr_share_exact_arithmetic() {
    // Same layout, same accumulation order: bit-equal, not just close.
    let g = hipa::graph::datasets::small_test_graph(14);
    let cfg = PageRankConfig::default().with_iterations(9);
    let opts = NativeOpts::new(5, 2048);
    let a = HiPa.run_native(&g, &cfg, &opts);
    let b = Ppr.run_native(&g, &cfg, &opts);
    assert_eq!(a.ranks, b.ranks);
}

#[test]
fn thread_count_does_not_change_any_engine_result() {
    let g = hipa::graph::datasets::small_test_graph(15);
    let cfg = PageRankConfig::default().with_iterations(7);
    for e in all_engines() {
        let one = e.run_native(&g, &cfg, &NativeOpts::new(1, 1024));
        let many = e.run_native(&g, &cfg, &NativeOpts::new(6, 1024));
        assert_eq!(one.ranks, many.ranks, "{} not thread-count invariant", e.name());
    }
}

#[test]
fn partition_size_changes_layout_not_results_much() {
    // Partition size changes accumulation order (different intra/inter
    // splits), so results may differ in low bits — but must stay within
    // float tolerance of the oracle for every size.
    let g = hipa::graph::datasets::small_test_graph(16);
    let cfg = PageRankConfig::default().with_iterations(10);
    let oracle = reference_pagerank(&g, &cfg);
    for pbytes in [64usize, 256, 1024, 8192, 1 << 20] {
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(3, pbytes));
        let err = max_rel_error(&run.ranks, &oracle);
        assert!(err < 5e-3, "partition {pbytes}: err {err}");
    }
}

#[test]
fn zero_iterations_returns_uniform() {
    let g = hipa::graph::datasets::small_test_graph(17);
    let cfg = PageRankConfig::default().with_iterations(0);
    let n = g.num_vertices() as f32;
    for e in all_engines() {
        let run = e.run_native(&g, &cfg, &NativeOpts::new(2, 1024));
        assert!(run.ranks.iter().all(|&r| (r - 1.0 / n).abs() < 1e-9), "{}", e.name());
    }
}

#[test]
fn hipa_tolerance_stops_early_and_matches_long_run() {
    let g = hipa::graph::datasets::small_test_graph(18);
    let cap = 200;
    let cfg_tol = PageRankConfig::default().with_iterations(cap).with_tolerance(1e-7);
    let run = HiPa.run_native(&g, &cfg_tol, &NativeOpts::new(3, 1024));
    assert!(run.iterations_run < cap, "should converge early, ran {}", run.iterations_run);
    assert!(run.iterations_run > 3, "suspiciously fast: {}", run.iterations_run);
    // The converged result matches a long fixed run closely.
    let long = HiPa.run_native(
        &g,
        &PageRankConfig::default().with_iterations(cap),
        &NativeOpts::new(3, 1024),
    );
    for (a, b) in run.ranks.iter().zip(&long.ranks) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}

#[test]
fn hipa_tolerance_sim_agrees_with_native() {
    let g = hipa::graph::datasets::small_test_graph(19);
    let cfg = PageRankConfig::default().with_iterations(100).with_tolerance(1e-6);
    let nat = HiPa.run_native(&g, &cfg, &NativeOpts::new(4, 512));
    let sim = HiPa.run_sim(
        &g,
        &cfg,
        &SimOpts::new(MachineSpec::tiny_test()).with_threads(4).with_partition_bytes(512),
    );
    assert_eq!(nat.iterations_run, sim.iterations_run, "same stop iteration");
    assert_eq!(nat.ranks, sim.ranks, "bitwise-equal converged ranks");
}

#[test]
fn cycle_converges_immediately_under_tolerance() {
    // The uniform start IS the fixed point of a cycle: one iteration's delta
    // is already ~0.
    let g = DiGraph::from_edge_list(&hipa::graph::gen::cycle(32));
    let cfg = PageRankConfig::default().with_iterations(50).with_tolerance(1e-6);
    let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(2, 64));
    assert_eq!(run.iterations_run, 1);
}
