//! Cross-crate integration: every engine (HiPa + four baselines), on both
//! execution paths (native threads and simulated machine), agrees with the
//! sequential f64 oracle on a spread of graph shapes and both dangling
//! policies — and each engine's sim path is bit-identical to its native
//! path.

use hipa::core::reference::{max_rel_error, reference_pagerank};
use hipa::prelude::*;
use hipa_baselines::all_engines;

fn graphs() -> Vec<(&'static str, DiGraph)> {
    use hipa::graph::gen::*;
    vec![
        ("cycle", DiGraph::from_edge_list(&cycle(64))),
        ("star", DiGraph::from_edge_list(&star(40))),
        ("path-dangling", DiGraph::from_edge_list(&path(50))),
        ("grid", DiGraph::from_edge_list(&grid(8, 9))),
        ("rmat", hipa::graph::datasets::small_test_graph(7)),
        (
            "zipf-local",
            DiGraph::from_edge_list(&zipf_graph(
                &ZipfParams {
                    num_vertices: 900,
                    mean_degree: 9.0,
                    locality: 0.4,
                    block_size: 128,
                    ..Default::default()
                },
                11,
            )),
        ),
        ("er", DiGraph::from_edge_list(&erdos_renyi(300, 2400, 5))),
    ]
}

#[test]
fn every_engine_native_matches_oracle() {
    for (gname, g) in graphs() {
        for policy in [DanglingPolicy::Ignore, DanglingPolicy::Redistribute] {
            let cfg = PageRankConfig::default().with_iterations(10).with_dangling(policy);
            let oracle = reference_pagerank(&g, &cfg);
            for e in all_engines() {
                let run = e.run_native(&g, &cfg, &NativeOpts::new(3, 512));
                let err = max_rel_error(&run.ranks, &oracle);
                assert!(
                    err < 5e-3,
                    "{} native on {gname} ({policy:?}): max rel err {err}",
                    e.name()
                );
            }
        }
    }
}

#[test]
fn every_engine_sim_is_bitwise_identical_to_native() {
    let machine = MachineSpec::tiny_test();
    for (gname, g) in graphs() {
        let cfg = PageRankConfig::default().with_iterations(6);
        for e in all_engines() {
            let threads = 4;
            let sim = e.run_sim(
                &g,
                &cfg,
                &SimOpts::new(machine.clone()).with_threads(threads).with_partition_bytes(512),
            );
            let nat = e.run_native(&g, &cfg, &NativeOpts::new(threads, 512));
            assert_eq!(sim.ranks, nat.ranks, "{} on {gname}: sim != native", e.name());
        }
    }
}

#[test]
fn engines_agree_with_each_other_to_float_tolerance() {
    let g = hipa::graph::datasets::small_test_graph(13);
    let cfg = PageRankConfig::default().with_iterations(12);
    let runs: Vec<(String, Vec<f32>)> = all_engines()
        .iter()
        .map(|e| (e.name().to_string(), e.run_native(&g, &cfg, &NativeOpts::new(2, 1024)).ranks))
        .collect();
    let (base_name, base) = &runs[0];
    for (name, ranks) in &runs[1..] {
        for (v, (a, b)) in ranks.iter().zip(base).enumerate() {
            assert!(
                (a - b).abs() <= 1e-4 * b.abs().max(1e-6),
                "{name} vs {base_name} differ at v{v}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn hipa_and_ppr_share_exact_arithmetic() {
    // Same layout, same accumulation order: bit-equal, not just close.
    let g = hipa::graph::datasets::small_test_graph(14);
    let cfg = PageRankConfig::default().with_iterations(9);
    let opts = NativeOpts::new(5, 2048);
    let a = HiPa.run_native(&g, &cfg, &opts);
    let b = Ppr.run_native(&g, &cfg, &opts);
    assert_eq!(a.ranks, b.ranks);
}

#[test]
fn thread_count_does_not_change_any_engine_result() {
    let g = hipa::graph::datasets::small_test_graph(15);
    let cfg = PageRankConfig::default().with_iterations(7);
    for e in all_engines() {
        let one = e.run_native(&g, &cfg, &NativeOpts::new(1, 1024));
        let many = e.run_native(&g, &cfg, &NativeOpts::new(6, 1024));
        assert_eq!(one.ranks, many.ranks, "{} not thread-count invariant", e.name());
    }
}

#[test]
fn partition_size_changes_layout_not_results_much() {
    // Partition size changes accumulation order (different intra/inter
    // splits), so results may differ in low bits — but must stay within
    // float tolerance of the oracle for every size.
    let g = hipa::graph::datasets::small_test_graph(16);
    let cfg = PageRankConfig::default().with_iterations(10);
    let oracle = reference_pagerank(&g, &cfg);
    for pbytes in [64usize, 256, 1024, 8192, 1 << 20] {
        let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(3, pbytes));
        let err = max_rel_error(&run.ranks, &oracle);
        assert!(err < 5e-3, "partition {pbytes}: err {err}");
    }
}

#[test]
fn zero_iterations_returns_uniform() {
    let g = hipa::graph::datasets::small_test_graph(17);
    let cfg = PageRankConfig::default().with_iterations(0);
    let n = g.num_vertices() as f32;
    for e in all_engines() {
        let run = e.run_native(&g, &cfg, &NativeOpts::new(2, 1024));
        assert!(run.ranks.iter().all(|&r| (r - 1.0 / n).abs() < 1e-9), "{}", e.name());
    }
}

#[test]
fn every_engine_tolerance_stops_within_one_iteration_of_hipa() {
    // The shared convergence rule (hipa_core::convergence) makes every
    // engine stop on the same residual decision; accumulation order differs
    // per engine in the low f32 bits, so the stop iteration may shift by at
    // most one around the threshold crossing. The tolerance sits above the
    // corpus's f32 oscillation floor (~3e-6 L1 on the star graph, where the
    // residual plateaus instead of reaching zero).
    let cap = 200;
    let cfg = PageRankConfig::default().with_iterations(cap).with_tolerance(1e-5);
    for (gname, g) in graphs() {
        let reference = HiPa.run_native(&g, &cfg, &NativeOpts::new(3, 512));
        assert!(reference.converged, "HiPa failed to converge on {gname}");
        assert!(reference.iterations_run < cap);
        for e in all_engines() {
            let run = e.run_native(&g, &cfg, &NativeOpts::new(3, 512));
            assert!(run.converged, "{} did not converge on {gname}", e.name());
            let (a, b) = (run.iterations_run as i64, reference.iterations_run as i64);
            assert!((a - b).abs() <= 1, "{} stopped at {a} on {gname}, HiPa at {b}", e.name());
        }
    }
}

#[test]
fn every_engine_early_stop_matches_run_to_cap() {
    // Stopping at tolerance must not change the answer: the early-stopped
    // ranks agree with the same engine run to the full cap. At stop, the
    // remaining L1 distance to the fixed point is bounded by
    // tol·d/(1−d) ≈ 5.7e-5, so 1e-4 per vertex is a safe bound.
    let cap = 300;
    let cfg_tol = PageRankConfig::default().with_iterations(cap).with_tolerance(1e-5);
    let cfg_cap = PageRankConfig::default().with_iterations(cap);
    for (gname, g) in graphs() {
        for e in all_engines() {
            let early = e.run_native(&g, &cfg_tol, &NativeOpts::new(3, 512));
            assert!(early.converged, "{} on {gname}", e.name());
            assert!(early.iterations_run < cap, "{} on {gname}", e.name());
            let full = e.run_native(&g, &cfg_cap, &NativeOpts::new(3, 512));
            assert_eq!(full.iterations_run, cap);
            assert!(!full.converged, "no tolerance set, flag must stay false");
            for (v, (a, b)) in early.ranks.iter().zip(&full.ranks).enumerate() {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{} on {gname} at v{v}: early {a} vs cap {b}",
                    e.name()
                );
            }
        }
    }
}

#[test]
fn every_engine_tolerance_sim_agrees_with_native() {
    // The sim path shares the engine's arithmetic, so under tolerance both
    // paths stop at the same iteration with bit-equal ranks.
    let cfg = PageRankConfig::default().with_iterations(100).with_tolerance(1e-6);
    let g = hipa::graph::datasets::small_test_graph(19);
    for e in all_engines() {
        let nat = e.run_native(&g, &cfg, &NativeOpts::new(4, 512));
        let sim = e.run_sim(
            &g,
            &cfg,
            &SimOpts::new(MachineSpec::tiny_test()).with_threads(4).with_partition_bytes(512),
        );
        assert_eq!(nat.iterations_run, sim.iterations_run, "{} stop iteration", e.name());
        assert_eq!(nat.converged, sim.converged, "{} converged flag", e.name());
        assert!(nat.converged, "{} should converge within 100 iterations", e.name());
        assert_eq!(nat.ranks, sim.ranks, "{}: sim != native under tolerance", e.name());
    }
}

#[test]
fn converged_flag_is_accurate() {
    let g = hipa::graph::datasets::small_test_graph(20);
    for e in all_engines() {
        // Unreachable tolerance within a 2-iteration cap: ran to cap, not
        // converged.
        let tight = PageRankConfig::default().with_iterations(2).with_tolerance(1e-12);
        let run = e.run_native(&g, &tight, &NativeOpts::new(2, 512));
        assert!(!run.converged, "{}", e.name());
        assert_eq!(run.iterations_run, 2, "{}", e.name());
        // No tolerance: never reported converged.
        let fixed = PageRankConfig::default().with_iterations(5);
        let run = e.run_native(&g, &fixed, &NativeOpts::new(2, 512));
        assert!(!run.converged, "{}", e.name());
        assert_eq!(run.iterations_run, 5, "{}", e.name());
    }
}

#[test]
fn invalid_struct_literal_tolerance_is_normalised_away() {
    // `with_tolerance` asserts positivity, but a struct literal can smuggle
    // in 0.0 / NaN — the shared module normalises those to "no tolerance",
    // so engines run to the cap without useless delta tracking.
    let g = hipa::graph::datasets::small_test_graph(22);
    let baseline = PageRankConfig::default().with_iterations(8);
    for bad in [0.0f32, -3.0, f32::NAN, f32::INFINITY] {
        let cfg = PageRankConfig { tolerance: Some(bad), ..baseline };
        for e in all_engines() {
            let run = e.run_native(&g, &cfg, &NativeOpts::new(2, 512));
            assert_eq!(run.iterations_run, 8, "{} tol {bad}", e.name());
            assert!(!run.converged, "{} tol {bad}", e.name());
            let clean = e.run_native(&g, &baseline, &NativeOpts::new(2, 512));
            assert_eq!(run.ranks, clean.ranks, "{} tol {bad}", e.name());
        }
    }
}

#[test]
fn hipa_tolerance_stops_early_and_matches_long_run() {
    let g = hipa::graph::datasets::small_test_graph(18);
    let cap = 200;
    let cfg_tol = PageRankConfig::default().with_iterations(cap).with_tolerance(1e-7);
    let run = HiPa.run_native(&g, &cfg_tol, &NativeOpts::new(3, 1024));
    assert!(run.converged);
    assert!(run.iterations_run < cap, "should converge early, ran {}", run.iterations_run);
    assert!(run.iterations_run > 3, "suspiciously fast: {}", run.iterations_run);
    // The converged result matches a long fixed run closely.
    let long = HiPa.run_native(
        &g,
        &PageRankConfig::default().with_iterations(cap),
        &NativeOpts::new(3, 1024),
    );
    for (a, b) in run.ranks.iter().zip(&long.ranks) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}

#[test]
fn hipa_tolerance_sim_agrees_with_native() {
    let g = hipa::graph::datasets::small_test_graph(19);
    let cfg = PageRankConfig::default().with_iterations(100).with_tolerance(1e-6);
    let nat = HiPa.run_native(&g, &cfg, &NativeOpts::new(4, 512));
    let sim = HiPa.run_sim(
        &g,
        &cfg,
        &SimOpts::new(MachineSpec::tiny_test()).with_threads(4).with_partition_bytes(512),
    );
    assert_eq!(nat.iterations_run, sim.iterations_run, "same stop iteration");
    assert_eq!(nat.ranks, sim.ranks, "bitwise-equal converged ranks");
}

#[test]
fn cycle_converges_immediately_under_tolerance() {
    // The uniform start IS the fixed point of a cycle: one iteration's delta
    // is already ~0.
    let g = DiGraph::from_edge_list(&hipa::graph::gen::cycle(32));
    let cfg = PageRankConfig::default().with_iterations(50).with_tolerance(1e-6);
    let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(2, 64));
    assert_eq!(run.iterations_run, 1);
    assert!(run.converged);
}
