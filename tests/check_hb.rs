//! The full happens-before detector (DESIGN.md §15): with `check-hb` on,
//! every `SharedSlice` element carries a write epoch *and* adaptive read
//! state, checked against the vector clocks the rayon shim threads through
//! every pool synchronization edge. This suite proves three things:
//!
//! * **soundness controls** — seeded races the write-only `check-disjoint`
//!   subset cannot see (a read racing a scope job's write; writes from two
//!   different pools with no join between them) panic, naming both thread
//!   tags, the element index, and the two unordered clocks;
//! * **precision controls** — accesses ordered by a modeled edge (scope
//!   join, sequential scopes across pools) are *not* flagged;
//! * **invariance** — all ten engine paths, the partition-centric SpMV,
//!   and the serve layer run race-clean with bitwise-identical ranks and
//!   simulated cycles across repeated runs (the shadow machinery observes
//!   the arithmetic, never feeds it).
//!
//! Run with: `cargo test -q --features check-hb`.
//!
//! disjointness: negative-control plan — the direct `SharedSlice` use below
//! deliberately leaves two accesses unordered so the detector's panic paths
//! are exercised; the engine and serve runs use each engine's own plan.

#![cfg(feature = "check-hb")]

use hipa::core::disjoint::SharedSlice;
use hipa::prelude::*;
use hipa::serve::{edge_list_of, loadgen::run_load, LoadConfig, ServeConfig, Server};
use hipa_baselines::all_engines;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Extracts the formatted race message from a caught panic payload.
fn payload_msg(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|m| m.to_string()))
        .expect("panic payload is a string")
}

/// Seeded race 1 — read-write across an unjoined scope: a pool job writes
/// an element while the scope body (the main thread, which never becomes a
/// pool worker) reads the same element *before the join*. The write-only
/// subset is blind to this; `check-hb` must panic naming both threads. A
/// deliberately unmodeled relaxed flag sequences the wall-clock order
/// (write first, read second) so the detecting side is deterministic.
#[test]
fn unjoined_scope_read_write_race_is_caught() {
    let mut v = vec![0u32; 16];
    let s = SharedSlice::new(&mut v);
    let wrote = AtomicBool::new(false);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rayon::scope(|scope| {
            let (s, wrote) = (&s, &wrote);
            scope.spawn(move |_| {
                // SAFETY: in-bounds; the unsynchronised read below is the
                // race under test — the checker aborts the racing access
                // before any aliasing read happens.
                unsafe { s.write(5, 7) };
                // ordering: relaxed — deliberately *not* a modeled (or even
                // paired) edge: the flag only sequences the interleaving so
                // the main thread's read lands second.
                wrote.store(true, Ordering::Relaxed);
            });
            // ordering: relaxed — see above; spin until the job has written.
            while !wrote.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            // SAFETY: in-bounds; deliberately races the job's write — the
            // checker panics here, before the aliasing read executes.
            let _ = unsafe { s.get(5) };
        });
    }))
    .expect_err("a read racing a scope job's write must panic under check-hb");
    let msg = payload_msg(err);
    assert!(
        msg.contains("check-hb: write-read race on SharedSlice index 5"),
        "unexpected panic message: {msg}"
    );
    assert!(
        msg.contains("thread tag") && msg.contains("written by thread tag"),
        "message must name both thread tags: {msg}"
    );
    assert!(
        msg.contains("write clock t") && msg.contains("this thread's clock"),
        "message must show the two unordered clocks: {msg}"
    );
}

/// Seeded race 2 — write-write across two pools: a job on pool A and a job
/// on pool B (spawned from inside A's still-open scope, so no join orders
/// them) write the same element. Under `check-disjoint` semantics this is
/// the classic overlapping-plan violation; the clocks prove there is no
/// happens-before edge even though the two writes never touch one pool's
/// internal queue. The relaxed flag again makes pool B's write land second.
#[test]
fn cross_pool_write_write_race_is_caught() {
    let pool_a = rayon::ThreadPoolBuilder::new().num_threads(2).build().expect("pool A");
    let pool_b = rayon::ThreadPoolBuilder::new().num_threads(2).build().expect("pool B");
    let mut v = vec![0u32; 8];
    let s = SharedSlice::new(&mut v);
    let wrote = AtomicBool::new(false);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool_a.scope(|sa| {
            let (s, wrote) = (&s, &wrote);
            sa.spawn(move |_| {
                // SAFETY: in-bounds; the cross-pool write below is the race
                // under test.
                unsafe { s.write(3, 1) };
                // ordering: relaxed — deliberately not a modeled edge; only
                // sequences the interleaving (A's write first).
                wrote.store(true, Ordering::Relaxed);
            });
            // ordering: relaxed — see above.
            while !wrote.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            // Pool A's scope is still open: nothing orders its job before
            // anything pool B runs.
            pool_b.scope(|sb| {
                let s = &s;
                sb.spawn(move |_| {
                    // SAFETY: deliberately overlapping — the checker must
                    // abort this write (index stays in bounds).
                    unsafe { s.write(3, 2) };
                });
            });
        });
    }))
    .expect_err("unordered writes from two pools must panic under check-hb");
    let msg = payload_msg(err);
    assert!(
        msg.contains("check-disjoint: overlapping SharedSlice write at index 3"),
        "unexpected panic message: {msg}"
    );
    assert!(
        msg.contains("thread tag") && msg.contains("first written by thread tag"),
        "message must name both writer tags: {msg}"
    );
    assert!(
        msg.contains("prior write clock t") && msg.contains("this thread's clock"),
        "message must show the two unordered clocks: {msg}"
    );
}

/// Precision control: accesses *ordered* by modeled edges are never
/// flagged. A scope join orders a job's writes before the caller's reads
/// and re-writes; a second scope on a *different* pool is ordered through
/// the caller's join-then-fork, so "same element, two pools" is fine when
/// the scopes are sequential.
#[test]
fn joined_and_sequential_accesses_are_not_flagged() {
    let n = 64;
    let mut v = vec![0u32; n];
    {
        let s = SharedSlice::new(&mut v);
        rayon::scope(|scope| {
            let s = &s;
            scope.spawn(move |_| {
                for i in 0..n {
                    // SAFETY: sole writer inside this scope.
                    unsafe { s.write(i, i as u32) };
                }
            });
        });
        // After the join the caller reads and overwrites freely.
        for i in 0..n {
            // SAFETY: the scope join ordered the job's writes before this.
            assert_eq!(unsafe { s.get(i) }, i as u32);
            // SAFETY: as above — single-threaded after the join.
            unsafe { s.write(i, 0) };
        }
        let pool_a = rayon::ThreadPoolBuilder::new().num_threads(2).build().expect("pool A");
        let pool_b = rayon::ThreadPoolBuilder::new().num_threads(2).build().expect("pool B");
        for pool in [&pool_a, &pool_b] {
            pool.scope(|scope| {
                let s = &s;
                scope.spawn(move |_| {
                    for i in 0..n {
                        // SAFETY: scopes are sequential — each join-then-
                        // fork chain orders this write after the last one.
                        unsafe { s.write(i, 1) };
                    }
                });
            });
        }
    }
    assert!(v.iter().all(|&x| x == 1));
}

/// Shared invariance body: all ten engine paths on `g` run race-clean under
/// the full detector with ranks bitwise identical between native and sim,
/// across thread counts, and across repeated runs — and the simulated cycle
/// counts are bitwise stable too (the shadow state never feeds the model).
fn assert_engine_paths_bitwise_stable(g: &DiGraph, iterations: usize) {
    let machine = MachineSpec::tiny_test();
    let g = g.clone();
    let cfg = PageRankConfig::default().with_iterations(iterations);
    for e in all_engines() {
        let nat = e.run_native(&g, &cfg, &NativeOpts::new(4, 512));
        let nat2 = e.run_native(&g, &cfg, &NativeOpts::new(4, 512));
        assert_eq!(nat.ranks, nat2.ranks, "{}: native re-run changed ranks", e.name());
        let one = e.run_native(&g, &cfg, &NativeOpts::new(1, 512));
        assert_eq!(nat.ranks, one.ranks, "{}: thread count changed ranks", e.name());
        let sopts = || SimOpts::new(machine.clone()).with_threads(4).with_partition_bytes(512);
        let sim = e.run_sim(&g, &cfg, &sopts());
        let sim2 = e.run_sim(&g, &cfg, &sopts());
        assert_eq!(nat.ranks, sim.ranks, "{}: native != sim under check-hb", e.name());
        assert_eq!(sim.ranks, sim2.ranks, "{}: sim re-run changed ranks", e.name());
        assert_eq!(
            sim.compute_cycles.to_bits(),
            sim2.compute_cycles.to_bits(),
            "{}: sim re-run changed compute cycles",
            e.name()
        );
        assert_eq!(
            sim.preprocess_cycles.to_bits(),
            sim2.preprocess_cycles.to_bits(),
            "{}: sim re-run changed preprocess cycles",
            e.name()
        );
    }
}

/// The fixed-corpus invariance run.
#[test]
fn engine_corpus_is_race_clean_and_bitwise_stable() {
    let g = hipa::graph::datasets::small_test_graph(11);
    assert_engine_paths_bitwise_stable(&g, 6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Seeded invariance sweep: whatever small graph and iteration budget
    /// the strategy picks, the detector leaves every engine path's ranks
    /// and simulated cycles bitwise unchanged.
    #[test]
    fn engine_paths_bitwise_stable_across_seeds(seed in 0u64..512, iters in 3usize..8) {
        let g = hipa::graph::datasets::small_test_graph(seed);
        assert_engine_paths_bitwise_stable(&g, iters);
    }
}

/// The partition-centric SpMV — fresh `SharedSlice` per phase, the workload
/// that motivated the pooled shadow tables — runs race-clean.
#[test]
fn partition_centric_spmv_is_race_clean() {
    let g = hipa::graph::datasets::small_test_graph(23);
    let x: Vec<f32> = (0..g.num_vertices()).map(|v| 1.0 + (v % 7) as f32).collect();
    let want = hipa_algos::spmv_reference(&g, &x);
    let got = hipa_algos::spmv_partition_centric(&g, &x, 4, 128);
    for (v, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!((a - b).abs() <= 1e-3 * b.abs().max(1e-6), "spmv differs at v{v}: {a} vs {b}");
    }
}

/// Serve smoke: the rank server under seeded concurrent load — epochs,
/// batching, and the background census/scheduler threads — runs race-clean
/// under the detector, and every request is answered.
#[test]
fn serve_census_is_race_clean_under_load() {
    let g = hipa::graph::datasets::small_test_graph(21);
    let server = Server::start(
        edge_list_of(&g),
        ServeConfig { threads: 2, verts_per_partition: 32, batch_max: 4, ..Default::default() },
    );
    let report = run_load(
        &server,
        &LoadConfig {
            users: 3,
            requests_per_user: 8,
            seed: 5,
            mix: (2, 2, 1),
            topk: 4,
            ppr_sources_max: 2,
            invalid_share: 0.1,
            mean_gap_ns: 0,
        },
    );
    assert_eq!(report.completed, 24, "every request must be answered under check-hb");
}
