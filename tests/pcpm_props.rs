//! Property-based tests for the PCPM layout (compression, edge
//! conservation, PNG/slot-view consistency) against random graphs.

use hipa::core::PcpmLayout;
use hipa::graph::{Csr, DiGraph, EdgeList};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = EdgeList> {
    (2usize..200, prop::collection::vec((0u32..200, 0u32..200), 0..800)).prop_map(|(n, pairs)| {
        let edges =
            pairs.into_iter().map(|(s, d)| (s % n as u32, d % n as u32)).collect::<Vec<_>>();
        let mut el = EdgeList::from_pairs(edges);
        // Ensure the declared vertex count covers n even with no edges.
        let el2 = EdgeList::new(n.max(el.num_vertices()), el.edges().to_vec());
        el = el2;
        el.dedup_simplify();
        el
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every edge is represented exactly once (intra + message destinations),
    /// in all four layout modes.
    #[test]
    fn edge_conservation(el in graph_strategy(), vpp in 1usize..64) {
        let csr = Csr::from_edge_list(&el);
        for binned in [false, true] {
            for compress in [false, true] {
                let l = PcpmLayout::build_ext(&csr, vpp, binned, compress);
                prop_assert_eq!(l.total_edges() as usize, el.num_edges(),
                    "binned={} compress={}", binned, compress);
                if !compress {
                    // One destination per message when compression is off.
                    prop_assert_eq!(l.dest_verts.len() as u64, l.total_msgs);
                }
                if binned {
                    prop_assert!(l.intra_dst.is_empty());
                }
            }
        }
    }

    /// Messages never beat physics: compressed count is bounded below by
    /// the number of (source, destination-partition) pairs and above by the
    /// inter-edge count.
    #[test]
    fn compression_bounds(el in graph_strategy(), vpp in 1usize..32) {
        let csr = Csr::from_edge_list(&el);
        let l = PcpmLayout::build(&csr, vpp, false);
        let uncompressed = PcpmLayout::build_ext(&csr, vpp, false, false);
        prop_assert!(l.total_msgs <= uncompressed.total_msgs);
        prop_assert_eq!(l.dest_verts.len(), uncompressed.dest_verts.len());
    }

    /// Every slot is covered by exactly one PNG bin, with the source inside
    /// the bin's source partition and the slot inside the destination
    /// partition's range.
    #[test]
    fn png_covers_slots(el in graph_strategy(), vpp in 1usize..48) {
        let csr = Csr::from_edge_list(&el);
        let l = PcpmLayout::build(&csr, vpp, false);
        let mut covered = vec![false; l.total_msgs as usize];
        for p in 0..l.num_partitions {
            for pair in l.png_of(p) {
                let srcs = l.png_sources(pair);
                prop_assert_eq!(srcs.len(), pair.len as usize);
                for (k, &src) in srcs.iter().enumerate() {
                    let slot = pair.slot_start + k as u64;
                    prop_assert!(!covered[slot as usize]);
                    covered[slot as usize] = true;
                    prop_assert_eq!(l.partition_of(src), p);
                    prop_assert!(l.part_slot_ranges[pair.dst_part as usize].contains(&slot));
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Destination lists land in the right partition, and intra edges stay
    /// inside their own partition.
    #[test]
    fn destinations_respect_partitions(el in graph_strategy(), vpp in 1usize..48) {
        let csr = Csr::from_edge_list(&el);
        let l = PcpmLayout::build(&csr, vpp, false);
        for q in 0..l.num_partitions {
            for k in l.part_slot_ranges[q].clone() {
                for &dst in l.dests_of(k) {
                    prop_assert_eq!(l.partition_of(dst), q);
                }
            }
        }
        for v in 0..l.num_vertices as u32 {
            for &dst in l.intra_of(v) {
                prop_assert_eq!(l.partition_of(dst), l.partition_of(v));
            }
        }
    }

    /// The layout census agrees with the graph-side census in `hipa-graph`.
    #[test]
    fn layout_census_matches_graph_stats(el in graph_strategy(), vpp in 1usize..48) {
        let csr = Csr::from_edge_list(&el);
        let l = PcpmLayout::build(&csr, vpp, false);
        let c = hipa::graph::stats::partition_census(&csr, vpp);
        prop_assert_eq!(l.intra_dst.len() as u64, c.intra_total);
        prop_assert_eq!(l.dest_verts.len() as u64, c.inter_total);
        prop_assert_eq!(l.total_msgs, c.inter_compressed_total);
    }

    /// CSR round-trips through transpose twice.
    #[test]
    fn csr_double_transpose_roundtrip(el in graph_strategy()) {
        let csr = Csr::from_edge_list(&el);
        prop_assert_eq!(csr.transposed().transposed(), csr);
    }

    /// Out-degrees and in-degrees both sum to |E|.
    #[test]
    fn degree_sums_match(el in graph_strategy()) {
        let g = DiGraph::from_edge_list(&el);
        let out: u64 = (0..g.num_vertices()).map(|v| g.out_degree(v as u32) as u64).sum();
        let inn: u64 = (0..g.num_vertices()).map(|v| g.in_degree(v as u32) as u64).sum();
        prop_assert_eq!(out, el.num_edges() as u64);
        prop_assert_eq!(inn, el.num_edges() as u64);
    }
}
