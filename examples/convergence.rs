//! Convergence mode: instead of the paper's fixed 20 iterations, run HiPa
//! with an L1-delta tolerance and watch where it stops on each dataset.
//!
//! ```text
//! cargo run --release --example convergence
//! ```

use hipa::prelude::*;

fn main() {
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>14}",
        "graph", "|V|", "tol=1e-4", "tol=1e-6", "time @1e-6"
    );
    for ds in [Dataset::Journal, Dataset::Wiki] {
        let g = ds.build();
        let opts = NativeOpts::new(4, 256 * 1024);
        let mut cells = Vec::new();
        let mut timing = String::new();
        for tol in [1e-4f32, 1e-6] {
            let cfg = PageRankConfig::default().with_iterations(500).with_tolerance(tol);
            let run = HiPa.run_native(&g, &cfg, &opts);
            let mark = if run.converged { "" } else { "*" };
            cells.push(format!("{} iters{mark}", run.iterations_run));
            timing = format!("{:.2?}", run.compute);
        }
        println!(
            "{:<10} {:>8} {:>12} {:>12} {:>14}",
            ds.name(),
            g.num_vertices(),
            cells[0],
            cells[1],
            timing
        );
    }

    // The converged vector is a genuine fixed point: one more iteration
    // moves it by less than the tolerance.
    let g = Dataset::Journal.build();
    let cfg = PageRankConfig::default().with_iterations(500).with_tolerance(1e-7);
    let run = HiPa.run_native(&g, &cfg, &NativeOpts::new(4, 256 * 1024));
    println!(
        "\njournal: converged = {} after {} iterations (cap 500); top vertex rank {:.6}",
        run.converged,
        run.iterations_run,
        hipa::top_k(&run.ranks, 1)[0].1
    );
}
