//! NUMA placement study on the simulated machine: how much of HiPa's win
//! comes from each design choice? Runs the engine on the simulated 2-socket
//! Skylake with individual §3 mechanisms disabled and prints the memory-
//! system consequences.
//!
//! ```text
//! cargo run --release --example numa_placement_study
//! ```

use hipa::core::hipa::sim::{run_variant, HiPaVariant};
use hipa::prelude::*;

fn main() {
    let g = Dataset::Journal.build();
    let machine = MachineSpec::skylake_4210().scaled(64);
    let cfg = PageRankConfig::default().with_iterations(10);
    let opts = SimOpts::new(machine).with_threads(40).with_partition_bytes(4096);

    println!("journal stand-in on simulated 2x Xeon 4210 (caches scaled 64x with the dataset)\n");
    println!(
        "{:<28} {:>9} {:>9} {:>10} {:>11} {:>11}",
        "variant", "sim time", "vs full", "remote %", "migrations", "threads"
    );

    let variants: Vec<(&str, HiPaVariant)> = vec![
        ("full HiPa", HiPaVariant::default()),
        ("no edge compression", HiPaVariant { compress_inter: false, ..Default::default() }),
        ("no thread pinning", HiPaVariant { thread_pinning: false, ..Default::default() }),
        ("no persistent threads", HiPaVariant { persistent_threads: false, ..Default::default() }),
        (
            "interleaved placement",
            HiPaVariant { partitioned_placement: false, ..Default::default() },
        ),
    ];
    let mut full = 0.0f64;
    for (name, v) in &variants {
        let run = run_variant(&g, &cfg, &opts, v);
        let secs = run.compute_seconds();
        if *name == "full HiPa" {
            full = secs;
        }
        println!(
            "{:<28} {:>8.4}s {:>8.2}x {:>9.1}% {:>11} {:>11}",
            name,
            secs,
            secs / full,
            run.report.mem.remote_fraction() * 100.0,
            run.report.migrations,
            run.report.threads_created,
        );
    }

    println!(
        "\nReading: every disabled mechanism costs time; interleaved placement\n\
         pushes the remote-access share toward ~50%, and dropping Algorithm 2's\n\
         persistent threads multiplies thread creations and migrations (§3.3)."
    );
}
