//! Social-influence analysis on the Twitter-follower stand-in, comparing
//! full power iteration against the PageRank-Delta extension (paper §6) and
//! using partition-centric BFS for reachability.
//!
//! ```text
//! cargo run --release --example social_influence
//! ```

use hipa::algos::{bfs_partition_centric, pagerank_delta, PrDeltaConfig};
use hipa::prelude::*;

fn main() {
    let g = Dataset::Twitter.build();
    println!("twitter stand-in: {} users, {} follow edges", g.num_vertices(), g.num_edges());

    // Influence by full PageRank.
    let ranks = hipa::pagerank(&g, 4);
    let top = hipa::top_k(&ranks, 5);
    println!("most influential users (power iteration):");
    for (v, r) in &top {
        println!("  user#{v:<8} rank {r:.6}  followers(in) {}", g.in_degree(*v));
    }

    // Same question answered incrementally with PageRank-Delta.
    let start = std::time::Instant::now();
    let delta = pagerank_delta(&g, &PrDeltaConfig { threshold: 1e-8, ..Default::default() });
    println!(
        "PageRank-Delta: {} rounds, {:.1}M activations vs {:.1}M for {}x full sweeps, {:.2?}, converged = {}",
        delta.rounds,
        delta.activations as f64 / 1e6,
        (delta.rounds * g.num_vertices()) as f64 / 1e6,
        delta.rounds,
        start.elapsed(),
        delta.converged
    );
    let top_delta = hipa::top_k(&delta.ranks, 5);
    assert_eq!(
        top.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
        top_delta.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
        "both methods must agree on the top influencers"
    );
    println!("top-5 agreement between power iteration and PageRank-Delta: OK");

    // How much of the network does the top influencer reach?
    let source = top[0].0;
    let levels = bfs_partition_centric(&g, source, 64 * 1024 / 4);
    let reached = levels.iter().filter(|&&l| l != hipa::algos::bfs::UNREACHED).count();
    let max_hops =
        levels.iter().filter(|&&l| l != hipa::algos::bfs::UNREACHED).max().copied().unwrap_or(0);
    println!(
        "user#{source} reaches {:.1}% of the network within {max_hops} hops",
        100.0 * reached as f64 / g.num_vertices() as f64
    );
}
