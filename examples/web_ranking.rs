//! Web-graph ranking: the paper's motivating scenario — rank domains of a
//! web hyperlink graph (the `pld` stand-in) and cross-check two engines.
//!
//! ```text
//! cargo run --release --example web_ranking
//! ```

use hipa::core::reference::max_rel_error;
use hipa::prelude::*;

fn main() {
    let g = Dataset::Pld.build();
    println!(
        "pld stand-in (Pay-Level-Domain web graph): {} domains, {} hyperlinks",
        g.num_vertices(),
        g.num_edges()
    );

    let cfg = PageRankConfig::default();
    let opts = NativeOpts::new(4, 256 * 1024);

    let hipa_run = HiPa.run_native(&g, &cfg, &opts);
    println!("HiPa: preprocess {:.2?}, compute {:.2?}", hipa_run.preprocess, hipa_run.compute);
    let vpr_run = Vpr.run_native(&g, &cfg, &opts);
    println!("v-PR: preprocess {:.2?}, compute {:.2?}", vpr_run.preprocess, vpr_run.compute);

    // Different engines, same maths: ranks agree to f32 rounding.
    let worst = hipa_run
        .ranks
        .iter()
        .zip(&vpr_run.ranks)
        .map(|(a, b)| ((a - b).abs() / b.abs().max(1e-12)) as f64)
        .fold(0.0f64, f64::max);
    println!("max relative disagreement HiPa vs v-PR: {worst:.2e}");

    // And both agree with the f64 oracle.
    let oracle = hipa::core::reference_pagerank(&g, &cfg);
    println!(
        "max relative error vs f64 oracle: HiPa {:.2e}, v-PR {:.2e}",
        max_rel_error(&hipa_run.ranks, &oracle),
        max_rel_error(&vpr_run.ranks, &oracle)
    );

    println!("top 10 domains:");
    for (v, r) in hipa::top_k(&hipa_run.ranks, 10) {
        println!(
            "  domain#{v:<8} rank {r:.6}  in-links {:<6} out-links {}",
            g.in_degree(v),
            g.out_degree(v)
        );
    }
}
