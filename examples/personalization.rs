//! Personalized PageRank: importance *as seen from a seed user*, computed
//! with the partition-centric SpMV machinery, contrasted with the global
//! ranking — plus a weighted-graph variant.
//!
//! ```text
//! cargo run --release --example personalization
//! ```

use hipa::algos::{personalized_from_seed, wspmv_partition_centric, PersonalizedConfig};
use hipa::graph::{EdgeList, WeightedCsr};
use hipa::prelude::*;

fn main() {
    let g = Dataset::Journal.build();
    let global = hipa::pagerank(&g, 4);
    let top_global = hipa::top_k(&global, 5);
    println!("global top-5: {:?}", top_global.iter().map(|(v, _)| *v).collect::<Vec<_>>());

    // Seed the walk at an arbitrary mid-rank user and see the ranking warp.
    let seed = 12_345u32;
    let res = personalized_from_seed(&g, seed, &PersonalizedConfig::default());
    println!(
        "personalized from user#{seed}: converged = {} after {} iterations",
        res.converged, res.iterations_run
    );
    let top_local = hipa::top_k(&res.ranks, 5);
    println!("seeded top-5: {:?}", top_local.iter().map(|(v, _)| *v).collect::<Vec<_>>());
    println!(
        "seed's own rank: global {:.2e} vs personalized {:.2e}",
        global[seed as usize], res.ranks[seed as usize]
    );

    // Weighted SpMV: one propagation step where edges carry affinities.
    let el = EdgeList::new(
        g.num_vertices(),
        g.out_csr().iter_edges().map(|(s, d)| hipa::graph::Edge::new(s, d)).collect(),
    );
    let w = WeightedCsr::random_weights(&el, 0.1, 1.0, 42);
    let x = res.ranks.clone();
    let y = wspmv_partition_centric(&w, &x, 64 * 1024 / 4);
    let pushed: f32 = y.iter().sum();
    println!(
        "one weighted propagation step moves {:.4} rank mass across {} weighted edges",
        pushed,
        w.num_edges()
    );
}
