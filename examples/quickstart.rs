//! Quickstart: generate a scale-free graph, run HiPa PageRank natively, and
//! print the top-ranked vertices.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hipa::prelude::*;

fn main() {
    // A Graph500-style Kronecker graph: 2^14 vertices, ~16 edges each.
    let params = hipa::graph::gen::RmatParams::graph500(14, 16);
    let edges = hipa::graph::gen::rmat(&params, 42);
    let g = DiGraph::from_edge_list(&edges);
    println!(
        "graph: {} vertices, {} edges ({} dangling)",
        g.num_vertices(),
        g.num_edges(),
        g.dangling_vertices().len()
    );

    // Run HiPa with explicit options (or just `hipa::pagerank(&g, 4)`).
    let cfg = PageRankConfig::default(); // d = 0.85, 20 iterations
    let opts = NativeOpts::new(4, 256 * 1024);
    let run = HiPa.run_native(&g, &cfg, &opts);
    println!(
        "preprocess {:.2?} (partitioning + layout), compute {:.2?} ({} iterations)",
        run.preprocess, run.compute, cfg.iterations
    );

    println!("top 10 vertices by PageRank:");
    for (v, r) in hipa::top_k(&run.ranks, 10) {
        println!("  v{v:<8} rank {r:.6}  (out-degree {})", g.out_degree(v));
    }

    // Sanity: the rank vector is non-negative and bounded by 1.
    let sum: f32 = run.ranks.iter().sum();
    println!("rank mass: {sum:.4} (dangling mass decays under Eq. 1's Ignore policy)");
}
