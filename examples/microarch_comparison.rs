//! Micro-architecture comparison (paper §4.5): the optimal partition size
//! differs between Haswell (inclusive LLC, 256 KB L2 → best at L2/2) and
//! Skylake (non-inclusive LLC, 1 MB L2 → best at L2/4). This example sweeps
//! HiPa's partition size on both simulated machines.
//!
//! ```text
//! cargo run --release --example microarch_comparison
//! ```

use hipa::prelude::*;

fn main() {
    let g = Dataset::Journal.build();
    let cfg = PageRankConfig::default().with_iterations(10);
    const SCALE: usize = 64;

    for machine in [MachineSpec::haswell_e5_2667(), MachineSpec::skylake_4210()] {
        let l2 = machine.l2.size_bytes;
        let llc_kind = if machine.llc_inclusive { "inclusive" } else { "non-inclusive" };
        println!("\n{} — {} KB L2 per core, {} LLC:", machine.name, l2 >> 10, llc_kind);
        let scaled = machine.scaled(SCALE);
        let threads = scaled.topology.logical_cpus();
        let mut best: Option<(usize, f64)> = None;
        for paper_bytes in [32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20] {
            let opts = SimOpts::new(scaled.clone())
                .with_threads(threads)
                .with_partition_bytes((paper_bytes / SCALE).max(64));
            let run = HiPa.run_sim(&g, &cfg, &opts);
            let secs = run.compute_seconds();
            let marker = match paper_bytes {
                b if b == l2 / 4 => "  <- L2/4",
                b if b == l2 / 2 => "  <- L2/2",
                b if b == l2 => "  <- L2",
                _ => "",
            };
            println!("  partition {:>5} KB: {:.4}s{}", paper_bytes >> 10, secs, marker);
            if best.is_none() || secs < best.unwrap().1 {
                best = Some((paper_bytes, secs));
            }
        }
        let (b, _) = best.unwrap();
        println!("  optimum: {} KB = L2/{}", b >> 10, (l2 as f64 / b as f64).round());
    }
}
