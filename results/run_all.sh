#!/bin/bash
cd /root/repo
for bin in table1 table2 fig5 fig6 fig7 table3 overheads single_node ablations convergence trace kernels serve; do
  echo "=== $bin start $(date +%T) ==="
  cargo run --release -q -p hipa-bench --bin $bin > results/$bin.txt 2>results/$bin.err
  echo "=== $bin done $(date +%T) ==="
done
echo "=== pool bench start $(date +%T) ==="
# Scheduler microbenches + a pool_stats counter snapshot (scope dispatch
# cost, per-item claim overhead) from the rayon shim's persistent pool.
cargo bench -q -p hipa-bench --bench pool > results/pool.txt 2>results/pool.err
echo "=== pool bench done $(date +%T) ==="
echo "=== kernels bench start $(date +%T) ==="
# Native prefetch A/B + reorder-prepare cost (the simulated A/B in
# results/kernels.txt is the authoritative measurement; see DESIGN.md 12).
cargo bench -q -p hipa-bench --bench kernels > results/kernels_bench.txt 2>results/kernels_bench.err
echo "=== kernels bench done $(date +%T) ==="
echo "=== serve bench start $(date +%T) ==="
# Residency A/B (one-shot layout rebuild vs resident workspace) + the
# per-query amortization curve of batched multi-vector PPR.
cargo bench -q -p hipa-bench --bench serve > results/serve_bench.txt 2>results/serve_bench.err
echo "=== serve bench done $(date +%T) ==="
echo "=== audit start $(date +%T) ==="
cargo run --release -q -p hipa-audit -- --summary-only > results/audit.txt 2>results/audit.err
echo "=== audit done $(date +%T) ==="
echo ALL_EXPERIMENTS_DONE
