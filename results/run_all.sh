#!/bin/bash
# Regenerates every table/figure/census and a benchmark snapshot. Each step's
# stdout/stderr land in results/<step>.txt / results/<step>.err; failures
# don't abort the sweep but are summarised at the end and propagate into the
# exit status, so a cron'd run can't silently half-complete.
cd /root/repo || exit 1

failed=()

# run_step NAME CMD... — capture output, record failures, keep going.
run_step() {
  local name=$1
  shift
  echo "=== $name start $(date +%T) ==="
  if ! "$@" > "results/$name.txt" 2> "results/$name.err"; then
    failed+=("$name")
  fi
  echo "=== $name done $(date +%T) ==="
}

for bin in table1 table2 fig5 fig6 fig7 table3 overheads single_node ablations convergence trace kernels serve; do
  run_step "$bin" cargo run --release -q -p hipa-bench --bin "$bin"
done

# Scheduler microbenches + a pool_stats counter snapshot (scope dispatch
# cost, per-item claim overhead) from the rayon shim's persistent pool.
run_step pool cargo bench -q -p hipa-bench --bench pool

# Native prefetch A/B + reorder-prepare cost (the simulated A/B in
# results/kernels.txt is the authoritative measurement; see DESIGN.md 12).
run_step kernels_bench cargo bench -q -p hipa-bench --bench kernels

# Residency A/B (one-shot layout rebuild vs resident workspace) + the
# per-query amortization curve of batched multi-vector PPR.
run_step serve_bench cargo bench -q -p hipa-bench --bench serve

# Benchmark snapshot (hipa-bench/v1) + drift check against the committed
# baseline: deterministic metrics must match exactly (DESIGN.md 14).
run_step bench_snapshot cargo run --release -q -p hipa-bench --bin bench-snapshot -- \
  --fast --label local --out results/BENCH_local.json
run_step bench_diff cargo run --release -q -p hipa-perf -- \
  diff results/bench_baseline.json results/BENCH_local.json --deterministic-only

run_step audit cargo run --release -q -p hipa-audit -- --summary-only

# HB-overhead snapshot, appended to audit.txt: the same engine-corpus test
# (tests/check_disjoint.rs) timed under the write-only checker vs the full
# happens-before detector — identical work, so the delta is the read-tracking
# cost (DESIGN.md 15). Binaries are prebuilt so wall time is run time.
{
  echo
  echo "=== check-hb overhead (whole_engine_corpus, release) ==="
  for feat in check-disjoint check-hb; do
    cargo test -q --release --features "$feat" --test check_disjoint --no-run \
      > /dev/null 2>&1
    t0=$(date +%s%N)
    if cargo test -q --release --features "$feat" --test check_disjoint \
        whole_engine_corpus > /dev/null 2>&1; then
      status=ok
    else
      status=FAILED
    fi
    t1=$(date +%s%N)
    echo "$feat: $(((t1 - t0) / 1000000)) ms ($status)"
  done
} >> results/audit.txt 2>> results/audit.err

# Error summary: any step that exited nonzero or left a non-empty .err.
echo "=== summary ==="
noisy=0
for err in results/*.err; do
  if [ -s "$err" ]; then
    noisy=$((noisy + 1))
    echo "--- $err ($(wc -l < "$err") lines) ---"
    head -5 "$err"
  fi
done
[ "$noisy" -eq 0 ] && echo "no stderr output from any step"
if [ ${#failed[@]} -gt 0 ]; then
  echo "FAILED steps: ${failed[*]}"
  exit 1
fi
echo ALL_EXPERIMENTS_DONE
