//! Happens-before machinery behind `check-disjoint` / `check-hb`.
//!
//! The rayon shim's [`rayon::hb`] module maintains per-thread vector clocks
//! and threads them through every pool synchronization edge. This module
//! adds the engine-side pieces (DESIGN.md §15):
//!
//! * [`ClaimCounter`] — the FCFS work-claim counter the engines and
//!   `crate::par::run_indexed` share. Plain builds claim with a `Relaxed`
//!   RMW (uniqueness is all the contract needs); under the checker features
//!   the RMW upgrades to `AcqRel` and takes a matching vector-clock edge,
//!   so successive claimants are ordered in the model exactly as on the
//!   hardware.
//! * [`TrackedBarrier`] — `std::sync::Barrier` plus a release-before /
//!   acquire-after clock edge: everything before any participant's `wait`
//!   happens-before everything after every participant's `wait`, which is
//!   precisely the barrier's guarantee. HiPa's dedicated compute workers
//!   synchronise through this.
//! * [`shadow`] — the per-element shadow state backing `SharedSlice`:
//!   last-write epoch (both features) and adaptive read state (`check-hb`
//!   only: a single epoch until two unordered readers force promotion to a
//!   full read vector clock — the FastTrack representation). Tables are
//!   pooled and generation-stamped: `SharedSlice::new` pops a table from a
//!   global free list in O(1) and bumps its generation (a slot is live only
//!   when its stamp matches), so per-phase slice construction — serve and
//!   SpMV build fresh slices every phase — costs one lock plus, at most,
//!   zeroing the *tail* a larger slice grows; never an O(len) zeroing of
//!   the whole table, which is what the old `WriterTags` did.
//!
//! With both features off every type here still exists, but compiles down
//! to its bare substrate (a `Relaxed` counter, a plain barrier), so call
//! sites are unconditional and the instrumented build cannot drift from the
//! real one.

use std::sync::atomic::AtomicUsize;

/// FCFS work-claim counter: `claim()` hands out `0, 1, 2, …`, exactly once
/// each, to any number of racing claimants.
pub struct ClaimCounter {
    next: AtomicUsize,
    #[cfg(feature = "check-disjoint")]
    clock: rayon::hb::SyncClock,
}

impl Default for ClaimCounter {
    fn default() -> Self {
        ClaimCounter::new()
    }
}

impl ClaimCounter {
    pub fn new() -> ClaimCounter {
        ClaimCounter {
            next: AtomicUsize::new(0),
            #[cfg(feature = "check-disjoint")]
            clock: rayon::hb::SyncClock::new(),
        }
    }

    /// Claims the next index.
    #[inline]
    pub fn claim(&self) -> usize {
        // ordering: relaxed via `CLAIM_ORDERING` (FCFS claim counter — only
        // uniqueness of the claimed index matters; results become visible
        // through the enclosing scope's join). Under the checker features
        // the constant upgrades to `AcqRel` and the claim takes a matching
        // vector-clock edge, so the modeled ordering exists on the hardware.
        let i = self.next.fetch_add(1, rayon::hb::CLAIM_ORDERING);
        #[cfg(feature = "check-disjoint")]
        self.clock.rel_acq();
        i
    }
}

/// `std::sync::Barrier` with a vector-clock edge under the checker
/// features: each participant releases its clock before waiting and
/// acquires the merged clock after, so pre-barrier events of *all*
/// participants happen-before post-barrier events of all participants.
/// Without the features this is exactly a `std::sync::Barrier`.
pub struct TrackedBarrier {
    inner: std::sync::Barrier,
    #[cfg(feature = "check-disjoint")]
    clock: rayon::hb::SyncClock,
}

impl TrackedBarrier {
    pub fn new(n: usize) -> TrackedBarrier {
        TrackedBarrier {
            inner: std::sync::Barrier::new(n),
            #[cfg(feature = "check-disjoint")]
            clock: rayon::hb::SyncClock::new(),
        }
    }

    pub fn wait(&self) -> std::sync::BarrierWaitResult {
        // All `release`s complete before the barrier opens, so every
        // participant's `acquire` below absorbs every participant's past.
        #[cfg(feature = "check-disjoint")]
        self.clock.release();
        let r = self.inner.wait();
        #[cfg(feature = "check-disjoint")]
        self.clock.acquire();
        r
    }
}

/// Per-element shadow state (write epochs, adaptive read state) and the
/// generation-stamped table pool. Only `SharedSlice` talks to this.
#[cfg(feature = "check-disjoint")]
pub(crate) mod shadow {
    use rayon::hb;
    use std::sync::Mutex;

    /// Read state of one element under `check-hb`: FastTrack's adaptive
    /// representation — a single epoch while reads are totally ordered,
    /// promoted to a full vector clock on the first pair of concurrent
    /// readers.
    #[cfg(feature = "check-hb")]
    #[derive(Default)]
    enum ReadState {
        #[default]
        None,
        Epoch(u32, u64),
        Clock(hb::VClock),
    }

    #[derive(Default)]
    struct Slot {
        /// Matches the owning table's generation when this slot is live;
        /// any other value means "untouched this lifetime".
        gen: u64,
        /// Epoch `(tid, clk)` of the last write this slice lifetime.
        write: Option<(u32, u64)>,
        #[cfg(feature = "check-hb")]
        read: ReadState,
    }

    /// One shadow table: a generation stamp plus one mutex-guarded slot per
    /// element. Pooled in a process-wide free list; see [`ShadowTable::acquire`].
    #[derive(Default)]
    pub(crate) struct ShadowTable {
        gen: u64,
        slots: Vec<Mutex<Slot>>,
    }

    /// Free list of retired tables; bounded so pathological slice churn
    /// cannot hoard memory.
    static POOL: Mutex<Vec<ShadowTable>> = Mutex::new(Vec::new());
    const POOL_CAP: usize = 16;

    /// Ignore mutex poisoning throughout: a detected race panics while the
    /// reporting thread owns a slot lock, and the shadow state stays valid
    /// regardless (generation stamps gate every slot).
    fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
        r.unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl ShadowTable {
        /// Pops a pooled table (or starts an empty one), bumps its
        /// generation — invalidating every recycled slot in O(1) — and
        /// grows it to `len` slots if needed (zeroing only the new tail).
        pub(crate) fn acquire(len: usize) -> ShadowTable {
            let mut t = unpoison(POOL.lock()).pop().unwrap_or_default();
            t.gen += 1;
            if t.slots.len() < len {
                t.slots.resize_with(len, Mutex::default);
            }
            t
        }

        /// Returns a table to the free list (dropped if the list is full).
        pub(crate) fn release(t: ShadowTable) {
            if t.slots.is_empty() {
                return;
            }
            let mut pool = unpoison(POOL.lock());
            if pool.len() < POOL_CAP {
                pool.push(t);
            }
        }

        fn slot(&self, i: usize) -> std::sync::MutexGuard<'_, Slot> {
            let mut s = unpoison(self.slots[i].lock());
            if s.gen != self.gen {
                *s = Slot { gen: self.gen, ..Slot::default() };
            }
            s
        }

        /// FastTrack write rule: a prior write or read whose epoch this
        /// thread's clock does not cover is a race; then record this write
        /// and clear the read state (future conflicts will be caught
        /// against the fresher write epoch).
        pub(crate) fn on_write(&self, i: usize) {
            let mut slot = self.slot(i);
            let (me, now) = hb::my_epoch();
            if let Some((tid, clk)) = slot.write {
                if !hb::clock_covers(tid, clk) {
                    let msg = format!(
                        "check-disjoint: overlapping SharedSlice write at index {i}: thread \
                         tag {me} ({:?}) wrote an element first written by thread tag {tid} \
                         with no happens-before edge between the writes — prior write clock \
                         t{tid}@{clk}, this thread's clock {} — the disjoint-write contract \
                         (crates/core/src/disjoint.rs) is violated",
                        std::thread::current().id(),
                        hb::my_clock().render(),
                    );
                    drop(slot);
                    panic!("{msg}");
                }
            }
            #[cfg(feature = "check-hb")]
            {
                let racy_read = match &slot.read {
                    ReadState::None => None,
                    ReadState::Epoch(t, c) => (!hb::clock_covers(*t, *c)).then_some((*t, *c)),
                    ReadState::Clock(vc) => vc.iter().find(|&(t, c)| !hb::clock_covers(t, c)),
                };
                if let Some((t, c)) = racy_read {
                    let msg = format!(
                        "check-hb: read-write race on SharedSlice index {i}: thread tag {me} \
                         ({:?}) wrote an element read by thread tag {t} with no happens-before \
                         edge between the accesses — read clock t{t}@{c}, this thread's clock \
                         {} — the element needed a synchronization edge (scope join, barrier, \
                         or claim cursor) between the read and the write",
                        std::thread::current().id(),
                        hb::my_clock().render(),
                    );
                    drop(slot);
                    panic!("{msg}");
                }
                slot.read = ReadState::None;
            }
            slot.write = Some((me, now));
        }

        /// FastTrack read rule: a prior write this thread's clock does not
        /// cover is a race; then fold this read into the adaptive read
        /// state (same-epoch or ordered reads stay a single epoch; a
        /// concurrent second reader promotes to a read vector clock).
        #[cfg(feature = "check-hb")]
        pub(crate) fn on_read(&self, i: usize) {
            let mut slot = self.slot(i);
            let (me, now) = hb::my_epoch();
            if let Some((tid, clk)) = slot.write {
                if !hb::clock_covers(tid, clk) {
                    let msg = format!(
                        "check-hb: write-read race on SharedSlice index {i}: thread tag {me} \
                         ({:?}) read an element written by thread tag {tid} with no \
                         happens-before edge between the accesses — write clock t{tid}@{clk}, \
                         this thread's clock {} — the element needed a synchronization edge \
                         (scope join, barrier, or claim cursor) between the write and the read",
                        std::thread::current().id(),
                        hb::my_clock().render(),
                    );
                    drop(slot);
                    panic!("{msg}");
                }
            }
            slot.read = match std::mem::take(&mut slot.read) {
                ReadState::None => ReadState::Epoch(me, now),
                ReadState::Epoch(t, c) if t == me || hb::clock_covers(t, c) => {
                    ReadState::Epoch(me, now)
                }
                ReadState::Epoch(t, c) => {
                    let mut vc = hb::VClock::new();
                    vc.set_max(t, c);
                    vc.set_max(me, now);
                    ReadState::Clock(vc)
                }
                ReadState::Clock(mut vc) => {
                    vc.set_max(me, now);
                    ReadState::Clock(vc)
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_counter_hands_out_unique_indices() {
        let c = ClaimCounter::new();
        let mut seen = Vec::new();
        loop {
            let i = c.claim();
            if i >= 100 {
                break;
            }
            seen.push(i);
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tracked_barrier_is_a_barrier() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 4;
        let barrier = TrackedBarrier::new(n);
        let before = AtomicUsize::new(0);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap();
        pool.scope(|s| {
            for _ in 0..n {
                s.spawn(|_| {
                    // ordering: relaxed (test tally; the barrier orders it).
                    before.fetch_add(1, Ordering::Relaxed);
                    barrier.wait();
                    // ordering: relaxed (read after the barrier).
                    assert_eq!(before.load(Ordering::Relaxed), n);
                });
            }
        });
    }
}
