//! Software-prefetch hints for the scatter/gather hot loops.
//!
//! The PCPM scatter loop walks contiguous source runs but writes message
//! values through per-destination-partition bin cursors, and the gather
//! loop applies a streamed value array to random accumulator slots — both
//! patterns where the next few cache lines are computable well before the
//! demand access. These helpers issue `core::arch` prefetch hints for
//! exactly those lines.
//!
//! Design rules (DESIGN.md §12):
//!
//! * **Hints only.** A prefetch never reads or writes the referenced
//!   memory; it cannot fault and cannot change any engine's output. Every
//!   call is bounds-checked and out-of-range indices are ignored, so
//!   callers can prefetch a fixed distance ahead without clamping.
//! * **Feature-gated.** The `prefetch` cargo feature (default on) plus an
//!   `x86_64` target are required for real hints; everywhere else the
//!   functions compile to nothing. The *runtime* knob
//!   (`NativeOpts::prefetch` / `SimOpts::prefetch`) is separate so A/B
//!   censuses don't need a rebuild.
//! * **The sim stays honest.** The simulated path never calls these host
//!   hints; it charges an explicit `mem.prefetch` counter through
//!   [`hipa_numasim`]'s `ThreadCtx::prefetch` instead, so modelled cycles
//!   account for prefetch issue cost and the early DRAM traffic.

/// Distance (in elements) the scatter/gather loops run ahead of the demand
/// access. Covers the L2 latency at one element per few cycles without
/// thrashing the L1 fill buffers; shared by native and sim paths so the
/// modelled access stream matches the host's.
pub const PREFETCH_DISTANCE: usize = 16;

/// L2 capacity assumed by the *native* PCPM kernels' adaptive hint gate
/// (the simulated path reads the machine spec instead). PCPM sizes
/// partitions so the random-access working set — the `partition_bytes`-wide
/// contribution/accumulator span — stays cache-resident, in which case
/// hints only burn issue slots; they arm exactly when the configured
/// partition spills this capacity (1 MB, the Xeon 4210's per-core L2).
pub const NATIVE_L2_BYTES: usize = 1 << 20;

/// Hints that `data[index]` will be read soon. Out-of-range `index` is a
/// no-op, as is the whole call without the `prefetch` feature or off
/// x86_64.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(all(feature = "prefetch", target_arch = "x86_64"))]
    if index < data.len() {
        // SAFETY: `index < data.len()` so the pointer is in-bounds;
        // `_mm_prefetch` is a hint that performs no memory access and has
        // no architectural effect, so it is safe on any address.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                data.as_ptr().add(index) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(all(feature = "prefetch", target_arch = "x86_64")))]
    {
        let _ = (data, index);
    }
}

/// Hints that `data[index]` will be written soon. x86 has no distinct
/// write-prefetch in the T0 family worth modelling separately, so this
/// fetches into L1 exactly like [`prefetch_read`]; it exists so call sites
/// document intent.
#[inline(always)]
pub fn prefetch_write<T>(data: &[T], index: usize) {
    prefetch_read(data, index);
}

/// Collapses per-element hint sites to one hint per cache line.
///
/// The hot loops index 4-byte elements, so 16 consecutive indices share one
/// 64-byte line; hinting each of them would spend 16 issue slots on one
/// fetch. Loops keep one filter per prefetched array and only call the
/// prefetch helper when [`LineFilter::admit`] accepts the index. The filter
/// remembers a single line — exactly right for the (mostly ascending)
/// source/destination runs these loops walk.
#[derive(Debug)]
pub struct LineFilter(usize);

/// 4-byte elements per 64-byte cache line, as a shift.
const LINE_SHIFT: u32 = 4;

impl LineFilter {
    #[inline(always)]
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        LineFilter(usize::MAX)
    }

    /// `true` iff `index` falls on a different cache line than the last
    /// admitted index (the caller should then issue the hint).
    #[inline(always)]
    pub fn admit(&mut self, index: usize) -> bool {
        let line = index >> LINE_SHIFT;
        if line == self.0 {
            false
        } else {
            self.0 = line;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_and_out_of_bounds_are_noops_semantically() {
        let v = vec![1u32, 2, 3];
        prefetch_read(&v, 0);
        prefetch_read(&v, 2);
        prefetch_read(&v, 3); // out of range: ignored
        prefetch_read(&v, usize::MAX);
        prefetch_write(&v, 1);
        let empty: Vec<f32> = Vec::new();
        prefetch_read(&empty, 0);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn line_filter_admits_once_per_line() {
        let mut f = LineFilter::new();
        assert!(f.admit(0));
        for i in 1..16 {
            assert!(!f.admit(i), "index {i} shares line 0");
        }
        assert!(f.admit(16));
        assert!(f.admit(0)); // going back is a new line again
        assert!(!f.admit(15));
    }
}
