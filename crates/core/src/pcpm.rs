//! Partition-centric scatter/gather data layout with inter-edge compression.
//!
//! This is the PCPM layout of Lakhotia et al. (ATC'18) — reference [21] of
//! the paper — which HiPa adopts (§3.4, Fig. 4) and which the `p-PR` and
//! `GPOP` baselines also use:
//!
//! * Out-edges whose destination lies in the *same* cache partition as the
//!   source ("intra-edges") are kept as plain adjacency and applied directly
//!   inside the private cache during scatter.
//! * Out-edges crossing partitions ("inter-edges") are *compressed*: all
//!   inter-edges from one source vertex into one destination partition
//!   collapse into a single **message slot**. At scatter the source writes
//!   its contribution into the slot; at gather the destination partition
//!   streams its slots and propagates each value to the recorded destination
//!   vertices via the local `dest_verts` list.
//!
//! Slots are laid out grouped by destination partition and, within a
//! destination, ordered by (source partition, source vertex) — so scatter
//! writes each destination bin sequentially and gather reads its whole inbox
//! as one stream. Sizes are static because PageRank sends every message in
//! every iteration.
//!
//! disjointness: build-chunk plan — each parallel build pass claims fixed
//! `CHUNK_VERTS` vertex chunks (or whole partitions) via `run_indexed`, and
//! every write lands in the claimed chunk's own index range of the output
//! arrays; each `SharedSlice` lives for a single pass.

use crate::par::run_indexed;
use hipa_graph::Csr;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Vertices per parallel build chunk. Fixed (not thread-derived) so the
/// chunk decomposition is deterministic; the built layout is identical for
/// any chunking regardless (see [`PcpmLayout::build_par_ext`]).
const CHUNK_VERTS: usize = 4096;

/// Process-wide tally of layout constructions. Bumped once per build —
/// at the head of the sequential builder and of the parallel builder's
/// non-delegating path, so a parallel build that falls back to the
/// sequential one still counts exactly once.
static LAYOUT_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total [`PcpmLayout`] builds since process start (monotonic). The serve
/// census reads deltas of this to prove that a batch of requests reused one
/// resident layout instead of rebuilding per call.
pub fn layout_builds_total() -> u64 {
    // ordering: relaxed (monotonic statistics counter; callers read deltas
    // after the builds they issued have returned — no payload is published
    // through it).
    LAYOUT_BUILDS.load(Ordering::Relaxed)
}

/// The built layout. All index arrays are `u64`-offset CSR-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcpmLayout {
    pub verts_per_partition: usize,
    pub num_partitions: usize,
    pub num_vertices: usize,
    /// Intra-edge adjacency: destinations of vertex `v` are
    /// `intra_dst[intra_offsets[v]..intra_offsets[v+1]]`. Empty when
    /// `include_intra_in_bins` (the GPOP-style mode that bins everything).
    pub intra_offsets: Vec<u64>,
    pub intra_dst: Vec<u32>,
    /// Compressed messages of vertex `v`:
    /// `msg_slot[msg_offsets[v]..msg_offsets[v+1]]` (parallel to
    /// `msg_dst_part`).
    pub msg_offsets: Vec<u64>,
    pub msg_dst_part: Vec<u32>,
    pub msg_slot: Vec<u64>,
    /// Slot ranges per destination partition (contiguous, ascending).
    pub part_slot_ranges: Vec<Range<u64>>,
    /// Destination vertices of slot `k`:
    /// `dest_verts[dest_offsets[k]..dest_offsets[k+1]]`.
    ///
    /// At run time the real PCPM encodes message boundaries *inside* the
    /// destination list with an MSB flag on each message's first entry, so
    /// only 4 bytes per edge are streamed; `dest_offsets` is the build-time
    /// equivalent and is not charged as runtime traffic.
    pub dest_offsets: Vec<u64>,
    pub dest_verts: Vec<u32>,
    pub total_msgs: u64,
    /// GPOP-style mode: intra-edges are binned like everything else.
    pub include_intra_in_bins: bool,
    /// PNG ("partition-node-graph") scatter view: for source partition `p`,
    /// `png_pairs[png_index[p].clone()]` lists the destination bins, each
    /// with its contiguous slot range; `png_src` holds the source vertex of
    /// every message in `(p, q, v)` order.
    pub png_index: Vec<Range<u32>>,
    pub png_pairs: Vec<PngPair>,
    pub png_src: Vec<u32>,
}

/// One (source partition → destination partition) bin in the PNG scatter
/// view: `len` messages whose slots are `slot_start..slot_start+len`, with
/// source vertices in `png_src[src_start..src_start+len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PngPair {
    pub dst_part: u32,
    pub slot_start: u64,
    pub src_start: u64,
    pub len: u32,
}

impl PcpmLayout {
    /// Builds the layout from an out-CSR.
    ///
    /// `verts_per_partition` is |P| (= partition bytes / 4 per §3.1);
    /// `include_intra_in_bins` selects the GPOP-style all-binned mode.
    pub fn build(csr: &Csr, verts_per_partition: usize, include_intra_in_bins: bool) -> Self {
        Self::build_ext(csr, verts_per_partition, include_intra_in_bins, true)
    }

    /// [`Self::build`] with inter-edge compression switchable — the
    /// `ablation_compression` experiment disables it, giving every
    /// inter-edge its own single-destination message (Fig. 4 "before").
    ///
    /// Uses all available host parallelism; the result is bit-identical to
    /// [`Self::build_seq_ext`] for any thread count.
    pub fn build_ext(
        csr: &Csr,
        verts_per_partition: usize,
        include_intra_in_bins: bool,
        compress_inter: bool,
    ) -> Self {
        Self::build_par_ext(
            csr,
            verts_per_partition,
            include_intra_in_bins,
            compress_inter,
            rayon::current_num_threads(),
        )
    }

    /// The reference single-threaded builder. [`Self::build_par_ext`] must
    /// produce exactly this layout; the bit-equality tests compare against
    /// it.
    pub fn build_seq_ext(
        csr: &Csr,
        verts_per_partition: usize,
        include_intra_in_bins: bool,
        compress_inter: bool,
    ) -> Self {
        assert!(verts_per_partition >= 1);
        // ordering: relaxed (statistics tally; see `layout_builds_total`).
        LAYOUT_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = csr.num_vertices();
        let num_partitions = n.div_ceil(verts_per_partition).max(1);
        let part_of = |v: u32| v as usize / verts_per_partition;

        // Pass 1: count intra edges per vertex, messages per vertex, and
        // messages per destination partition. Neighbour lists are sorted, so
        // each destination partition appears as one contiguous run.
        let mut intra_offsets = vec![0u64; n + 1];
        let mut msg_offsets = vec![0u64; n + 1];
        let mut msgs_per_part = vec![0u64; num_partitions];
        for v in 0..n as u32 {
            let pv = part_of(v);
            let mut last = usize::MAX;
            let mut intra = 0u64;
            let mut msgs = 0u64;
            debug_assert!(
                csr.neighbors(v).windows(2).all(|w| w[0] <= w[1]),
                "adjacency must be sorted"
            );
            for &t in csr.neighbors(v) {
                let pt = part_of(t);
                if pt == pv && !include_intra_in_bins {
                    intra += 1;
                    continue;
                }
                // Sorted neighbours make destination partitions monotone, so
                // each partition is one contiguous run.
                if pt != last || !compress_inter {
                    msgs += 1;
                    msgs_per_part[pt] += 1;
                    last = pt;
                }
            }
            intra_offsets[v as usize + 1] = intra_offsets[v as usize] + intra;
            msg_offsets[v as usize + 1] = msg_offsets[v as usize] + msgs;
        }
        let total_intra = intra_offsets[n];
        let total_msgs = msg_offsets[n];

        let mut part_slot_ranges = Vec::with_capacity(num_partitions);
        let mut acc = 0u64;
        for q in 0..num_partitions {
            part_slot_ranges.push(acc..acc + msgs_per_part[q]);
            acc += msgs_per_part[q];
        }
        debug_assert_eq!(acc, total_msgs);

        // Pass 2: assign slots (per-destination cursors advance in source
        // order) and record per-slot destination counts.
        let mut intra_dst = vec![0u32; total_intra as usize];
        let mut msg_dst_part = vec![0u32; total_msgs as usize];
        let mut msg_slot = vec![0u64; total_msgs as usize];
        let mut slot_dest_count = vec![0u64; total_msgs as usize];
        let mut cursors: Vec<u64> = part_slot_ranges.iter().map(|r| r.start).collect();
        let mut intra_cur = 0usize;
        let mut msg_cur = 0usize;
        for v in 0..n as u32 {
            let pv = part_of(v);
            let mut run_part = usize::MAX;
            let mut run_slot = 0u64;
            for &t in csr.neighbors(v) {
                let pt = part_of(t);
                if pt == pv && !include_intra_in_bins {
                    intra_dst[intra_cur] = t;
                    intra_cur += 1;
                    continue;
                }
                if pt != run_part || !compress_inter {
                    run_part = pt;
                    run_slot = cursors[pt];
                    cursors[pt] += 1;
                    msg_dst_part[msg_cur] = pt as u32;
                    msg_slot[msg_cur] = run_slot;
                    msg_cur += 1;
                }
                slot_dest_count[run_slot as usize] += 1;
            }
        }
        debug_assert_eq!(intra_cur as u64, total_intra);
        debug_assert_eq!(msg_cur as u64, total_msgs);

        // Destination lists in slot order.
        let mut dest_offsets = vec![0u64; total_msgs as usize + 1];
        for k in 0..total_msgs as usize {
            dest_offsets[k + 1] = dest_offsets[k] + slot_dest_count[k];
        }
        let total_dests = dest_offsets[total_msgs as usize];
        let mut dest_verts = vec![0u32; total_dests as usize];
        // Pass 3: fill destination lists; reuse per-slot fill cursors.
        let mut fill: Vec<u64> = dest_offsets[..total_msgs as usize].to_vec();
        let mut msg_cur = 0usize;
        for v in 0..n as u32 {
            let pv = part_of(v);
            let mut run_part = usize::MAX;
            let mut run_slot = 0u64;
            for &t in csr.neighbors(v) {
                let pt = part_of(t);
                if pt == pv && !include_intra_in_bins {
                    continue;
                }
                if pt != run_part || !compress_inter {
                    run_part = pt;
                    run_slot = msg_slot[msg_cur];
                    msg_cur += 1;
                }
                let f = &mut fill[run_slot as usize];
                dest_verts[*f as usize] = t;
                *f += 1;
            }
        }

        // Pass 4: the PNG scatter view. Within one source partition, the
        // slots destined to a given partition are contiguous and ascending
        // (the per-destination cursor advances in source order), so grouping
        // p's messages by destination yields one (slot range, source list)
        // bin per destination partition.
        let mut png_index = Vec::with_capacity(num_partitions);
        let mut png_pairs: Vec<PngPair> = Vec::new();
        let mut png_src = vec![0u32; total_msgs as usize];
        let mut src_cur = 0u64;
        let mut triples: Vec<(u32, u64, u32)> = Vec::new(); // (q, slot, v)
        for p in 0..num_partitions {
            let v_lo = (p * verts_per_partition).min(n);
            let v_hi = ((p + 1) * verts_per_partition).min(n);
            triples.clear();
            for v in v_lo as u32..v_hi as u32 {
                let lo = msg_offsets[v as usize] as usize;
                let hi = msg_offsets[v as usize + 1] as usize;
                for k in lo..hi {
                    triples.push((msg_dst_part[k], msg_slot[k], v));
                }
            }
            triples.sort_unstable();
            let pairs_start = png_pairs.len() as u32;
            let mut i = 0usize;
            while i < triples.len() {
                let q = triples[i].0;
                let slot_start = triples[i].1;
                let src_start = src_cur;
                let mut len = 0u32;
                while i < triples.len() && triples[i].0 == q {
                    debug_assert_eq!(triples[i].1, slot_start + len as u64, "slots not contiguous");
                    png_src[src_cur as usize] = triples[i].2;
                    src_cur += 1;
                    len += 1;
                    i += 1;
                }
                png_pairs.push(PngPair { dst_part: q, slot_start, src_start, len });
            }
            png_index.push(pairs_start..png_pairs.len() as u32);
        }
        debug_assert_eq!(src_cur, total_msgs);

        PcpmLayout {
            verts_per_partition,
            num_partitions,
            num_vertices: n,
            intra_offsets,
            intra_dst,
            msg_offsets,
            msg_dst_part,
            msg_slot,
            part_slot_ranges,
            dest_offsets,
            dest_verts,
            total_msgs,
            include_intra_in_bins,
            png_index,
            png_pairs,
            png_src,
        }
    }

    /// Multi-threaded layout construction, bit-identical to
    /// [`Self::build_seq_ext`] for every `build_threads` value.
    ///
    /// The sequential builder's only cross-vertex state is the per-destination
    /// slot cursor, which advances in source-vertex order. Splitting the
    /// vertex range into fixed chunks and exclusive-scanning the per-chunk ×
    /// per-partition message counts reproduces the exact cursor value at
    /// every chunk boundary, so each chunk can assign its slots — and fill
    /// every downstream array — independently, writing structurally disjoint
    /// ranges through [`SharedSlice`](crate::disjoint::SharedSlice). The
    /// output therefore does not depend on the chunking or on thread
    /// scheduling.
    pub fn build_par_ext(
        csr: &Csr,
        verts_per_partition: usize,
        include_intra_in_bins: bool,
        compress_inter: bool,
        build_threads: usize,
    ) -> Self {
        Self::build_par_chunked(
            csr,
            verts_per_partition,
            include_intra_in_bins,
            compress_inter,
            build_threads,
            CHUNK_VERTS,
        )
    }

    /// [`Self::build_par_ext`] with an explicit chunk size. Exposed so the
    /// bit-equality tests can force multi-chunk execution on small graphs;
    /// production callers use the tuned [`CHUNK_VERTS`] default.
    #[doc(hidden)]
    pub fn build_par_chunked(
        csr: &Csr,
        verts_per_partition: usize,
        include_intra_in_bins: bool,
        compress_inter: bool,
        build_threads: usize,
        chunk_verts: usize,
    ) -> Self {
        use crate::disjoint::SharedSlice;

        let threads = build_threads.max(1);
        let chunk_verts = chunk_verts.max(1);
        let n = csr.num_vertices();
        if threads == 1 || n == 0 {
            return Self::build_seq_ext(
                csr,
                verts_per_partition,
                include_intra_in_bins,
                compress_inter,
            );
        }
        assert!(verts_per_partition >= 1);
        // ordering: relaxed (statistics tally; see `layout_builds_total`).
        LAYOUT_BUILDS.fetch_add(1, Ordering::Relaxed);
        let num_partitions = n.div_ceil(verts_per_partition).max(1);
        let part_of = |v: u32| v as usize / verts_per_partition;

        let num_chunks = n.div_ceil(chunk_verts);
        let chunk_range = |c: usize| (c * chunk_verts)..((c + 1) * chunk_verts).min(n);

        // Pass 1 (parallel): per-vertex intra/message counts into the
        // offset arrays' `v + 1` slots, and a chunks × partitions message
        // count matrix.
        let mut intra_offsets = vec![0u64; n + 1];
        let mut msg_offsets = vec![0u64; n + 1];
        let mut chunk_part_msgs = vec![0u64; num_chunks * num_partitions];
        {
            let intra_s = SharedSlice::new(&mut intra_offsets);
            let msg_s = SharedSlice::new(&mut msg_offsets);
            let counts_s = SharedSlice::new(&mut chunk_part_msgs);
            run_indexed(num_chunks, threads, |c| {
                let row = c * num_partitions;
                for v in chunk_range(c) {
                    let v = v as u32;
                    let pv = part_of(v);
                    let mut last = usize::MAX;
                    let mut intra = 0u64;
                    let mut msgs = 0u64;
                    debug_assert!(
                        csr.neighbors(v).windows(2).all(|w| w[0] <= w[1]),
                        "adjacency must be sorted"
                    );
                    for &t in csr.neighbors(v) {
                        let pt = part_of(t);
                        if pt == pv && !include_intra_in_bins {
                            intra += 1;
                            continue;
                        }
                        if pt != last || !compress_inter {
                            msgs += 1;
                            // SAFETY: row `c` of the count matrix is this
                            // chunk's alone.
                            unsafe { counts_s.update(row + pt, |x| *x += 1) };
                            last = pt;
                        }
                    }
                    // SAFETY: `v + 1` slots of distinct chunks are disjoint.
                    unsafe {
                        intra_s.write(v as usize + 1, intra);
                        msg_s.write(v as usize + 1, msgs);
                    }
                }
            });
        }
        // Sequential scans: per-vertex counts → offsets; count-matrix columns
        // → per-destination slot ranges plus each chunk's starting cursor
        // (the sequential cursor state at that chunk's first vertex).
        for v in 0..n {
            intra_offsets[v + 1] += intra_offsets[v];
            msg_offsets[v + 1] += msg_offsets[v];
        }
        let total_intra = intra_offsets[n];
        let total_msgs = msg_offsets[n];
        let mut msgs_per_part = vec![0u64; num_partitions];
        for c in 0..num_chunks {
            for q in 0..num_partitions {
                msgs_per_part[q] += chunk_part_msgs[c * num_partitions + q];
            }
        }
        let mut part_slot_ranges = Vec::with_capacity(num_partitions);
        let mut acc = 0u64;
        for q in 0..num_partitions {
            part_slot_ranges.push(acc..acc + msgs_per_part[q]);
            acc += msgs_per_part[q];
        }
        debug_assert_eq!(acc, total_msgs);
        // Exclusive scan down each column, in place: entry (c, q) becomes the
        // cursor for destination q at chunk c's start.
        let mut col_cursor = msgs_per_part; // reuse; overwritten below
        for (q, r) in part_slot_ranges.iter().enumerate() {
            col_cursor[q] = r.start;
        }
        for c in 0..num_chunks {
            for q in 0..num_partitions {
                let cell = &mut chunk_part_msgs[c * num_partitions + q];
                let count = *cell;
                *cell = col_cursor[q];
                col_cursor[q] += count;
            }
        }
        let chunk_cursors = chunk_part_msgs;

        // Pass 2 (parallel): slot assignment and per-slot destination
        // counts. Each chunk's writes are confined to its own vertex range
        // (intra_dst, msg_dst_part, msg_slot) and its own slot blocks
        // (slot_dest_count).
        let mut intra_dst = vec![0u32; total_intra as usize];
        let mut msg_dst_part = vec![0u32; total_msgs as usize];
        let mut msg_slot = vec![0u64; total_msgs as usize];
        let mut slot_dest_count = vec![0u64; total_msgs as usize];
        {
            let intra_dst_s = SharedSlice::new(&mut intra_dst);
            let msg_dst_part_s = SharedSlice::new(&mut msg_dst_part);
            let msg_slot_s = SharedSlice::new(&mut msg_slot);
            let sdc_s = SharedSlice::new(&mut slot_dest_count);
            let intra_offsets = &intra_offsets;
            let msg_offsets = &msg_offsets;
            let chunk_cursors = &chunk_cursors;
            run_indexed(num_chunks, threads, |c| {
                let vr = chunk_range(c);
                let mut cursors =
                    chunk_cursors[c * num_partitions..(c + 1) * num_partitions].to_vec();
                let mut intra_cur = intra_offsets[vr.start] as usize;
                let mut msg_cur = msg_offsets[vr.start] as usize;
                for v in vr {
                    let v = v as u32;
                    let pv = part_of(v);
                    let mut run_part = usize::MAX;
                    let mut run_slot = 0u64;
                    for &t in csr.neighbors(v) {
                        let pt = part_of(t);
                        if pt == pv && !include_intra_in_bins {
                            // SAFETY: intra_cur stays inside this chunk's
                            // intra_offsets range.
                            unsafe { intra_dst_s.write(intra_cur, t) };
                            intra_cur += 1;
                            continue;
                        }
                        if pt != run_part || !compress_inter {
                            run_part = pt;
                            run_slot = cursors[pt];
                            cursors[pt] += 1;
                            // SAFETY: msg_cur stays inside this chunk's
                            // msg_offsets range.
                            unsafe {
                                msg_dst_part_s.write(msg_cur, pt as u32);
                                msg_slot_s.write(msg_cur, run_slot);
                            }
                            msg_cur += 1;
                        }
                        // SAFETY: run_slot came from this chunk's cursor
                        // block — no other chunk touches it.
                        unsafe { sdc_s.update(run_slot as usize, |x| *x += 1) };
                    }
                }
                debug_assert_eq!(intra_cur as u64, intra_offsets[chunk_range(c).end]);
                debug_assert_eq!(msg_cur as u64, msg_offsets[chunk_range(c).end]);
            });
        }

        let mut dest_offsets = vec![0u64; total_msgs as usize + 1];
        for k in 0..total_msgs as usize {
            dest_offsets[k + 1] = dest_offsets[k] + slot_dest_count[k];
        }
        let total_dests = dest_offsets[total_msgs as usize];

        // Pass 3 (parallel): destination lists. A slot's whole destination
        // run comes from a single (vertex, partition) neighbour run — sorted
        // adjacency makes partition runs contiguous — so a run-local fill
        // cursor suffices and every dest_verts index is written by exactly
        // one chunk.
        let mut dest_verts = vec![0u32; total_dests as usize];
        {
            let dest_verts_s = SharedSlice::new(&mut dest_verts);
            let msg_offsets = &msg_offsets;
            let msg_slot = &msg_slot;
            let dest_offsets = &dest_offsets;
            run_indexed(num_chunks, threads, |c| {
                let vr = chunk_range(c);
                let mut msg_cur = msg_offsets[vr.start] as usize;
                for v in vr {
                    let v = v as u32;
                    let pv = part_of(v);
                    let mut run_part = usize::MAX;
                    let mut fill = 0u64;
                    for &t in csr.neighbors(v) {
                        let pt = part_of(t);
                        if pt == pv && !include_intra_in_bins {
                            continue;
                        }
                        if pt != run_part || !compress_inter {
                            run_part = pt;
                            fill = dest_offsets[msg_slot[msg_cur] as usize];
                            msg_cur += 1;
                        }
                        // SAFETY: this slot's dest range belongs to this
                        // run alone.
                        unsafe { dest_verts_s.write(fill as usize, t) };
                        fill += 1;
                    }
                }
            });
        }

        // Pass 4 (parallel over source partitions): the PNG scatter view.
        // Partition p's messages occupy png_src[msg_offsets[v_lo(p)]..
        // msg_offsets[v_hi(p))] — the sequential writer's src_cur equals
        // msg_offsets[v_lo] when it reaches p — so partitions write disjoint
        // png_src ranges; the per-partition pair lists are concatenated
        // sequentially afterwards.
        let mut png_src = vec![0u32; total_msgs as usize];
        let mut per_part_pairs: Vec<Vec<PngPair>> = vec![Vec::new(); num_partitions];
        {
            let png_src_s = SharedSlice::new(&mut png_src);
            let pairs_s = SharedSlice::new(&mut per_part_pairs);
            let msg_offsets = &msg_offsets;
            let msg_dst_part = &msg_dst_part;
            let msg_slot = &msg_slot;
            run_indexed(num_partitions, threads, |p| {
                let v_lo = (p * verts_per_partition).min(n);
                let v_hi = ((p + 1) * verts_per_partition).min(n);
                let mut triples: Vec<(u32, u64, u32)> = Vec::new(); // (q, slot, v)
                for v in v_lo as u32..v_hi as u32 {
                    let lo = msg_offsets[v as usize] as usize;
                    let hi = msg_offsets[v as usize + 1] as usize;
                    for k in lo..hi {
                        triples.push((msg_dst_part[k], msg_slot[k], v));
                    }
                }
                triples.sort_unstable();
                let mut pairs = Vec::new();
                let mut src_cur = msg_offsets[v_lo];
                let mut i = 0usize;
                while i < triples.len() {
                    let q = triples[i].0;
                    let slot_start = triples[i].1;
                    let src_start = src_cur;
                    let mut len = 0u32;
                    while i < triples.len() && triples[i].0 == q {
                        debug_assert_eq!(
                            triples[i].1,
                            slot_start + len as u64,
                            "slots not contiguous"
                        );
                        // SAFETY: src_cur stays inside partition p's
                        // msg_offsets range.
                        unsafe { png_src_s.write(src_cur as usize, triples[i].2) };
                        src_cur += 1;
                        len += 1;
                        i += 1;
                    }
                    pairs.push(PngPair { dst_part: q, slot_start, src_start, len });
                }
                debug_assert_eq!(src_cur, msg_offsets[v_hi]);
                // SAFETY: element p is this partition's alone.
                unsafe { pairs_s.write(p, pairs) };
            });
        }
        let mut png_index = Vec::with_capacity(num_partitions);
        let mut png_pairs: Vec<PngPair> = Vec::new();
        for pairs in per_part_pairs {
            let start = png_pairs.len() as u32;
            png_pairs.extend_from_slice(&pairs);
            png_index.push(start..png_pairs.len() as u32);
        }

        PcpmLayout {
            verts_per_partition,
            num_partitions,
            num_vertices: n,
            intra_offsets,
            intra_dst,
            msg_offsets,
            msg_dst_part,
            msg_slot,
            part_slot_ranges,
            dest_offsets,
            dest_verts,
            total_msgs,
            include_intra_in_bins,
            png_index,
            png_pairs,
            png_src,
        }
    }

    /// PNG bins of source partition `p` (scatter iteration view).
    #[inline]
    pub fn png_of(&self, p: usize) -> &[PngPair] {
        let r = self.png_index[p].clone();
        &self.png_pairs[r.start as usize..r.end as usize]
    }

    /// Source vertices of one PNG bin.
    #[inline]
    pub fn png_sources(&self, pair: &PngPair) -> &[u32] {
        &self.png_src[pair.src_start as usize..pair.src_start as usize + pair.len as usize]
    }

    /// Partition of a vertex.
    #[inline]
    pub fn partition_of(&self, v: u32) -> usize {
        v as usize / self.verts_per_partition
    }

    /// Vertex range of a partition.
    pub fn partition_vertices(&self, p: usize) -> Range<u32> {
        let lo = p * self.verts_per_partition;
        let hi = ((p + 1) * self.verts_per_partition).min(self.num_vertices);
        lo as u32..hi as u32
    }

    /// Intra destinations of a vertex.
    #[inline]
    pub fn intra_of(&self, v: u32) -> &[u32] {
        let lo = self.intra_offsets[v as usize] as usize;
        let hi = self.intra_offsets[v as usize + 1] as usize;
        &self.intra_dst[lo..hi]
    }

    /// Message slots of a vertex, parallel `(dst_part, slot)` views.
    #[inline]
    pub fn msgs_of(&self, v: u32) -> (&[u32], &[u64]) {
        let lo = self.msg_offsets[v as usize] as usize;
        let hi = self.msg_offsets[v as usize + 1] as usize;
        (&self.msg_dst_part[lo..hi], &self.msg_slot[lo..hi])
    }

    /// Destination vertices consuming slot `k`.
    #[inline]
    pub fn dests_of(&self, slot: u64) -> &[u32] {
        let lo = self.dest_offsets[slot as usize] as usize;
        let hi = self.dest_offsets[slot as usize + 1] as usize;
        &self.dest_verts[lo..hi]
    }

    /// Inter-edge compression ratio achieved (≥ 1).
    pub fn compression_ratio(&self) -> f64 {
        if self.total_msgs == 0 {
            1.0
        } else {
            self.dest_verts.len() as f64 / self.total_msgs as f64
        }
    }

    /// Total edges represented (intra + all destination entries). Must equal
    /// the source CSR's edge count.
    pub fn total_edges(&self) -> u64 {
        self.intra_dst.len() as u64 + self.dest_verts.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_graph::{Csr, EdgeList};

    /// Fig. 4's example: v1 has intra edge to v2 and two inter-edges to
    /// v6, v7 in the next partition — compressed into one message.
    #[test]
    fn fig4_compression() {
        // Partitions of 4: {0..4}, {4..8}.
        let el = EdgeList::new(8, vec![(1, 2).into(), (1, 6).into(), (1, 7).into()]);
        let csr = Csr::from_edge_list(&el);
        let l = PcpmLayout::build(&csr, 4, false);
        assert_eq!(l.intra_of(1), &[2]);
        let (parts, slots) = l.msgs_of(1);
        assert_eq!(parts, &[1]);
        assert_eq!(l.dests_of(slots[0]), &[6, 7]);
        assert_eq!(l.total_msgs, 1);
        assert!((l.compression_ratio() - 2.0).abs() < 1e-12);
        assert_eq!(l.total_edges(), 3);
    }

    #[test]
    fn slots_grouped_by_destination_and_source_ordered() {
        // 3 partitions of 2 vertices; several sources message partition 2.
        let el = EdgeList::from_pairs([(0, 4), (0, 5), (1, 4), (2, 5), (3, 0)]);
        let csr = Csr::from_edge_list(&el);
        let l = PcpmLayout::build(&csr, 2, false);
        assert_eq!(l.num_partitions, 3);
        // Partition 2's inbox: messages from v0, v1, v2 in source order.
        let r = l.part_slot_ranges[2].clone();
        assert_eq!(r.end - r.start, 3);
        let (_, s0) = l.msgs_of(0);
        let (_, s1) = l.msgs_of(1);
        let (_, s2) = l.msgs_of(2);
        assert_eq!(s0, &[r.start]);
        assert_eq!(s1, &[r.start + 1]);
        assert_eq!(s2, &[r.start + 2]);
        assert_eq!(l.dests_of(s0[0]), &[4, 5]);
        // Partition 0's inbox holds v3's message.
        let (_, s3) = l.msgs_of(3);
        assert_eq!(l.part_slot_ranges[0].clone().count(), 1);
        assert_eq!(l.dests_of(s3[0]), &[0]);
    }

    #[test]
    fn include_intra_in_bins_moves_everything_to_slots() {
        let el = EdgeList::from_pairs([(0, 1), (0, 2), (1, 0)]);
        let csr = Csr::from_edge_list(&el);
        let l = PcpmLayout::build(&csr, 4, true); // single partition
        assert!(l.intra_dst.is_empty());
        assert_eq!(l.total_msgs, 2); // one per source vertex into part 0
        assert_eq!(l.total_edges(), 3);
    }

    #[test]
    fn single_partition_all_intra() {
        let el = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let csr = Csr::from_edge_list(&el);
        let l = PcpmLayout::build(&csr, 100, false);
        assert_eq!(l.num_partitions, 1);
        assert_eq!(l.total_msgs, 0);
        assert_eq!(l.intra_dst.len(), 3);
    }

    #[test]
    fn edge_conservation_on_random_graph() {
        let g = hipa_graph::datasets::small_test_graph(9);
        for vpp in [8usize, 64, 300, 5000] {
            let l = PcpmLayout::build(g.out_csr(), vpp, false);
            assert_eq!(l.total_edges() as usize, g.num_edges(), "vpp={vpp}");
            let lb = PcpmLayout::build(g.out_csr(), vpp, true);
            assert_eq!(lb.total_edges() as usize, g.num_edges(), "binned vpp={vpp}");
            // Binned mode has at least as many messages.
            assert!(lb.total_msgs >= l.total_msgs);
        }
    }

    #[test]
    fn larger_partitions_compress_better() {
        let g = hipa_graph::datasets::small_test_graph(10);
        let small = PcpmLayout::build(g.out_csr(), 16, false);
        let large = PcpmLayout::build(g.out_csr(), 256, false);
        // Fewer, fatter messages with larger partitions (paper §4.5: "the
        // larger a partition, the better the compression").
        assert!(large.total_msgs < small.total_msgs);
    }

    #[test]
    fn png_view_is_consistent_with_slot_view() {
        let g = hipa_graph::datasets::small_test_graph(12);
        for binned in [false, true] {
            let l = PcpmLayout::build(g.out_csr(), 64, binned);
            // Reconstruct slot -> source vertex from the PNG view and check
            // it against the per-vertex message view.
            let mut slot_src = vec![u32::MAX; l.total_msgs as usize];
            for p in 0..l.num_partitions {
                for pair in l.png_of(p) {
                    for (k, &src) in l.png_sources(pair).iter().enumerate() {
                        let slot = pair.slot_start + k as u64;
                        assert_eq!(slot_src[slot as usize], u32::MAX, "slot double-covered");
                        slot_src[slot as usize] = src;
                        assert_eq!(l.partition_of(src), p, "source outside its partition");
                        // Slot must lie in the destination partition's range.
                        let r = &l.part_slot_ranges[pair.dst_part as usize];
                        assert!(r.contains(&slot));
                    }
                }
            }
            for v in 0..l.num_vertices as u32 {
                let (parts, slots) = l.msgs_of(v);
                for (q, s) in parts.iter().zip(slots) {
                    assert_eq!(slot_src[*s as usize], v);
                    let _ = q;
                }
            }
            assert!(!slot_src.contains(&u32::MAX), "uncovered slot");
        }
    }

    #[test]
    fn slot_ranges_tile_message_space() {
        let g = hipa_graph::datasets::small_test_graph(11);
        let l = PcpmLayout::build(g.out_csr(), 64, false);
        let mut expect = 0u64;
        for r in &l.part_slot_ranges {
            assert_eq!(r.start, expect);
            expect = r.end;
        }
        assert_eq!(expect, l.total_msgs);
        assert_eq!(*l.dest_offsets.last().unwrap() as usize, l.dest_verts.len());
    }
}
