//! Reorder-preprocessing wrapper shared by every engine entry point.
//!
//! When [`NativeOpts::reorder`] / [`SimOpts::reorder`] names a strategy,
//! the engine's entry function calls [`native`] / [`sim`] first: the graph
//! is relabelled with the requested permutation, the engine runs unchanged
//! on the relabelled graph (with `reorder` reset to `None` so the recursion
//! terminates), and the resulting ranks are mapped back to the caller's
//! original vertex ids. PageRank is invariant under relabelling up to f32
//! summation order, so a reordered run is *numerically* equivalent but not
//! bit-equal to the input-order run; what stays bitwise-equal is every
//! (native, sim) pair and every (prefetch on, off) pair *within* one
//! strategy — the equality matrix in `tests/kernel_equality.rs` enforces
//! exactly that.
//!
//! The relabel pass itself runs on the host: the native wrapper adds its
//! wall time to [`NativeRun::preprocess`]; the sim wrapper (like
//! `build_threads`) leaves the simulated preprocessing cycles unchanged —
//! the modelled machine sees only the relabelled graph, not the relabel.

use crate::config::PageRankConfig;
use crate::runs::{NativeOpts, NativeRun, ReorderStrategy, SimOpts, SimRun};
use hipa_graph::reorder::{by_degree_desc, by_frequency_clusters, random_permutation, Permutation};
use hipa_graph::{DiGraph, Edge, EdgeList};

/// A prepared reordering: the permutation and the relabelled graph.
pub struct Preorder {
    pub perm: Permutation,
    pub graph: DiGraph,
}

impl Preorder {
    /// Ranks of the relabelled run re-indexed by original vertex id.
    pub fn map_ranks_back(&self, ranks: &[f32]) -> Vec<f32> {
        (0..ranks.len() as u32).map(|old| ranks[self.perm.map(old) as usize]).collect()
    }
}

/// Computes the permutation for `strategy` and relabels `g` with it.
/// `partition_bytes` sizes the frequency-clustering blocks exactly like the
/// engines size cache partitions (`|P| = bytes / 4`).
pub fn prepare(g: &DiGraph, strategy: ReorderStrategy, partition_bytes: usize) -> Preorder {
    let n = g.num_vertices();
    let perm = match strategy {
        ReorderStrategy::None => Permutation::identity(n),
        ReorderStrategy::DegreeDesc => by_degree_desc(g.out_csr()),
        // Hotness = in-degree: how often a vertex's accumulator is written
        // in the gather/pull kernels.
        ReorderStrategy::FrequencyClusters => {
            by_frequency_clusters(g.in_csr(), (partition_bytes / hipa_graph::VERTEX_BYTES).max(1))
        }
        ReorderStrategy::Random(seed) => random_permutation(n, seed),
    };
    let el = EdgeList::new(n, g.out_csr().iter_edges().map(|(s, d)| Edge::new(s, d)).collect());
    let graph = DiGraph::from_edge_list(&perm.apply(&el));
    Preorder { perm, graph }
}

/// Native-path wrapper: `Some(run)` when a reorder was requested (the
/// caller returns it immediately), `None` when the engine should proceed on
/// the input order.
pub fn native<F>(g: &DiGraph, cfg: &PageRankConfig, opts: &NativeOpts, f: F) -> Option<NativeRun>
where
    F: FnOnce(&DiGraph, &PageRankConfig, &NativeOpts) -> NativeRun,
{
    if opts.reorder == ReorderStrategy::None {
        return None;
    }
    let t0 = std::time::Instant::now();
    let pre = prepare(g, opts.reorder, opts.partition_bytes);
    let relabel = t0.elapsed();
    let inner = opts.clone().with_reorder(ReorderStrategy::None);
    let mut run = f(&pre.graph, cfg, &inner);
    run.ranks = pre.map_ranks_back(&run.ranks);
    run.preprocess += relabel;
    Some(run)
}

/// Sim-path wrapper; see [`native`].
pub fn sim<F>(g: &DiGraph, cfg: &PageRankConfig, opts: &SimOpts, f: F) -> Option<SimRun>
where
    F: FnOnce(&DiGraph, &PageRankConfig, &SimOpts) -> SimRun,
{
    if opts.reorder == ReorderStrategy::None {
        return None;
    }
    let pre = prepare(g, opts.reorder, opts.partition_bytes);
    let inner = opts.clone().with_reorder(ReorderStrategy::None);
    let mut run = f(&pre.graph, cfg, &inner);
    run.ranks = pre.map_ranks_back(&run.ranks);
    Some(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_prepare_roundtrips_ranks() {
        let g = hipa_graph::datasets::small_test_graph(48);
        let pre = prepare(&g, ReorderStrategy::None, 1024);
        let ranks: Vec<f32> = (0..g.num_vertices()).map(|v| v as f32).collect();
        assert_eq!(pre.map_ranks_back(&ranks), ranks);
        assert_eq!(pre.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn map_back_inverts_the_relabel() {
        let g = hipa_graph::datasets::small_test_graph(49);
        let pre = prepare(&g, ReorderStrategy::Random(3), 1024);
        // Rank of relabelled vertex `new` is `new as f32`; mapping back must
        // give every original vertex the rank of its new id.
        let ranks: Vec<f32> = (0..g.num_vertices()).map(|v| v as f32).collect();
        let back = pre.map_ranks_back(&ranks);
        for old in 0..g.num_vertices() as u32 {
            assert_eq!(back[old as usize], pre.perm.map(old) as f32);
        }
    }

    #[test]
    fn relabelled_graph_preserves_degrees() {
        let g = hipa_graph::datasets::small_test_graph(50);
        for strat in [
            ReorderStrategy::DegreeDesc,
            ReorderStrategy::FrequencyClusters,
            ReorderStrategy::Random(7),
        ] {
            let pre = prepare(&g, strat, 1024);
            assert_eq!(pre.graph.num_vertices(), g.num_vertices());
            assert_eq!(pre.graph.num_edges(), g.num_edges());
            for v in 0..g.num_vertices() as u32 {
                assert_eq!(pre.graph.out_degree(pre.perm.map(v)), g.out_degree(v), "{strat:?}");
                assert_eq!(pre.graph.in_degree(pre.perm.map(v)), g.in_degree(v), "{strat:?}");
            }
        }
    }
}
