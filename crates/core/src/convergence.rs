//! The single definition of "converged" shared by every engine.
//!
//! All five methodologies (HiPa and the four comparators) stop early under
//! the same rule so tolerance-mode comparisons are apples-to-apples:
//!
//! * **Norm** — the L1 rank delta of one iteration, `Σ_v |new_v − old_v|`,
//!   summed over *all* vertices (dangling included; their rank still moves
//!   through the teleport/base term).
//! * **Accumulation** — each owner (thread or partition) accumulates its
//!   f32 differences into a private f64 partial ([`l1_term`]); partials are
//!   then summed in a fixed owner order ([`reduce`]) so the residual — and
//!   therefore the stop iteration — is deterministic even for engines that
//!   claim work first-come-first-serve.
//! * **Decision** — [`should_stop`]: stop as soon as the residual drops
//!   strictly below the tolerance, checked at the end of every iteration.
//!
//! Tolerances are sanitised once, here: [`effective_tolerance`] treats
//! non-positive and non-finite values (reachable by constructing
//! [`PageRankConfig`](crate::PageRankConfig) with a struct literal, which
//! bypasses `with_tolerance`'s assert) as "no tolerance", so no engine
//! burns cycles tracking deltas that can never satisfy the check.

/// Sanitises `PageRankConfig::tolerance` into the f64 the engines compare
/// against. `None`, non-finite and non-positive tolerances all disable
/// convergence checking (the run executes exactly `iterations`).
pub fn effective_tolerance(tolerance: Option<f32>) -> Option<f64> {
    match tolerance {
        Some(t) if t.is_finite() && t > 0.0 => Some(t as f64),
        _ => None,
    }
}

/// One vertex's contribution to the L1 residual, accumulated in f64.
#[inline]
pub fn l1_term(new: f32, old: f32) -> f64 {
    (new - old).abs() as f64
}

/// Deterministic reduction of per-owner residual partials: a plain sum in
/// slice order. Engines with static ownership pass per-thread partials;
/// FCFS engines pass per-partition partials so the claim order cannot
/// perturb the f64 sum.
pub fn reduce(partials: &[f64]) -> f64 {
    partials.iter().sum()
}

/// The one stop decision: an iteration whose L1 residual fell strictly
/// below the tolerance is the last.
#[inline]
pub fn should_stop(residual_sum: f64, tol: f64) -> bool {
    residual_sum < tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_tolerance_accepts_positive_finite() {
        assert_eq!(effective_tolerance(Some(1e-6)), Some(1e-6f32 as f64));
        assert_eq!(effective_tolerance(Some(0.5)), Some(0.5));
    }

    #[test]
    fn effective_tolerance_normalises_invalid_to_none() {
        // Reachable via struct-literal construction of PageRankConfig.
        assert_eq!(effective_tolerance(Some(0.0)), None);
        assert_eq!(effective_tolerance(Some(-1.0)), None);
        assert_eq!(effective_tolerance(Some(f32::NAN)), None);
        assert_eq!(effective_tolerance(Some(f32::INFINITY)), None);
        assert_eq!(effective_tolerance(Some(f32::NEG_INFINITY)), None);
        assert_eq!(effective_tolerance(None), None);
    }

    #[test]
    fn stop_is_strictly_below() {
        assert!(should_stop(0.9e-6, 1e-6));
        assert!(!should_stop(1e-6, 1e-6));
        assert!(!should_stop(2e-6, 1e-6));
        assert!(should_stop(0.0, 1e-30));
    }

    #[test]
    fn reduce_sums_in_slice_order() {
        assert_eq!(reduce(&[]), 0.0);
        assert_eq!(reduce(&[1.5, 2.5]), 4.0);
        // Order-sensitivity check: reduce is defined as left-to-right slice
        // order, which is what makes FCFS engines deterministic when they
        // hand in per-partition slots.
        let parts = [1e16, 1.0, -1e16];
        assert_eq!(reduce(&parts), ((1e16f64 + 1.0) + -1e16));
    }

    #[test]
    fn l1_term_is_absolute_f64() {
        assert_eq!(l1_term(0.25, 0.75), 0.5);
        assert_eq!(l1_term(0.75, 0.25), 0.5);
        assert_eq!(l1_term(0.5, 0.5), 0.0);
    }
}
