//! PageRank configuration shared by every engine.

/// What to do with the rank mass of dangling vertices (out-degree 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DanglingPolicy {
    /// Drop it, exactly as Eq. 1 is written in the paper (total rank then
    /// decays below 1 on graphs with dangling vertices). This is what the
    /// evaluated systems compute, so it is the default.
    #[default]
    Ignore,
    /// Redistribute it uniformly each iteration, keeping the rank vector a
    /// probability distribution — the textbook-correct variant used by the
    /// invariant-checking property tests.
    Redistribute,
}

/// Parameters of a PageRank run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d` in Eq. 1.
    pub damping: f32,
    /// Iteration cap (the paper times a fixed 20 iterations).
    pub iterations: usize,
    pub dangling: DanglingPolicy,
    /// Optional convergence tolerance: when set, every engine stops as soon
    /// as the L1 rank delta of an iteration (summed over all vertices)
    /// drops below it, or at the `iterations` cap — the shared rule lives
    /// in [`crate::convergence`]. The paper's experiments use fixed
    /// iteration counts, so this defaults to `None`. Non-positive or
    /// non-finite values (only reachable through struct-literal
    /// construction) are normalised to "no tolerance" by
    /// [`crate::convergence::effective_tolerance`].
    pub tolerance: Option<f32>,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            iterations: 20,
            dangling: DanglingPolicy::Ignore,
            tolerance: None,
        }
    }
}

impl PageRankConfig {
    pub fn new(damping: f32, iterations: usize) -> Self {
        assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
        PageRankConfig { damping, iterations, dangling: DanglingPolicy::Ignore, tolerance: None }
    }

    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    pub fn with_dangling(mut self, dangling: DanglingPolicy) -> Self {
        self.dangling = dangling;
        self
    }

    pub fn with_tolerance(mut self, tolerance: f32) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        self.tolerance = Some(tolerance);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = PageRankConfig::default();
        assert_eq!(c.damping, 0.85);
        assert_eq!(c.iterations, 20);
        assert_eq!(c.dangling, DanglingPolicy::Ignore);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        PageRankConfig::new(1.5, 10);
    }
}
