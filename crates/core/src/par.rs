//! Deterministic work-sharing helpers for the preprocessing pipeline.
//!
//! Everything here is *output-deterministic*: results are bit-identical for
//! any thread count, because work is split into fixed index ranges whose
//! per-range computation does not depend on scheduling. The PCPM layout
//! builder, the inverse-degree arrays, and the degree-prefix construction
//! all route through these helpers behind the `build_threads` knob on
//! [`NativeOpts`](crate::runs::NativeOpts) /
//! [`SimOpts`](crate::runs::SimOpts).
//!
//! disjointness: chunked-claim plan — `run_indexed` hands each chunk index
//! to exactly one worker, and every `SharedSlice` write below is confined to
//! the claimed chunk's fixed index range; each slice lives for one
//! `run_indexed` call, so elements have a single writer per slice lifetime.

use crate::disjoint::SharedSlice;
use crate::hb::ClaimCounter;
use hipa_graph::DiGraph;

/// Vertices per parallel work chunk for element-wise tabulation.
const TAB_CHUNK: usize = 16 * 1024;

/// Runs `f(i)` for every `i in 0..items`, work-shared over at most
/// `threads` workers pulling indices from a shared counter. Inline when one
/// worker suffices. `f` must tolerate any execution order; callers get
/// determinism by making each index's work independent.
///
/// The `workers` claim-loop jobs land on the rayon shim's persistent pool
/// (no OS threads are spawned per call since the shim grew resident
/// workers), and the job count — not the pool width — is what bounds this
/// helper's concurrency, so the `threads` knob holds on any pool.
pub fn run_indexed(items: usize, threads: usize, f: impl Fn(usize) + Sync) {
    let workers = threads.min(items);
    if workers <= 1 {
        for i in 0..items {
            f(i);
        }
        return;
    }
    let next = ClaimCounter::new();
    let next = &next;
    let f = &f;
    rayon::scope(|s| {
        for _ in 0..workers {
            s.spawn(move |_| loop {
                // ordering: see `ClaimCounter::claim` — relaxed uniqueness
                // normally, an AcqRel + vector-clock edge under the checker
                // features; results become visible via the scope join.
                let i = next.claim();
                if i >= items {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Fills a fresh `Vec` with `f(i)` for `i in 0..n`, parallel over fixed
/// chunks. Bit-identical to `(0..n).map(f).collect()` since every element is
/// computed independently.
pub fn par_tabulate<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Copy + Default + Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let s = SharedSlice::new(&mut out);
        let chunks = n.div_ceil(TAB_CHUNK).max(1);
        run_indexed(chunks, threads, |c| {
            let lo = c * TAB_CHUNK;
            let hi = ((c + 1) * TAB_CHUNK).min(n);
            for i in lo..hi {
                // SAFETY: chunk index ranges are disjoint.
                unsafe { s.write(i, f(i)) };
            }
        });
    }
    out
}

/// `1/outdeg` per vertex (0 for dangling vertices), computed on
/// `threads` workers.
pub fn inv_deg_parallel(g: &DiGraph, threads: usize) -> Vec<f32> {
    par_tabulate(g.num_vertices(), threads, |v| {
        let d = g.out_degree(v as u32);
        if d == 0 {
            0.0
        } else {
            1.0 / d as f32
        }
    })
}

/// Parallel degree-prefix construction, bit-identical to
/// [`hipa_partition::degree_prefix`]: per-block sums in parallel, a
/// sequential exclusive scan over the block sums, then each block's interior
/// prefix filled in parallel from its exact starting value. (u64 addition is
/// associative, so regrouping cannot change any prefix entry.)
pub fn degree_prefix_parallel(degrees: &[u32], threads: usize) -> Vec<u64> {
    let n = degrees.len();
    if threads.max(1) == 1 || n < 2 * TAB_CHUNK {
        return hipa_partition::degree_prefix(degrees);
    }
    let chunks = n.div_ceil(TAB_CHUNK);
    let mut block_sums = vec![0u64; chunks];
    {
        let sums = SharedSlice::new(&mut block_sums);
        run_indexed(chunks, threads, |c| {
            let lo = c * TAB_CHUNK;
            let hi = ((c + 1) * TAB_CHUNK).min(n);
            let s: u64 = degrees[lo..hi].iter().map(|&d| d as u64).sum();
            // SAFETY: one writer per block.
            unsafe { sums.write(c, s) };
        });
    }
    let mut starts = vec![0u64; chunks];
    let mut acc = 0u64;
    for c in 0..chunks {
        starts[c] = acc;
        acc += block_sums[c];
    }
    let mut prefix = vec![0u64; n + 1];
    prefix[n] = acc;
    {
        let p = SharedSlice::new(&mut prefix);
        let starts = &starts;
        run_indexed(chunks, threads, |c| {
            let lo = c * TAB_CHUNK;
            let hi = ((c + 1) * TAB_CHUNK).min(n);
            let mut acc = starts[c];
            for v in lo..hi {
                // SAFETY: blocks write disjoint prefix ranges; prefix[n] is
                // written before the scope and never touched here (hi <= n).
                unsafe { p.write(v, acc) };
                acc += degrees[v] as u64;
            }
        });
    }
    prefix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulate_matches_map_collect() {
        for threads in [1usize, 2, 5] {
            let got = par_tabulate(40_000, threads, |i| (i as u64).wrapping_mul(0x9e3779b9));
            let want: Vec<u64> = (0..40_000).map(|i| (i as u64).wrapping_mul(0x9e3779b9)).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn degree_prefix_parallel_matches_sequential() {
        let degs: Vec<u32> = (0..100_000u32).map(|i| (i * 7919) % 23).collect();
        let want = hipa_partition::degree_prefix(&degs);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(degree_prefix_parallel(&degs, threads), want, "threads={threads}");
        }
        // Small inputs route through the sequential path.
        assert_eq!(
            degree_prefix_parallel(&degs[..100], 4),
            hipa_partition::degree_prefix(&degs[..100])
        );
        assert_eq!(degree_prefix_parallel(&[], 4), vec![0]);
    }

    #[test]
    fn run_indexed_covers_every_index() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        run_indexed(1000, 4, |i| {
            // ordering: relaxed (test tally; the scope join publishes it).
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        // ordering: relaxed (read after join — no concurrent writers left).
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
