//! A shared-slice primitive for the native engines' disjoint-write pattern.
//!
//! Partition-centric PageRank writes are *structurally* disjoint: each
//! thread owns a fixed vertex range (accumulator and rank writes stay inside
//! it) and a fixed slot range of every message bin. `std` has no safe way to
//! hand different threads interleaved mutable views chosen at runtime, so
//! the engines share one [`SharedSlice`] and uphold the disjointness
//! contract themselves — the same pattern the paper's C++ uses implicitly,
//! here confined to one audited module.
//!
//! # Enforcement
//!
//! The contract is enforced on two fronts (DESIGN.md §10):
//!
//! * **statically** by `hipa-audit`: every file touching `SharedSlice` must
//!   carry a `//! disjointness:` header naming the partition plan that keeps
//!   its indices disjoint, and every `unsafe` site a `SAFETY:` comment;
//! * **dynamically** by the `check-disjoint` cargo feature: every element
//!   records its first writer thread for the lifetime of the wrapper, and an
//!   overlapping write panics with both thread tags and the index — a
//!   mini-ThreadSanitizer scoped to the structural contract. In all engines
//!   the writer of an element is *static per slice lifetime* (ownership
//!   never migrates between barriers; slices are recreated when a region's
//!   ownership map changes), so lifetime-scoped tags are strictly stronger
//!   than between-barrier tags and need no barrier hooks. An engine that
//!   wants to migrate ownership across a phase boundary must recreate its
//!   `SharedSlice` at that boundary.
//!
//! Debug builds additionally verify bounds on every access. With
//! `check-disjoint` off, the tag machinery does not exist: accesses compile
//! to a single raw-pointer read/write, and ranks are bitwise identical
//! either way (the tags never feed the arithmetic).

use std::cell::UnsafeCell;

#[cfg(feature = "check-disjoint")]
mod tags {
    //! Writer-tag table backing the `check-disjoint` race checker.

    use std::sync::atomic::{AtomicU32, Ordering};

    /// Monotonic source of per-thread tags; 0 is reserved for "no writer".
    static NEXT_TAG: AtomicU32 = AtomicU32::new(1);

    thread_local! {
        /// This thread's tag, assigned on first `SharedSlice` write.
        static MY_TAG: u32 = {
            // ordering: relaxed (unique-id counter — only atomicity matters).
            NEXT_TAG.fetch_add(1, Ordering::Relaxed)
        };
    }

    /// One writer tag per element, 0 = not yet written this slice lifetime.
    pub(super) struct WriterTags {
        slots: Vec<AtomicU32>,
    }

    impl WriterTags {
        pub(super) fn new(len: usize) -> Self {
            WriterTags { slots: (0..len).map(|_| AtomicU32::new(0)).collect() }
        }

        /// Records this thread as writer of element `i`; panics if another
        /// thread already wrote it during this slice lifetime.
        #[inline]
        pub(super) fn check_write(&self, i: usize) {
            let me = MY_TAG.with(|t| *t);
            // ordering: relaxed (tag table is detection-only state — the
            // CAS's atomicity guarantees at least one conflicting thread
            // observes the other's tag; no payload is published through it).
            match self.slots[i].compare_exchange(0, me, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {}
                Err(prev) if prev == me => {}
                Err(prev) => panic!(
                    "check-disjoint: overlapping SharedSlice write at index {i}: thread \
                     tag {me} ({:?}) wrote an element first written by thread tag {prev} \
                     within the same slice lifetime — the disjoint-write contract \
                     (crates/core/src/disjoint.rs) is violated",
                    std::thread::current().id()
                ),
            }
        }
    }
}

/// A slice whose elements may be written concurrently by multiple threads,
/// provided no element is accessed by two threads without synchronisation.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
    #[cfg(feature = "check-disjoint")]
    tags: tags::WriterTags,
}

// SAFETY: `SharedSlice` only adds the *capability* for shared mutation; the
// soundness obligation (disjoint element access across threads, or access
// separated by a barrier) is documented on `write`/`get`/`update` and
// upheld by the engines: every write index is derived from the writing
// thread's own partition plan.
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
// SAFETY: same argument as `Sync` above — moving the wrapper to another
// thread moves only the capability, not any element access.
unsafe impl<T: Send + Sync> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a uniquely borrowed slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        #[cfg(feature = "check-disjoint")]
        let tags = tags::WriterTags::new(slice.len());
        // SAFETY: `&mut [T]` guarantees unique access; `UnsafeCell<T>` has
        // the same layout as `T`, so the cast is valid. All further aliasing
        // goes through raw-pointer reads/writes below.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice {
            data,
            #[cfg(feature = "check-disjoint")]
            tags,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// No other thread may read or write element `i` concurrently (writes by
    /// the same thread, or phases separated by a barrier, are fine).
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.data.len());
        #[cfg(feature = "check-disjoint")]
        self.tags.check_write(i);
        // SAFETY: caller upholds exclusive access to element `i`; the index
        // is bounds-checked above in debug builds.
        unsafe { *self.data[i].get() = value };
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No other thread may write element `i` concurrently. (`check-disjoint`
    /// validates writes only: a racing read against a same-phase foreign
    /// write is caught on the *write* side when the reader later writes, but
    /// a pure read-write race across threads is outside the tag table's
    /// scope — the engines' plans never read foreign elements mid-phase.)
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.data.len());
        // SAFETY: caller guarantees no concurrent writer for element `i`.
        unsafe { *self.data[i].get() }
    }

    /// Hints that element `i` will be accessed soon (the `SharedSlice`
    /// counterpart of [`crate::prefetch::prefetch_read`]). A prefetch hint
    /// performs no memory access and has no architectural effect, so this
    /// is *safe* under any concurrent writes and never touches the
    /// `check-disjoint` tag table. Out-of-range `i` is ignored; compiles to
    /// nothing without the `prefetch` feature or off x86_64.
    #[inline(always)]
    pub fn prefetch(&self, i: usize) {
        #[cfg(all(feature = "prefetch", target_arch = "x86_64"))]
        if i < self.data.len() {
            // SAFETY: `i` is in-bounds so the pointer is valid to form;
            // `_mm_prefetch` is a hint that performs no access, so no
            // aliasing or race obligations arise.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    self.data[i].get() as *const i8,
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(all(feature = "prefetch", target_arch = "x86_64")))]
        let _ = i;
    }

    /// Applies `f` to element `i` in place (read-modify-write).
    ///
    /// # Safety
    /// No other thread may access element `i` concurrently.
    #[inline]
    pub unsafe fn update(&self, i: usize, f: impl FnOnce(&mut T)) {
        debug_assert!(i < self.data.len());
        #[cfg(feature = "check-disjoint")]
        self.tags.check_write(i);
        // SAFETY: caller upholds exclusive access to element `i` for the
        // duration of `f`.
        unsafe { f(&mut *self.data[i].get()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let mut v = vec![0u32; 8];
        {
            let s = SharedSlice::new(&mut v);
            for i in 0..8 {
                // SAFETY: single-threaded — no concurrent access.
                unsafe { s.write(i, i as u32 * 2) };
            }
            // SAFETY: single-threaded — no concurrent access.
            unsafe { s.update(3, |x| *x += 1) };
            // SAFETY: single-threaded — no concurrent access.
            assert_eq!(unsafe { s.get(3) }, 7);
        }
        assert_eq!(v, vec![0, 2, 4, 7, 8, 10, 12, 14]);
    }

    #[test]
    fn disjoint_parallel_writes() {
        let n = 1024;
        let mut v = vec![0usize; n];
        {
            let s = SharedSlice::new(&mut v);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        let lo = t * n / 4;
                        let hi = (t + 1) * n / 4;
                        for i in lo..hi {
                            // SAFETY: ranges are disjoint per thread.
                            unsafe { s.write(i, i) };
                        }
                    });
                }
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    /// The runtime checker half of the soundness contract: two threads
    /// writing the same element must panic with both tags and the index.
    /// Tags live for the slice lifetime, so the conflict is caught even with
    /// fully serialised thread execution; the second writer catches its own
    /// panic (`thread::scope` would replace the payload on join).
    #[cfg(feature = "check-disjoint")]
    #[test]
    fn overlapping_writes_panic_under_check_disjoint() {
        let n = 64;
        let mut v = vec![0usize; n];
        let s = SharedSlice::new(&mut v);
        let msg = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    for i in 0..n {
                        // SAFETY: sole writer so far; bounds are valid.
                        unsafe { s.write(i, i) };
                    }
                })
                .join()
                .expect("first writer completes");
            scope
                .spawn(|| {
                    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        // SAFETY: deliberately overlapping — the checker
                        // must catch this (bounds are still valid).
                        unsafe { s.write(7, 0) };
                    }))
                    .expect_err("overlap must panic");
                    err.downcast_ref::<String>().cloned().expect("string payload")
                })
                .join()
                .expect("second writer caught its panic")
        });
        assert!(
            msg.contains("check-disjoint: overlapping SharedSlice write at index 7"),
            "unexpected message: {msg}"
        );
    }
}
