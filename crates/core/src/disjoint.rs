//! A shared-slice primitive for the native engines' disjoint-write pattern.
//!
//! Partition-centric PageRank writes are *structurally* disjoint: each
//! thread owns a fixed vertex range (accumulator and rank writes stay inside
//! it) and a fixed slot range of every message bin. `std` has no safe way to
//! hand different threads interleaved mutable views chosen at runtime, so
//! the engines share one [`SharedSlice`] and uphold the disjointness
//! contract themselves — the same pattern the paper's C++ uses implicitly,
//! here confined to one audited module.
//!
//! # Enforcement
//!
//! The contract is enforced on two fronts (DESIGN.md §10, §15):
//!
//! * **statically** by `hipa-audit`: every file touching `SharedSlice` must
//!   carry a `//! disjointness:` header naming the partition plan that keeps
//!   its indices disjoint (a plan symbol that must exist in the tree), and
//!   every `unsafe` site a `SAFETY:` comment — and bare `std::thread`
//!   parallelism is banned outside the instrumented pool, so no thread
//!   escapes the checker below;
//! * **dynamically** by the `check-disjoint` / `check-hb` cargo features:
//!   every element carries shadow state ([`crate::hb::shadow`]) checked
//!   against FastTrack-style vector clocks that the rayon shim threads
//!   through every pool synchronization edge (scope spawn/join, barriers,
//!   claim cursors — `rayon::hb`). Two *unordered* writes to one element
//!   panic with both thread tags, the index, and the unordered clocks under
//!   either feature; `check-hb` additionally tracks reads (an adaptive
//!   epoch that promotes to a read vector clock under concurrent readers)
//!   and catches read-write and write-read races the write-only subset
//!   cannot see. Writes *ordered* by a modeled edge — e.g. two scopes
//!   separated by a join — are not flagged: the checker verifies the
//!   synchronization discipline, not a per-lifetime single-writer rule.
//!
//! The shadow tables are pooled and generation-stamped (the `WriterTags`
//! predecessor zeroed an `O(len)` table on every construction; serve and
//! SpMV build fresh slices per phase, so construction is now O(1) amortised
//! — see `crate::hb` for the cost model). Debug builds additionally verify
//! bounds on every access. With the features off, the shadow machinery does
//! not exist: accesses compile to a single raw-pointer read/write, and
//! ranks are bitwise identical either way (the shadow state never feeds the
//! arithmetic).

use std::cell::UnsafeCell;

/// A slice whose elements may be written concurrently by multiple threads,
/// provided no element is accessed by two threads without synchronisation.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
    #[cfg(feature = "check-disjoint")]
    shadow: crate::hb::shadow::ShadowTable,
}

#[cfg(feature = "check-disjoint")]
impl<T> Drop for SharedSlice<'_, T> {
    fn drop(&mut self) {
        crate::hb::shadow::ShadowTable::release(std::mem::take(&mut self.shadow));
    }
}

// SAFETY: `SharedSlice` only adds the *capability* for shared mutation; the
// soundness obligation (disjoint element access across threads, or access
// separated by a barrier) is documented on `write`/`get`/`update` and
// upheld by the engines: every write index is derived from the writing
// thread's own partition plan.
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
// SAFETY: same argument as `Sync` above — moving the wrapper to another
// thread moves only the capability, not any element access.
unsafe impl<T: Send + Sync> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a uniquely borrowed slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        #[cfg(feature = "check-disjoint")]
        let shadow = crate::hb::shadow::ShadowTable::acquire(slice.len());
        // SAFETY: `&mut [T]` guarantees unique access; `UnsafeCell<T>` has
        // the same layout as `T`, so the cast is valid. All further aliasing
        // goes through raw-pointer reads/writes below.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice {
            data,
            #[cfg(feature = "check-disjoint")]
            shadow,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// No other thread may read or write element `i` concurrently (writes by
    /// the same thread, or phases separated by a barrier, are fine).
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.data.len());
        #[cfg(feature = "check-disjoint")]
        self.shadow.on_write(i);
        // SAFETY: caller upholds exclusive access to element `i`; the index
        // is bounds-checked above in debug builds.
        unsafe { *self.data[i].get() = value };
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No other thread may write element `i` concurrently. (`check-disjoint`
    /// validates writes only: a pure read-write race is outside the
    /// write-epoch subset's scope. `check-hb` tracks reads too and catches
    /// it from either side — the read panics if it races a recorded write,
    /// or the later write panics against the recorded read.)
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.data.len());
        #[cfg(feature = "check-hb")]
        self.shadow.on_read(i);
        // SAFETY: caller guarantees no concurrent writer for element `i`.
        unsafe { *self.data[i].get() }
    }

    /// Hints that element `i` will be accessed soon (the `SharedSlice`
    /// counterpart of [`crate::prefetch::prefetch_read`]). A prefetch hint
    /// performs no memory access and has no architectural effect, so this
    /// is *safe* under any concurrent writes and never touches the
    /// `check-disjoint` tag table. Out-of-range `i` is ignored; compiles to
    /// nothing without the `prefetch` feature or off x86_64.
    #[inline(always)]
    pub fn prefetch(&self, i: usize) {
        #[cfg(all(feature = "prefetch", target_arch = "x86_64"))]
        if i < self.data.len() {
            // SAFETY: `i` is in-bounds so the pointer is valid to form;
            // `_mm_prefetch` is a hint that performs no access, so no
            // aliasing or race obligations arise.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    self.data[i].get() as *const i8,
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(all(feature = "prefetch", target_arch = "x86_64")))]
        let _ = i;
    }

    /// Applies `f` to element `i` in place (read-modify-write).
    ///
    /// # Safety
    /// No other thread may access element `i` concurrently.
    #[inline]
    pub unsafe fn update(&self, i: usize, f: impl FnOnce(&mut T)) {
        debug_assert!(i < self.data.len());
        #[cfg(feature = "check-disjoint")]
        self.shadow.on_write(i);
        // SAFETY: caller upholds exclusive access to element `i` for the
        // duration of `f`.
        unsafe { f(&mut *self.data[i].get()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let mut v = vec![0u32; 8];
        {
            let s = SharedSlice::new(&mut v);
            for i in 0..8 {
                // SAFETY: single-threaded — no concurrent access.
                unsafe { s.write(i, i as u32 * 2) };
            }
            // SAFETY: single-threaded — no concurrent access.
            unsafe { s.update(3, |x| *x += 1) };
            // SAFETY: single-threaded — no concurrent access.
            assert_eq!(unsafe { s.get(3) }, 7);
        }
        assert_eq!(v, vec![0, 2, 4, 7, 8, 10, 12, 14]);
    }

    #[test]
    fn disjoint_parallel_writes() {
        let n = 1024;
        let mut v = vec![0usize; n];
        {
            let s = SharedSlice::new(&mut v);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        let lo = t * n / 4;
                        let hi = (t + 1) * n / 4;
                        for i in lo..hi {
                            // SAFETY: ranges are disjoint per thread.
                            unsafe { s.write(i, i) };
                        }
                    });
                }
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    /// The runtime checker half of the soundness contract: two threads
    /// writing the same element must panic with both tags and the index.
    /// Bare `std::thread` spawns/joins are *not* modeled synchronization
    /// edges (only the instrumented pool, barriers, and claim cursors are),
    /// so the two writers stay unordered even though the scope fully
    /// serialises them — which makes this negative control deterministic.
    /// The second writer catches its own panic (`thread::scope` would
    /// replace the payload on join).
    #[cfg(feature = "check-disjoint")]
    #[test]
    fn overlapping_writes_panic_under_check_disjoint() {
        let n = 64;
        let mut v = vec![0usize; n];
        let s = SharedSlice::new(&mut v);
        let msg = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    for i in 0..n {
                        // SAFETY: sole writer so far; bounds are valid.
                        unsafe { s.write(i, i) };
                    }
                })
                .join()
                .expect("first writer completes");
            scope
                .spawn(|| {
                    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        // SAFETY: deliberately overlapping — the checker
                        // must catch this (bounds are still valid).
                        unsafe { s.write(7, 0) };
                    }))
                    .expect_err("overlap must panic");
                    err.downcast_ref::<String>().cloned().expect("string payload")
                })
                .join()
                .expect("second writer caught its panic")
        });
        assert!(
            msg.contains("check-disjoint: overlapping SharedSlice write at index 7"),
            "unexpected message: {msg}"
        );
    }
}
