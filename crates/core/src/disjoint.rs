//! A shared-slice primitive for the native engines' disjoint-write pattern.
//!
//! Partition-centric PageRank writes are *structurally* disjoint: each
//! thread owns a fixed vertex range (accumulator and rank writes stay inside
//! it) and a fixed slot range of every message bin. `std` has no safe way to
//! hand different threads interleaved mutable views chosen at runtime, so
//! the engines share one [`SharedSlice`] and uphold the disjointness
//! contract themselves — the same pattern the paper's C++ uses implicitly,
//! here confined to one audited module.
//!
//! Debug builds additionally verify bounds on every access.

use std::cell::UnsafeCell;

/// A slice whose elements may be written concurrently by multiple threads,
/// provided no element is accessed by two threads without synchronisation.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: `SharedSlice` only adds the *capability* for shared mutation; the
// soundness obligation (disjoint element access across threads, or access
// separated by a barrier) is documented on `write`/`get`/`update` and
// upheld by the engines: every write index is derived from the writing
// thread's own partition plan.
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a uniquely borrowed slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` guarantees unique access; `UnsafeCell<T>` has
        // the same layout as `T`, so the cast is valid. All further aliasing
        // goes through raw-pointer reads/writes below.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice { data }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// No other thread may read or write element `i` concurrently (writes by
    /// the same thread, or phases separated by a barrier, are fine).
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.data.len());
        unsafe { *self.data[i].get() = value };
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No other thread may write element `i` concurrently.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.data.len());
        unsafe { *self.data[i].get() }
    }

    /// Applies `f` to element `i` in place (read-modify-write).
    ///
    /// # Safety
    /// No other thread may access element `i` concurrently.
    #[inline]
    pub unsafe fn update(&self, i: usize, f: impl FnOnce(&mut T)) {
        debug_assert!(i < self.data.len());
        unsafe { f(&mut *self.data[i].get()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let mut v = vec![0u32; 8];
        {
            let s = SharedSlice::new(&mut v);
            for i in 0..8 {
                unsafe { s.write(i, i as u32 * 2) };
            }
            unsafe { s.update(3, |x| *x += 1) };
            assert_eq!(unsafe { s.get(3) }, 7);
        }
        assert_eq!(v, vec![0, 2, 4, 7, 8, 10, 12, 14]);
    }

    #[test]
    fn disjoint_parallel_writes() {
        let n = 1024;
        let mut v = vec![0usize; n];
        {
            let s = SharedSlice::new(&mut v);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        let lo = t * n / 4;
                        let hi = (t + 1) * n / 4;
                        for i in lo..hi {
                            // SAFETY: ranges are disjoint per thread.
                            unsafe { s.write(i, i) };
                        }
                    });
                }
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }
}
