//! Resident preprocessed state for repeated partition-centric passes.
//!
//! The paper's §3.3 persistent-thread model amortizes preprocessing across
//! iterations; [`PcpmPrepared`] is the data half of that contract for the
//! extension algorithms and the rank server. It bundles everything a
//! partition-centric sweep needs that depends only on the graph — the PCPM
//! layout, the per-thread partition ownership from `hipa_plan`, the inverse
//! out-degrees and the dangling-vertex list — so callers (iterative
//! personalized PageRank, `hipa-serve`) build it **once** and run many
//! sweeps against it instead of paying full preprocessing per call.

use crate::par::inv_deg_parallel;
use crate::pcpm::PcpmLayout;
use hipa_graph::DiGraph;
use hipa_partition::hipa_plan;
use std::ops::Range;

/// Immutable per-graph preprocessing shared by every sweep over one graph
/// snapshot. Build with [`PcpmPrepared::build`]; share via `Arc`.
#[derive(Debug, Clone)]
pub struct PcpmPrepared {
    /// The compressed scatter/gather layout (one build, counted by
    /// [`crate::pcpm::layout_builds_total`]).
    pub layout: PcpmLayout,
    /// Partition ranges owned by each of the `threads` workers: disjoint,
    /// ascending, covering all partitions (degree-balanced by `hipa_plan`).
    pub thread_parts: Vec<Range<usize>>,
    /// Worker count the ownership map was planned for.
    pub threads: usize,
    /// Partition size in vertices.
    pub verts_per_partition: usize,
    /// `1/outdeg` per vertex (0 for dangling vertices).
    pub inv_deg: Vec<f32>,
    /// Dangling vertices in ascending order — summing rank mass over this
    /// list visits vertices in the same order as a full `0..n` scan, so
    /// results stay bitwise identical to the scan it replaces.
    pub dangling: Vec<u32>,
    pub num_vertices: usize,
    pub num_edges: usize,
}

impl PcpmPrepared {
    /// Preprocesses `g` for `threads`-worker partition-centric sweeps with
    /// `verts_per_partition`-vertex cache partitions. This is the expensive
    /// step (layout + plan + degree tables) that resident callers pay once.
    pub fn build(g: &DiGraph, threads: usize, verts_per_partition: usize) -> Self {
        let threads = threads.max(1);
        let vpp = verts_per_partition.max(1);
        let layout = PcpmLayout::build(g.out_csr(), vpp, false);
        let plan = hipa_plan(g.out_degrees(), 1, threads, vpp);
        let thread_parts = plan.threads().map(|(_, _, t)| t.part_range.clone()).collect();
        PcpmPrepared {
            layout,
            thread_parts,
            threads,
            verts_per_partition: vpp,
            inv_deg: inv_deg_parallel(g, threads),
            dangling: g.dangling_vertices(),
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcpm::layout_builds_total;

    #[test]
    fn prepared_matches_graph_shape() {
        let g = hipa_graph::datasets::small_test_graph(60);
        let p = PcpmPrepared::build(&g, 4, 128);
        assert_eq!(p.num_vertices, g.num_vertices());
        assert_eq!(p.num_edges, g.num_edges());
        assert_eq!(p.inv_deg.len(), g.num_vertices());
        assert_eq!(p.thread_parts.len(), 4);
        // Ownership covers all partitions, disjoint and ascending.
        let mut covered = 0usize;
        for (i, r) in p.thread_parts.iter().enumerate() {
            assert_eq!(r.start, covered, "thread {i} range not contiguous");
            covered = r.end;
        }
        assert_eq!(covered, p.layout.num_partitions);
        // Dangling list is ascending and matches out-degrees.
        assert!(p.dangling.windows(2).all(|w| w[0] < w[1]));
        for &v in &p.dangling {
            assert_eq!(g.out_degree(v), 0);
        }
    }

    #[test]
    fn build_bumps_layout_counter_once() {
        let g = hipa_graph::datasets::small_test_graph(61);
        let before = layout_builds_total();
        let _p = PcpmPrepared::build(&g, 2, 64);
        let after = layout_builds_total();
        assert_eq!(after - before, 1, "one prepared build = one layout build");
    }
}
