//! The HiPa engine — the paper's primary contribution.
//!
//! HiPa accelerates PageRank on NUMA multicores with hierarchical
//! partitioning (NUMA level, Eq. 3; cache level, Eq. 4), thread-data
//! pinning over persistent threads (Algorithm 2), PCPM-style inter-edge
//! compression (Fig. 4) and a partition-mapped contiguous data layout
//! (§3.4).
//!
//! This crate provides:
//!
//! * [`PageRankConfig`] / [`reference_pagerank`] — the algorithm definition
//!   (Eq. 1) and an f64 sequential oracle every engine is tested against;
//! * [`Engine`] — the common interface all five methodologies implement,
//!   with a native (real threads) and a simulated (NUMA machine model)
//!   execution path each;
//! * [`PcpmLayout`] — the partition-centric scatter/gather data layout with
//!   compressed inter-edges, shared with the `p-PR` and `GPOP` baselines;
//! * [`HiPa`] — the engine itself.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod convergence;
pub mod disjoint;
pub mod hb;
pub mod hipa;
pub mod par;
pub mod pcpm;
pub mod prefetch;
pub mod preorder;
pub mod prepared;
pub mod reference;
pub mod runs;

pub use config::{DanglingPolicy, PageRankConfig};
pub use hipa::sim::HiPaVariant;
pub use hipa::HiPa;
pub use pcpm::{layout_builds_total, PcpmLayout};
pub use prepared::PcpmPrepared;
pub use reference::reference_pagerank;
pub use runs::{Engine, NativeOpts, NativeRun, ReorderStrategy, SimOpts, SimRun};
