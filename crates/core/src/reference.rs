//! Sequential f64 PageRank oracle.
//!
//! Every engine (native and simulated, HiPa and all four baselines) is
//! required by the integration tests to agree with this implementation to
//! f32-commensurate tolerance. It is written for clarity, not speed.

use crate::config::{DanglingPolicy, PageRankConfig};
use hipa_graph::DiGraph;

/// Computes PageRank per Eq. 1 by pull-based power iteration in f64.
pub fn reference_pagerank(g: &DiGraph, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let d = cfg.damping as f64;
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..cfg.iterations {
        let dangling_sum: f64 = match cfg.dangling {
            DanglingPolicy::Ignore => 0.0,
            DanglingPolicy::Redistribute => {
                (0..n).filter(|&v| g.out_degree(v as u32) == 0).map(|v| rank[v]).sum()
            }
        };
        let base = (1.0 - d) * inv_n + d * dangling_sum * inv_n;
        for v in 0..n {
            let mut acc = 0.0f64;
            for &u in g.in_csr().neighbors(v as u32) {
                acc += rank[u as usize] / g.out_degree(u) as f64;
            }
            next[v] = base + d * acc;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Maximum relative difference between an engine's f32 ranks and the oracle.
/// The denominator is clamped at `1/n` so near-zero ranks do not explode the
/// metric.
pub fn max_rel_error(f32_ranks: &[f32], oracle: &[f64]) -> f64 {
    assert_eq!(f32_ranks.len(), oracle.len());
    let n = oracle.len().max(1) as f64;
    f32_ranks
        .iter()
        .zip(oracle)
        .map(|(&a, &b)| ((a as f64 - b).abs()) / b.abs().max(1.0 / n))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_graph::gen::{complete, cycle, star};
    use hipa_graph::{DiGraph, EdgeList};

    fn cfg(iters: usize) -> PageRankConfig {
        PageRankConfig::default().with_iterations(iters)
    }

    #[test]
    fn cycle_rank_is_uniform() {
        let g = DiGraph::from_edge_list(&cycle(10));
        let r = reference_pagerank(&g, &cfg(30));
        for &x in &r {
            assert!((x - 0.1).abs() < 1e-12, "rank {x}");
        }
    }

    #[test]
    fn complete_graph_rank_is_uniform() {
        let g = DiGraph::from_edge_list(&complete(6));
        let r = reference_pagerank(&g, &cfg(15));
        for &x in &r {
            assert!((x - 1.0 / 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_hub_dominates() {
        let g = DiGraph::from_edge_list(&star(11));
        let r = reference_pagerank(&g, &cfg(40));
        for v in 1..11 {
            assert!(r[0] > 3.0 * r[v]);
            assert!((r[v] - r[1]).abs() < 1e-12, "spokes symmetric");
        }
    }

    #[test]
    fn redistribute_preserves_probability_mass() {
        // Path graph has a dangling tail.
        let g = DiGraph::from_edge_list(&hipa_graph::gen::path(6));
        let c = cfg(25).with_dangling(DanglingPolicy::Redistribute);
        let r = reference_pagerank(&g, &c);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10, "sum {sum}");
    }

    #[test]
    fn ignore_loses_dangling_mass() {
        let g = DiGraph::from_edge_list(&hipa_graph::gen::path(6));
        let r = reference_pagerank(&g, &cfg(25));
        let sum: f64 = r.iter().sum();
        assert!(sum < 0.9999, "sum {sum} should decay");
    }

    #[test]
    fn two_vertex_closed_form() {
        // 0 <-> 1: symmetric, rank = 0.5 each at any damping.
        let g = DiGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (1, 0)]));
        let r = reference_pagerank(&g, &cfg(50));
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_is_uniform_init() {
        let g = DiGraph::from_edge_list(&cycle(4));
        let r = reference_pagerank(&g, &cfg(0));
        assert_eq!(r, vec![0.25; 4]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edge_list(&EdgeList::new(0, vec![]));
        assert!(reference_pagerank(&g, &cfg(5)).is_empty());
    }

    #[test]
    fn max_rel_error_detects_mismatch() {
        let oracle = vec![0.5f64, 0.5];
        assert!(max_rel_error(&[0.5, 0.5], &oracle) < 1e-9);
        assert!(max_rel_error(&[0.4, 0.5], &oracle) > 0.1);
    }
}
