//! The common engine interface and run-result types.
//!
//! Every methodology the paper evaluates (HiPa, p-PR, v-PR, GPOP-lite,
//! Polymer-lite) implements [`Engine`] with two paths:
//!
//! * **native** — real `std::thread` execution on the host. Produces correct
//!   ranks and wall-clock timings (the criterion benches drive this path).
//!   The host in this reproduction has one core, so native timings do not
//!   show parallel speedups — the simulated path is the measurement
//!   substrate for the paper's tables.
//! * **sim** — the same computation executed against
//!   [`hipa_numasim::SimMachine`], producing identical ranks plus the
//!   modelled cycle counts and memory-system statistics.

use crate::config::PageRankConfig;
use hipa_graph::DiGraph;
use hipa_numasim::{MachineSpec, SimReport};
use hipa_obs::RunTrace;
use std::time::Duration;

/// Vertex-relabelling preprocessing applied before an engine runs (the
/// §2.1 temporal-locality toolbox, plumbed as a run option — see
/// [`crate::preorder`]). The engine computes on the relabelled graph and
/// the wrapper maps the ranks back to original vertex ids, so callers see
/// ranks indexed exactly as their input. Native and sim paths relabel
/// identically, preserving the native==sim bitwise-equality invariant
/// within each strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderStrategy {
    /// Run on the input order unchanged (the default).
    #[default]
    None,
    /// Global hub clustering: `hipa_graph::reorder::by_degree_desc`.
    DegreeDesc,
    /// Cagra-style frequency sub-clustering *within* partition boundaries:
    /// `hipa_graph::reorder::by_frequency_clusters` with the run's
    /// `partition_bytes / 4` vertices per partition. Packs each partition's
    /// hot (high in-degree) vertices at its front so the frequently-written
    /// accumulator lines fit the private caches; the partition census is
    /// unchanged.
    FrequencyClusters,
    /// Adversarial baseline: `hipa_graph::reorder::random_permutation` with
    /// this seed (destroys locality; for A/B censuses).
    Random(u64),
}

impl ReorderStrategy {
    /// Short label for census tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReorderStrategy::None => "input",
            ReorderStrategy::DegreeDesc => "degree-desc",
            ReorderStrategy::FrequencyClusters => "freq-clusters",
            ReorderStrategy::Random(_) => "random",
        }
    }
}

/// Options for the native path.
#[derive(Debug, Clone)]
pub struct NativeOpts {
    /// Worker thread count.
    pub threads: usize,
    /// Cache-partition size in bytes (|P| = bytes / 4). Ignored by
    /// vertex-centric engines.
    pub partition_bytes: usize,
    /// Threads used for preprocessing (plan, PCPM layout, inverse-degree
    /// array). `0` inherits `threads`. Preprocessing output is bit-identical
    /// for every value.
    pub build_threads: usize,
    /// Record a [`RunTrace`] (per-phase spans, convergence trajectory) into
    /// [`NativeRun::trace`]. Ranks and timings semantics are unchanged;
    /// off by default so the hot paths see a no-op recorder.
    pub trace: bool,
    /// Issue software-prefetch hints in the scatter/gather hot loops
    /// (default on). Hints never change ranks — this knob exists for A/B
    /// timing censuses. Compiled out entirely without hipa-core's
    /// `prefetch` feature or off x86_64 (see [`crate::prefetch`]).
    pub prefetch: bool,
    /// Vertex-relabelling preprocessing (default [`ReorderStrategy::None`]).
    /// The relabel pass runs on the host and is counted in
    /// [`NativeRun::preprocess`].
    pub reorder: ReorderStrategy,
}

impl NativeOpts {
    pub fn new(threads: usize, partition_bytes: usize) -> Self {
        NativeOpts {
            threads,
            partition_bytes,
            build_threads: 0,
            trace: false,
            prefetch: true,
            reorder: ReorderStrategy::None,
        }
    }

    pub fn with_build_threads(mut self, build_threads: usize) -> Self {
        self.build_threads = build_threads;
        self
    }

    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    pub fn with_reorder(mut self, reorder: ReorderStrategy) -> Self {
        self.reorder = reorder;
        self
    }

    /// Resolved preprocessing thread count: `build_threads`, or `threads`
    /// when unset.
    pub fn effective_build_threads(&self) -> usize {
        if self.build_threads == 0 {
            self.threads.max(1)
        } else {
            self.build_threads
        }
    }
}

impl Default for NativeOpts {
    fn default() -> Self {
        NativeOpts::new(4, 256 * 1024)
    }
}

/// Options for the simulated path.
#[derive(Debug, Clone)]
pub struct SimOpts {
    pub machine: MachineSpec,
    /// Worker thread count (≤ the machine's logical CPUs).
    pub threads: usize,
    /// Cache-partition size in bytes *on the simulated machine* — pass the
    /// scaled value when using a scaled machine.
    pub partition_bytes: usize,
    /// Host threads used to *construct* the layout and auxiliary arrays
    /// (the simulated preprocessing cost model is unaffected — the built
    /// structures are bit-identical for every value). `0` inherits
    /// `threads`.
    pub build_threads: usize,
    /// Record a [`RunTrace`] into [`SimRun::trace`]. The modelled cycle and
    /// traffic counts are identical with tracing on or off — the recorder
    /// observes the simulation, it is not part of the simulated program.
    pub trace: bool,
    /// Model software-prefetch hints in the scatter/gather loops (default
    /// on, mirroring the native path). The sim charges an explicit
    /// `mem.prefetch` counter plus issue/DRAM-stream costs per hint — see
    /// `hipa_numasim`'s `ThreadCtx::prefetch`.
    pub prefetch: bool,
    /// Vertex-relabelling preprocessing (default [`ReorderStrategy::None`]).
    /// Like `build_threads`, the relabel itself runs on the host and is
    /// excluded from the simulated preprocessing cycles; the simulated
    /// iterations then run on the relabelled graph.
    pub reorder: ReorderStrategy,
}

impl SimOpts {
    pub fn new(machine: MachineSpec) -> Self {
        let threads = machine.topology.logical_cpus();
        SimOpts {
            machine,
            threads,
            partition_bytes: 256 * 1024,
            build_threads: 0,
            trace: false,
            prefetch: true,
            reorder: ReorderStrategy::None,
        }
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn with_partition_bytes(mut self, bytes: usize) -> Self {
        self.partition_bytes = bytes;
        self
    }

    pub fn with_build_threads(mut self, build_threads: usize) -> Self {
        self.build_threads = build_threads;
        self
    }

    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    pub fn with_reorder(mut self, reorder: ReorderStrategy) -> Self {
        self.reorder = reorder;
        self
    }

    /// Resolved preprocessing thread count: `build_threads`, or `threads`
    /// when unset.
    pub fn effective_build_threads(&self) -> usize {
        if self.build_threads == 0 {
            self.threads.max(1)
        } else {
            self.build_threads
        }
    }
}

/// Result of a native run.
#[derive(Debug, Clone)]
pub struct NativeRun {
    pub ranks: Vec<f32>,
    /// Partitioning + layout construction (the paper's "overhead", §4.2).
    pub preprocess: Duration,
    /// The timed iterations.
    pub compute: Duration,
    /// Iterations actually executed. Every engine honours
    /// [`PageRankConfig::tolerance`] through the shared
    /// [`convergence`](crate::convergence) rule, so this is less than the
    /// `iterations` cap exactly when [`Self::converged`] is true.
    pub iterations_run: usize,
    /// Whether the shared convergence check
    /// ([`convergence::should_stop`](crate::convergence::should_stop))
    /// fired: the last iteration's L1 rank delta fell below the configured
    /// tolerance. Always `false` when no (valid) tolerance was set.
    pub converged: bool,
    /// Structured trace of the run; present iff [`NativeOpts::trace`] was
    /// set (and `hipa-obs` was not built with its `off` feature).
    pub trace: Option<RunTrace>,
}

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct SimRun {
    pub ranks: Vec<f32>,
    /// Iterations actually executed (see [`NativeRun::iterations_run`]).
    pub iterations_run: usize,
    /// Whether the convergence tolerance stopped the run (see
    /// [`NativeRun::converged`]).
    pub converged: bool,
    /// Full machine report (cycles include preprocessing).
    pub report: SimReport,
    /// Simulated cycles spent in preprocessing (partitioning, layout, NUMA
    /// placement) — excluded from Table 2, reported in §4.2.
    pub preprocess_cycles: f64,
    /// Simulated cycles spent in the PageRank iterations.
    pub compute_cycles: f64,
    /// Structured trace of the run (spans in simulated cycles, counters
    /// bridged from the machine report); present iff [`SimOpts::trace`] was
    /// set (and `hipa-obs` was not built with its `off` feature).
    pub trace: Option<RunTrace>,
}

impl SimRun {
    /// Simulated seconds for the iterations only (Table 2's quantity).
    pub fn compute_seconds(&self) -> f64 {
        self.compute_cycles / (self.report.ghz * 1e9)
    }

    /// Simulated seconds of preprocessing overhead (§4.2's quantity).
    pub fn preprocess_seconds(&self) -> f64 {
        self.preprocess_cycles / (self.report.ghz * 1e9)
    }

    /// Iterations needed to amortise preprocessing (§4.2 reports 12.7 for
    /// HiPa on average).
    pub fn amortization_iterations(&self, iterations: usize) -> f64 {
        if self.compute_cycles == 0.0 {
            return 0.0;
        }
        let per_iter = self.compute_cycles / iterations.max(1) as f64;
        self.preprocess_cycles / per_iter
    }
}

/// A PageRank methodology under evaluation.
pub trait Engine: Sync {
    /// Short name as used in the paper's tables ("HiPa", "p-PR", ...).
    fn name(&self) -> &'static str;

    /// Whether the engine places data and threads NUMA-aware (affects which
    /// placement policy the harness reports it under).
    fn numa_aware(&self) -> bool;

    /// Real-thread execution.
    fn run_native(&self, g: &DiGraph, cfg: &PageRankConfig, opts: &NativeOpts) -> NativeRun;

    /// Simulated execution on the machine model.
    fn run_sim(&self, g: &DiGraph, cfg: &PageRankConfig, opts: &SimOpts) -> SimRun;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_numasim::MachineSpec;

    #[test]
    fn sim_opts_builder() {
        let o = SimOpts::new(MachineSpec::tiny_test()).with_threads(4).with_partition_bytes(1024);
        assert_eq!(o.threads, 4);
        assert_eq!(o.partition_bytes, 1024);
    }

    #[test]
    fn sim_run_derived_metrics() {
        let machine = MachineSpec::tiny_test();
        let m = hipa_numasim::SimMachine::new(machine);
        let run = SimRun {
            ranks: vec![],
            iterations_run: 20,
            converged: false,
            report: m.report("x"),
            preprocess_cycles: 5.0e9,
            compute_cycles: 10.0e9,
            trace: None,
        };
        // tiny_test runs at 1 GHz.
        assert!((run.compute_seconds() - 10.0).abs() < 1e-9);
        assert!((run.preprocess_seconds() - 5.0).abs() < 1e-9);
        assert!((run.amortization_iterations(20) - 10.0).abs() < 1e-9);
    }
}
