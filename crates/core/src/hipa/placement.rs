//! Helpers for building NUMA placements from partitioning plans.
//!
//! HiPa's §3.4 layout keeps each logical array in one contiguous virtual
//! range whose *physical* pages follow the NUMA partitioning: the slice of
//! an array belonging to node `i`'s vertices (or partitions, or message
//! slots) lives on node `i`. These helpers translate "index boundary per
//! node" into the simulator's [`Placement::Blocked`] byte ranges.

use hipa_numasim::Placement;

/// Builds a blocked placement for an array of `elem_bytes`-sized elements
/// where node `i` owns indices `[ends[i-1], ends[i])` (with `ends[-1] = 0`).
/// `ends` must be non-decreasing; its last entry is the array length.
pub fn blocked_by_index(ends: &[u64], elem_bytes: usize) -> Placement {
    assert!(!ends.is_empty());
    let mut ranges = Vec::with_capacity(ends.len());
    let mut prev = 0u64;
    for (node, &e) in ends.iter().enumerate() {
        assert!(e >= prev, "index ends must be non-decreasing");
        ranges.push((e as usize * elem_bytes, node));
        prev = e;
    }
    Placement::Blocked(ranges)
}

/// Vertex-boundary ends (`plan.nodes[i].vertex_range.end`) as u64s — the
/// most common input to [`blocked_by_index`].
pub fn vertex_ends(plan: &hipa_partition::HiPaPlan) -> Vec<u64> {
    plan.nodes.iter().map(|n| n.vertex_range.end as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_by_index_builds_byte_ranges() {
        let p = blocked_by_index(&[10, 25], 4);
        match p {
            Placement::Blocked(r) => assert_eq!(r, vec![(40, 0), (100, 1)]),
            _ => panic!("wrong placement kind"),
        }
    }

    #[test]
    fn empty_node_ranges_allowed() {
        let p = blocked_by_index(&[0, 16], 8);
        match p {
            Placement::Blocked(r) => assert_eq!(r, vec![(0, 0), (128, 1)]),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_rejected() {
        blocked_by_index(&[10, 5], 4);
    }
}
