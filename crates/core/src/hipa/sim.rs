//! HiPa on the simulated NUMA machine.
//!
//! Region placement follows §3.4: every array is one contiguous virtual
//! range whose pages are distributed so that the slice belonging to node
//! `i`'s vertices / partitions / message slots physically lives on node `i`.
//! Threads are created once, pinned node-major (physical cores before SMT
//! siblings), and run the whole iterative scatter–gather computation
//! (Algorithm 2).

use crate::config::{DanglingPolicy, PageRankConfig};
use crate::convergence;
use crate::hipa::placement::vertex_ends;
use crate::pcpm::PcpmLayout;
use crate::prefetch::{LineFilter, PREFETCH_DISTANCE};
use crate::runs::{SimOpts, SimRun};
use hipa_graph::{DiGraph, VERTEX_BYTES};
use hipa_numasim::{PhaseBalance, Placement, PoolId, SimMachine, ThreadPlacement};
use hipa_obs::{record_sim_report, PoolCounters, Recorder, TraceMeta, PATH_SIM, RUN_LEVEL};
use hipa_partition::hipa_plan_with_prefix;

/// Design-choice switches for the ablation experiments (DESIGN.md §7). The
/// default is the full HiPa design; each ablation bin flips one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HiPaVariant {
    /// Inter-edge compression (§3.4, Fig. 4). Off = one message per edge.
    pub compress_inter: bool,
    /// Thread-data pinning (§3.3): threads pinned to cores node-major and
    /// partitions statically grouped per thread. Off = OS-placed threads
    /// claiming partitions FCFS.
    pub thread_pinning: bool,
    /// Algorithm 2 persistent threads. Off = a fresh parallel region (new
    /// pool) per phase, Algorithm 1 style.
    pub persistent_threads: bool,
    /// §3.4 partition-mapped NUMA placement. Off = everything interleaved.
    pub partitioned_placement: bool,
}

impl Default for HiPaVariant {
    fn default() -> Self {
        HiPaVariant {
            compress_inter: true,
            thread_pinning: true,
            persistent_threads: true,
            partitioned_placement: true,
        }
    }
}

/// Appends one element's worth of coverage to the last node's range —
/// offset arrays have `len + 1` entries and the extra entry must be covered
/// by the placement.
fn plus_one_elem(mut ends: Vec<u64>) -> Vec<u64> {
    if let Some(l) = ends.last_mut() {
        *l += 1;
    }
    ends
}

pub fn run(g: &DiGraph, cfg: &PageRankConfig, opts: &SimOpts) -> SimRun {
    run_variant(g, cfg, opts, &HiPaVariant::default())
}

/// [`run`] with explicit design-choice switches (ablations).
pub fn run_variant(
    g: &DiGraph,
    cfg: &PageRankConfig,
    opts: &SimOpts,
    variant: &HiPaVariant,
) -> SimRun {
    if let Some(run) =
        crate::preorder::sim(g, cfg, opts, |g, cfg, opts| run_variant(g, cfg, opts, variant))
    {
        return run;
    }
    let n = g.num_vertices();
    let mut machine = SimMachine::new(opts.machine.clone());
    let rec = Recorder::new(opts.trace);
    if n == 0 {
        let converged = convergence::effective_tolerance(cfg.tolerance).is_some();
        let report = machine.report("HiPa");
        return SimRun {
            ranks: Vec::new(),
            iterations_run: 0,
            converged,
            trace: rec.finish(TraceMeta {
                engine: "HiPa".into(),
                path: PATH_SIM,
                machine: Some(report.machine.clone()),
                threads: opts.threads as u64,
                converged,
                ..TraceMeta::default()
            }),
            report,
            preprocess_cycles: 0.0,
            compute_cycles: 0.0,
        };
    }
    let topo = machine.spec().topology;
    let sockets = topo.sockets;
    let threads = opts.threads.clamp(sockets, topo.logical_cpus());
    assert_eq!(
        threads % sockets,
        0,
        "HiPa distributes threads evenly: {threads} threads on {sockets} nodes"
    );
    let tpn = threads / sockets;
    let vpp = (opts.partition_bytes / VERTEX_BYTES).max(1);
    // Adaptive hint gate (DESIGN.md §12): PCPM sizes partitions so the
    // random-access working set (one partition's contribution/accumulator
    // span) is cache-resident — hints there only burn issue slots. They arm
    // exactly when the configured partition spills the L2.
    let do_prefetch = opts.prefetch && opts.partition_bytes > opts.machine.l2.size_bytes;

    // ---- Preprocessing (host work; its simulated cost is charged below).
    // Runs on `build_threads` host workers; the structures are bit-identical
    // to the sequential build, so the simulated run is unaffected. The pool
    // deltas attribute the build's real scheduling work. ----
    let pc = PoolCounters::start(&rec);
    let build_threads = opts.effective_build_threads();
    let prefix = crate::par::degree_prefix_parallel(g.out_degrees(), build_threads);
    let plan = hipa_plan_with_prefix(&prefix, sockets, tpn, vpp);
    let layout =
        PcpmLayout::build_par_ext(g.out_csr(), vpp, false, variant.compress_inter, build_threads);
    let msgs = layout.total_msgs as usize;
    let n_intra = layout.intra_dst.len();
    let n_dest = layout.dest_verts.len();

    // ---- Regions: partition-mapped contiguous layout (§3.4), or fully
    // interleaved when the placement ablation disables it ----
    let partitioned = variant.partitioned_placement;
    let blocked_by_index = |ends: &[u64], elem: usize| -> Placement {
        if partitioned {
            crate::hipa::placement::blocked_by_index(ends, elem)
        } else {
            Placement::Interleaved
        }
    };
    let v_ends = vertex_ends(&plan);
    let rank_r = machine.alloc("rank", 4 * n, blocked_by_index(&v_ends, 4));
    // Pre-scaled contributions (rank/outdeg, computed once per vertex at
    // finalise time) — the PCPM trick that keeps each phase's random working
    // set to ONE vertex array per partition.
    let contrib_r = machine.alloc("contrib", 4 * n, blocked_by_index(&v_ends, 4));
    let acc_r = machine.alloc("acc", 4 * n, blocked_by_index(&v_ends, 4));
    let invdeg_r = machine.alloc("inv_deg", 4 * n, blocked_by_index(&v_ends, 4));
    let deg_r = machine.alloc("deg", 4 * n, blocked_by_index(&v_ends, 4));
    // Runtime metadata widths follow the real PCPM encoding: u32 intra
    // offsets, 12-byte PNG bin headers, u32 source lists, MSB-flagged u32
    // destination lists. (Host-side mirrors may be wider; only the charged
    // widths model DRAM traffic.)
    let intra_off_r = machine.alloc(
        "intra_offsets",
        4 * (n + 1),
        blocked_by_index(&plus_one_elem(v_ends.clone()), 4),
    );
    let intra_ends: Vec<u64> = v_ends.iter().map(|&v| layout.intra_offsets[v as usize]).collect();
    let intra_dst_r = machine.alloc("intra_dst", 4 * n_intra, blocked_by_index(&intra_ends, 4));
    // PNG scatter view, split by *source* partition ownership.
    let pair_ends: Vec<u64> = plan
        .nodes
        .iter()
        .map(|nd| {
            if nd.part_range.end == 0 {
                0
            } else {
                layout.png_index[nd.part_range.end - 1].end as u64
            }
        })
        .collect();
    let png_pairs_r =
        machine.alloc("png_pairs", 12 * layout.png_pairs.len(), blocked_by_index(&pair_ends, 12));
    let msg_ends: Vec<u64> = v_ends.iter().map(|&v| layout.msg_offsets[v as usize]).collect();
    let png_src_r = machine.alloc("png_src", 4 * msgs, blocked_by_index(&msg_ends, 4));
    // Gather-side arrays are split by *destination* partition ownership, so
    // a node gathers from local memory (Fig. 1).
    let slot_ends: Vec<u64> = plan
        .nodes
        .iter()
        .map(|nd| {
            if nd.part_range.end == 0 {
                0
            } else {
                layout.part_slot_ranges[nd.part_range.end - 1].end
            }
        })
        .collect();
    let vals_r = machine.alloc("vals", 4 * msgs, blocked_by_index(&slot_ends, 4));
    let dest_ends: Vec<u64> = slot_ends.iter().map(|&s| layout.dest_offsets[s as usize]).collect();
    let dest_verts_r = machine.alloc("dest_verts", 4 * n_dest, blocked_by_index(&dest_ends, 4));
    // Raw CSR as loaded from disk, before any NUMA awareness: interleaved.
    let m = g.num_edges();
    let csr_tgt_r = machine.alloc("csr_targets", 4 * m.max(1), Placement::Interleaved);
    let csr_off_r = machine.alloc("csr_offsets", 8 * (n + 1), Placement::Interleaved);

    // ---- Charge the preprocessing cost: plan (one degree scan), PCPM
    // layout (three edge passes), and the NUMA-aware binding copy of every
    // array the engine will use (§4.2's "graph partitioning and NUMA-aware
    // data binding" overhead).
    machine.seq(|ctx| {
        ctx.stream_read(csr_off_r, 0, 8 * (n + 1));
        ctx.compute(2 * n as u64);
        for _pass in 0..3 {
            ctx.stream_read(csr_off_r, 0, 8 * (n + 1));
            if m > 0 {
                ctx.stream_read(csr_tgt_r, 0, 4 * m);
            }
            ctx.compute(2 * m as u64);
        }
        for (r, bytes) in [
            (rank_r, 4 * n),
            (contrib_r, 4 * n),
            (acc_r, 4 * n),
            (invdeg_r, 4 * n),
            (deg_r, 4 * n),
            (intra_off_r, 4 * (n + 1)),
            (intra_dst_r, 4 * n_intra),
            (png_pairs_r, 12 * layout.png_pairs.len()),
            (png_src_r, 4 * msgs),
            (dest_verts_r, 4 * n_dest),
        ] {
            if bytes > 0 {
                ctx.stream_write(r, 0, bytes);
            }
        }
    });
    let preprocess_cycles = machine.cycles();
    rec.record("preprocess", RUN_LEVEL, RUN_LEVEL, preprocess_cycles);

    // ---- Thread management per variant. Full HiPa: one persistent pool,
    // pinned node-major (physical cores before hyper-thread siblings),
    // Algorithm 2. Ablations fall back to OS placement, node binding, or
    // per-region pools (Algorithm 1).
    let placement = if variant.thread_pinning {
        let mut cpus = Vec::with_capacity(threads);
        for node in 0..sockets {
            let on_socket = topo.logicals_on_socket(node);
            assert!(tpn <= on_socket.len(), "{tpn} threads exceed node {node}'s logical CPUs");
            cpus.extend_from_slice(&on_socket[..tpn]);
        }
        ThreadPlacement::Pinned(cpus)
    } else {
        ThreadPlacement::OsRandom
    };
    // Without persistent threads, NUMA-awareness falls back to per-region
    // node binding (the migration-prone Algorithm 1 pattern of §3.3).
    let per_region_placement = if variant.thread_pinning {
        let bind: Vec<usize> = plan.threads().map(|(node, _, _)| node).collect();
        ThreadPlacement::BindNode(bind)
    } else {
        ThreadPlacement::OsRandom
    };
    let persistent_pool: Option<PoolId> = if variant.persistent_threads {
        Some(machine.create_pool(threads, &placement))
    } else {
        None
    };
    let balance = if variant.thread_pinning { PhaseBalance::Static } else { PhaseBalance::Dynamic };
    let pool =
        persistent_pool.unwrap_or_else(|| machine.create_pool(threads, &per_region_placement));

    // ---- Host-side working state (actual computation data) ----
    let d = cfg.damping;
    let inv_n = 1.0f32 / n as f32;
    let inv_deg = crate::par::inv_deg_parallel(g, build_threads);
    let mut rank = vec![inv_n; n];
    let mut contrib: Vec<f32> = (0..n).map(|v| inv_n * inv_deg[v]).collect();
    let mut acc = vec![0.0f32; n];
    let mut vals = vec![0.0f32; msgs];
    let thread_parts: Vec<Vec<usize>> = if variant.thread_pinning {
        plan.threads().map(|(_, _, t)| t.part_range.clone().collect()).collect()
    } else {
        // FCFS claiming, emulated as a round-robin deal (the order a shared
        // counter converges to under uniform progress).
        (0..threads).map(|j| (j..layout.num_partitions).step_by(threads).collect()).collect()
    };

    // Init phase: every thread first-touches its own slices.
    let init_c0 = machine.cycles();
    machine.phase_balanced(pool, balance, |j, ctx| {
        for &p in &thread_parts[j] {
            let vr = layout.partition_vertices(p);
            let (lo, len) = (vr.start as usize, vr.len());
            if len == 0 {
                continue;
            }
            ctx.stream_write(contrib_r, 4 * lo, 4 * len);
            ctx.stream_write(acc_r, 4 * lo, 4 * len);
            ctx.stream_write(invdeg_r, 4 * lo, 4 * len);
        }
    });
    rec.record("init", RUN_LEVEL, RUN_LEVEL, machine.cycles() - init_c0);

    let mut dangling_mass: f64 = match cfg.dangling {
        DanglingPolicy::Ignore => 0.0,
        DanglingPolicy::Redistribute => {
            (0..n).filter(|&v| g.out_degree(v as u32) == 0).map(|v| rank[v] as f64).sum()
        }
    };

    // ---- Iterations: scatter; barrier; gather+finalize; barrier ----
    let tol = convergence::effective_tolerance(cfg.tolerance);
    // The recorder must not perturb the model: `track_model` (the tolerance
    // check) governs the *charged* rank-vector traffic, while `track_host`
    // additionally materialises ranks host-side so the trace can carry the
    // convergence trajectory. Cycles and counters are identical with
    // tracing on or off.
    let track_model = tol.is_some();
    let track_host = track_model || rec.enabled();
    let mut iterations_run = 0usize;
    let mut converged = false;
    for it in 0..cfg.iterations {
        // Under tolerance mode the rank vector is materialised every
        // iteration (needed for the delta and as the final output).
        let charge_last = it + 1 == cfg.iterations || track_model;
        let materialise = it + 1 == cfg.iterations || track_host;
        let base = (1.0 - d) * inv_n + d * (dangling_mass as f32) * inv_n;

        // Scatter: stream own partitions, apply intra edges in-cache, write
        // compressed messages into destination bins.
        let pool =
            persistent_pool.unwrap_or_else(|| machine.create_pool(threads, &per_region_placement));
        let scatter_c0 = machine.cycles();
        {
            let contrib = &contrib;
            let acc = &mut acc;
            let vals = &mut vals;
            let layout = &layout;
            let thread_parts = &thread_parts;
            machine.phase_balanced(pool, balance, |j, ctx| {
                for &p in &thread_parts[j] {
                    let vr = layout.partition_vertices(p);
                    let (lo, hi) = (vr.start as usize, vr.end as usize);
                    if lo == hi {
                        continue;
                    }
                    let len = hi - lo;
                    // Intra pass: apply same-partition edges directly in the
                    // private cache (Fig. 4 left).
                    let ilo = layout.intra_offsets[lo] as usize;
                    let ihi = layout.intra_offsets[hi] as usize;
                    if ihi > ilo {
                        ctx.stream_read(intra_off_r, 4 * lo, 4 * (len + 1));
                        ctx.stream_read(intra_dst_r, 4 * ilo, 4 * (ihi - ilo));
                        for v in lo..hi {
                            let intra = layout.intra_of(v as u32);
                            if intra.is_empty() {
                                continue;
                            }
                            ctx.read(contrib_r, 4 * v, 4);
                            let val = contrib[v];
                            for &dst in intra {
                                acc[dst as usize] += val;
                                ctx.write(acc_r, 4 * dst as usize, 4);
                            }
                            ctx.compute(1 + intra.len() as u64);
                        }
                    }
                    // PNG pass: one sequential bin write per destination
                    // partition (Fig. 4 right).
                    let pairs = layout.png_of(p);
                    if !pairs.is_empty() {
                        let pr = layout.png_index[p].clone();
                        ctx.stream_read(png_pairs_r, 12 * pr.start as usize, 12 * pairs.len());
                    }
                    for pair in pairs {
                        let srcs = layout.png_sources(pair);
                        ctx.stream_read(png_src_r, 4 * pair.src_start as usize, 4 * srcs.len());
                        ctx.stream_write(vals_r, 4 * pair.slot_start as usize, 4 * srcs.len());
                        // Mirror the native kernel's hints: warm the bin
                        // write cursor once per pair, run ahead on the
                        // random contribution reads.
                        if do_prefetch {
                            ctx.prefetch(vals_r, 4 * pair.slot_start as usize, 4);
                        }
                        let mut pf = LineFilter::new();
                        for (k, &src) in srcs.iter().enumerate() {
                            if do_prefetch {
                                if let Some(&ahead) = srcs.get(k + PREFETCH_DISTANCE) {
                                    if pf.admit(ahead as usize) {
                                        ctx.prefetch(contrib_r, 4 * ahead as usize, 4);
                                    }
                                }
                            }
                            ctx.read(contrib_r, 4 * src as usize, 4);
                            vals[pair.slot_start as usize + k] = contrib[src as usize];
                        }
                        ctx.compute(srcs.len() as u64);
                    }
                }
                if rec.enabled() {
                    rec.record("scatter", j as i64, it as i64, ctx.thread_cycles());
                }
            });
        }

        rec.record("scatter", RUN_LEVEL, it as i64, machine.cycles() - scatter_c0);

        // Gather: stream the partition's inbox, propagate each message to
        // its destination vertices, then finalise the partition's new ranks.
        let pool =
            persistent_pool.unwrap_or_else(|| machine.create_pool(threads, &per_region_placement));
        let gather_c0 = machine.cycles();
        let mut partials = vec![0.0f64; threads];
        let mut delta_partials = vec![0.0f64; threads];
        {
            let rank = &mut rank;
            let contrib = &mut contrib;
            let inv_deg = &inv_deg;
            let acc = &mut acc;
            let vals = &vals;
            let layout = &layout;
            let thread_parts = &thread_parts;
            let degs = g.out_degrees();
            let partials = &mut partials;
            let delta_partials = &mut delta_partials;
            let dangling = cfg.dangling;
            machine.phase_balanced(pool, balance, |j, ctx| {
                let mut dpart = 0.0f64;
                let mut delta = 0.0f64;
                for &q in &thread_parts[j] {
                    let sr = layout.part_slot_ranges[q].clone();
                    let (slo, shi) = (sr.start as usize, sr.end as usize);
                    if shi > slo {
                        ctx.stream_read(vals_r, 4 * slo, 4 * (shi - slo));
                        // Message boundaries ride as MSB flags inside the
                        // destination list — 4 bytes per edge, no separate
                        // offsets stream.
                        let dlo = layout.dest_offsets[slo] as usize;
                        let dhi = layout.dest_offsets[shi] as usize;
                        if dhi > dlo {
                            ctx.stream_read(dest_verts_r, 4 * dlo, 4 * (dhi - dlo));
                        }
                        let mut pf = LineFilter::new();
                        for k in slo..shi {
                            // Run ahead on the accumulator lines the slot
                            // `PREFETCH_DISTANCE` messages onward will hit
                            // (mirrors the native kernel's hints).
                            if do_prefetch {
                                let ka = k + PREFETCH_DISTANCE;
                                if ka < shi {
                                    for &dst in layout.dests_of(ka as u64) {
                                        if pf.admit(dst as usize) {
                                            ctx.prefetch(acc_r, 4 * dst as usize, 4);
                                        }
                                    }
                                }
                            }
                            let val = vals[k];
                            let dests = layout.dests_of(k as u64);
                            for &dst in dests {
                                acc[dst as usize] += val;
                                ctx.write(acc_r, 4 * dst as usize, 4);
                            }
                            ctx.compute(dests.len() as u64);
                        }
                    }
                    // Finalise this partition (its inbox is fully applied and
                    // intra contributions landed in the scatter phase).
                    let vr = layout.partition_vertices(q);
                    let (lo, hi) = (vr.start as usize, vr.end as usize);
                    if lo == hi {
                        continue;
                    }
                    let len = hi - lo;
                    ctx.stream_read(acc_r, 4 * lo, 4 * len);
                    ctx.stream_read(invdeg_r, 4 * lo, 4 * len);
                    ctx.stream_write(contrib_r, 4 * lo, 4 * len);
                    ctx.stream_write(acc_r, 4 * lo, 4 * len);
                    if charge_last {
                        if track_model {
                            ctx.stream_read(rank_r, 4 * lo, 4 * len);
                        }
                        ctx.stream_write(rank_r, 4 * lo, 4 * len);
                    }
                    if matches!(dangling, DanglingPolicy::Redistribute) {
                        ctx.stream_read(deg_r, 4 * lo, 4 * len);
                    }
                    for v in lo..hi {
                        let new = base + d * acc[v];
                        contrib[v] = new * inv_deg[v];
                        acc[v] = 0.0;
                        if materialise {
                            if track_host {
                                delta += convergence::l1_term(new, rank[v]);
                            }
                            rank[v] = new;
                        }
                        if matches!(dangling, DanglingPolicy::Redistribute) && degs[v] == 0 {
                            dpart += new as f64;
                        }
                    }
                    ctx.compute(3 * len as u64);
                }
                partials[j] = dpart;
                delta_partials[j] = delta;
                if rec.enabled() {
                    rec.record("gather", j as i64, it as i64, ctx.thread_cycles());
                }
            });
        }
        rec.record("gather", RUN_LEVEL, it as i64, machine.cycles() - gather_c0);
        if matches!(cfg.dangling, DanglingPolicy::Redistribute) {
            dangling_mass = partials.iter().sum();
        }
        iterations_run = it + 1;
        if track_host {
            let residual = convergence::reduce(&delta_partials);
            rec.gauge(it, Some(residual), Some(layout.num_partitions as u64));
            if let Some(t) = tol {
                if convergence::should_stop(residual, t) {
                    converged = true;
                    break;
                }
            }
        }
    }

    let total = machine.cycles();
    rec.record("compute", RUN_LEVEL, RUN_LEVEL, total - preprocess_cycles);
    let report = machine.report("HiPa");
    record_sim_report(&rec, &report);
    pc.finish(&rec, threads as u64);
    let trace = rec.finish(TraceMeta {
        engine: "HiPa".into(),
        path: PATH_SIM,
        machine: Some(report.machine.clone()),
        vertices: n as u64,
        edges: g.num_edges() as u64,
        threads: threads as u64,
        partitions: Some(layout.num_partitions as u64),
        iterations_run: iterations_run as u64,
        converged,
    });
    SimRun {
        ranks: rank,
        iterations_run,
        converged,
        report,
        preprocess_cycles,
        compute_cycles: total - preprocess_cycles,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{max_rel_error, reference_pagerank};
    use crate::runs::NativeOpts;
    use hipa_numasim::MachineSpec;

    #[test]
    fn sim_matches_reference_and_native_bitwise() {
        let g = hipa_graph::datasets::small_test_graph(33);
        let cfg = PageRankConfig::default().with_iterations(6);
        let opts = SimOpts::new(MachineSpec::tiny_test()).with_partition_bytes(512);
        let sim = run(&g, &cfg, &opts);
        let oracle = reference_pagerank(&g, &cfg);
        assert!(
            max_rel_error(&sim.ranks, &oracle) < 1e-3,
            "err {}",
            max_rel_error(&sim.ranks, &oracle)
        );
        let native = crate::hipa::native::run(&g, &cfg, &NativeOpts::new(3, 512));
        assert_eq!(sim.ranks, native.ranks, "sim and native must be bit-identical");
    }

    #[test]
    fn sim_produces_memory_activity_and_time() {
        let g = hipa_graph::datasets::small_test_graph(34);
        let cfg = PageRankConfig::default().with_iterations(3);
        let opts = SimOpts::new(MachineSpec::tiny_test()).with_partition_bytes(1024);
        let sim = run(&g, &cfg, &opts);
        assert!(sim.compute_cycles > 0.0);
        assert!(sim.preprocess_cycles > 0.0);
        assert!(sim.report.mem.reads > 0);
        assert!(sim.report.mem.dram_local + sim.report.mem.dram_remote > 0);
        // Pinned persistent threads: one pool, no migrations.
        assert_eq!(sim.report.migrations, 0);
        assert_eq!(
            sim.report.threads_created as usize,
            MachineSpec::tiny_test().topology.logical_cpus()
        );
    }

    #[test]
    fn numa_placement_keeps_most_traffic_local() {
        let g = hipa_graph::datasets::small_test_graph(35);
        let cfg = PageRankConfig::default().with_iterations(5);
        let opts = SimOpts::new(MachineSpec::tiny_test()).with_partition_bytes(512);
        let sim = run(&g, &cfg, &opts);
        let frac = sim.report.mem.remote_fraction();
        assert!(frac < 0.45, "remote fraction {frac} too high for a NUMA-aware engine");
    }
}
