//! HiPa on real host threads.
//!
//! One persistent worker per plan thread runs the complete iterative
//! scatter–gather loop with barrier synchronisation ([`TrackedBarrier`]:
//! `std::sync::Barrier`, plus a vector-clock edge under the race-checker
//! features) (Algorithm 2: threads outlive the whole computation instead of
//! being recreated per parallel region). The compute workers deliberately
//! stay on dedicated `std::thread::scope` threads rather than the rayon
//! shim's pool — the one sanctioned bare-thread site outside the shims
//! (audit rule 6): they block on a barrier three times per iteration, which
//! would wedge a pool narrower than `threads`, and their spawn cost is
//! amortised over the whole run. All cross-thread data flows pass a barrier
//! wait, so the tracked edges keep the `check-hb` detector exact here. Preprocessing, in contrast, rides the shim's persistent pool
//! via `crate::par::run_indexed`. All writes are structurally disjoint —
//! each thread owns its vertex ranges and its message slots — and go
//! through [`SharedSlice`](crate::disjoint::SharedSlice).
//!
//! The arithmetic order (intra contributions in source order during
//! scatter, then inbox messages in slot order during gather) is identical
//! to the simulated path, so native and simulated runs produce bit-equal
//! f32 ranks for any thread count.
//!
//! disjointness: HiPa plan (`hipa_plan_with_prefix`) — each worker owns the
//! vertex ranges of its `part_range` partitions (rank/acc writes), the PNG
//! message slots sourced from those partitions (vals writes), and its own
//! index in the per-thread partial arrays; `base`/`ctrl` are written only by
//! thread 0 between barriers. Every slice is created once before spawn and
//! ownership never migrates, so each element has one writer thread for the
//! whole run.

use crate::config::{DanglingPolicy, PageRankConfig};
use crate::convergence;
use crate::disjoint::SharedSlice;
use crate::hb::TrackedBarrier;
use crate::pcpm::PcpmLayout;
use crate::prefetch::{prefetch_read, LineFilter, PREFETCH_DISTANCE};
use crate::runs::{NativeOpts, NativeRun};
use hipa_graph::{DiGraph, VERTEX_BYTES};
use hipa_obs::{PoolCounters, Recorder, TraceMeta, PATH_NATIVE, RUN_LEVEL};
use hipa_partition::hipa_plan_with_prefix;
use std::time::Instant;

pub fn run(g: &DiGraph, cfg: &PageRankConfig, opts: &NativeOpts) -> NativeRun {
    if let Some(run) = crate::preorder::native(g, cfg, opts, run) {
        return run;
    }
    let n = g.num_vertices();
    let rec = Recorder::new(opts.trace);
    if n == 0 {
        let converged = convergence::effective_tolerance(cfg.tolerance).is_some();
        return NativeRun {
            ranks: Vec::new(),
            preprocess: Default::default(),
            compute: Default::default(),
            iterations_run: 0,
            converged,
            trace: rec.finish(TraceMeta {
                engine: "HiPa".into(),
                path: PATH_NATIVE,
                threads: opts.threads.max(1) as u64,
                converged,
                ..TraceMeta::default()
            }),
        };
    }
    let threads = opts.threads.max(1);
    let tol = convergence::effective_tolerance(cfg.tolerance);
    // Residuals are needed for the stop rule *or* the trace's convergence
    // trajectory; the deterministic reduction is shared either way.
    let track = tol.is_some() || rec.enabled();
    let vpp = (opts.partition_bytes / VERTEX_BYTES).max(1);

    let build_threads = opts.effective_build_threads();

    // The pool deltas attribute the build phase's scheduling work (the
    // compute loop below runs on dedicated barrier threads, not the pool).
    let pc = PoolCounters::start(&rec);
    let t0 = Instant::now();
    // On the host there is no NUMA topology to honour; the hierarchical plan
    // degenerates to its cache level (one node, `threads` groups). The whole
    // preprocessing pipeline runs on `build_threads` workers and is
    // bit-identical to the sequential build.
    let prefix = crate::par::degree_prefix_parallel(g.out_degrees(), build_threads);
    let plan = hipa_plan_with_prefix(&prefix, 1, threads, vpp);
    let layout = PcpmLayout::build_par_ext(g.out_csr(), vpp, false, true, build_threads);
    let inv_deg = crate::par::inv_deg_parallel(g, build_threads);
    let preprocess = t0.elapsed();

    let d = cfg.damping;
    let inv_n = 1.0f32 / n as f32;
    let mut rank = vec![inv_n; n];
    let mut acc = vec![0.0f32; n];
    let mut vals = vec![0.0f32; layout.total_msgs as usize];
    let mut partials = vec![0.0f64; threads];
    let init_dangling: f64 = match cfg.dangling {
        DanglingPolicy::Ignore => 0.0,
        DanglingPolicy::Redistribute => {
            (0..n).filter(|&v| g.out_degree(v as u32) == 0).map(|v| rank[v] as f64).sum()
        }
    };
    let mut base_box = vec![(1.0 - d) * inv_n + d * (init_dangling as f32) * inv_n];
    let mut delta_partials = vec![0.0f64; threads];
    // ctrl[0] = stop flag (tolerance reached), ctrl[1] = iterations executed.
    let mut ctrl_box = vec![0u32; 2];

    let thread_parts: Vec<std::ops::Range<usize>> =
        plan.threads().map(|(_, _, t)| t.part_range.clone()).collect();
    let num_parts: usize = thread_parts.iter().map(|r| r.len()).sum();
    let degs = g.out_degrees();
    // Adaptive hint gate — see the sim path: hints arm only when the
    // partition's random-access span spills the (assumed) L2.
    let do_prefetch = opts.prefetch && opts.partition_bytes > crate::prefetch::NATIVE_L2_BYTES;

    let t1 = Instant::now();
    {
        let rank_s = SharedSlice::new(&mut rank);
        let acc_s = SharedSlice::new(&mut acc);
        let vals_s = SharedSlice::new(&mut vals);
        let partials_s = SharedSlice::new(&mut partials);
        let deltas_s = SharedSlice::new(&mut delta_partials);
        let base_s = SharedSlice::new(&mut base_box);
        let ctrl_s = SharedSlice::new(&mut ctrl_box);
        let barrier = TrackedBarrier::new(threads);
        std::thread::scope(|scope| {
            for j in 0..threads {
                let rank_s = &rank_s;
                let acc_s = &acc_s;
                let vals_s = &vals_s;
                let partials_s = &partials_s;
                let deltas_s = &deltas_s;
                let base_s = &base_s;
                let ctrl_s = &ctrl_s;
                let barrier = &barrier;
                let layout = &layout;
                let inv_deg = &inv_deg;
                let rec = &rec;
                let parts = thread_parts[j].clone();
                let partials_all = 0..threads;
                scope.spawn(move || {
                    let mut spans = rec.thread_spans(j);
                    for it in 0..cfg.iterations {
                        // SAFETY: `base_box[0]` was written by thread 0
                        // strictly before the previous iteration's final
                        // barrier (or before spawn for iteration 0).
                        let base = unsafe { base_s.get(0) };

                        // --- Scatter own partitions: intra pass, then one
                        // sequential bin write per destination (PNG view) ---
                        let scatter_t = spans.start();
                        for p in parts.clone() {
                            let vr = layout.partition_vertices(p);
                            for v in vr.start as usize..vr.end as usize {
                                let intra = layout.intra_of(v as u32);
                                if intra.is_empty() {
                                    continue;
                                }
                                // SAFETY: v is in this thread's own range.
                                let val = unsafe { rank_s.get(v) } * inv_deg[v];
                                for &dst in intra {
                                    // SAFETY: intra destinations stay inside
                                    // this thread's own partitions.
                                    unsafe { acc_s.update(dst as usize, |a| *a += val) };
                                }
                            }
                            for pair in layout.png_of(p) {
                                let srcs = layout.png_sources(pair);
                                if do_prefetch {
                                    // Warm this bin's write cursor: the slot
                                    // run starts on a cold line per pair.
                                    vals_s.prefetch(pair.slot_start as usize);
                                }
                                let mut pf = LineFilter::new();
                                for (k, &src) in srcs.iter().enumerate() {
                                    if do_prefetch {
                                        if let Some(&ahead) = srcs.get(k + PREFETCH_DISTANCE) {
                                            if pf.admit(ahead as usize) {
                                                rank_s.prefetch(ahead as usize);
                                                prefetch_read(inv_deg, ahead as usize);
                                            }
                                        }
                                    }
                                    // SAFETY: src is in this thread's range
                                    // and rank is only written post-barrier.
                                    let r = unsafe { rank_s.get(src as usize) };
                                    let val = r * inv_deg[src as usize];
                                    // SAFETY: each PNG slot has exactly one
                                    // writer — the source partition's owner.
                                    unsafe { vals_s.write(pair.slot_start as usize + k, val) };
                                }
                            }
                        }
                        spans.end(scatter_t, "scatter", it);
                        barrier.wait();

                        // --- Gather + finalise own partitions ---
                        let gather_t = spans.start();
                        let mut dpart = 0.0f64;
                        let mut delta = 0.0f64;
                        for q in parts.clone() {
                            let sr = layout.part_slot_ranges[q].clone();
                            let mut pf = LineFilter::new();
                            for k in sr.clone() {
                                if do_prefetch {
                                    // Run ahead on the neighbour-offset runs:
                                    // warm the accumulators of the slot
                                    // PREFETCH_DISTANCE messages out (each
                                    // dest line is prefetched exactly once).
                                    let ka = k + PREFETCH_DISTANCE as u64;
                                    if ka < sr.end {
                                        for &dst in layout.dests_of(ka) {
                                            if pf.admit(dst as usize) {
                                                acc_s.prefetch(dst as usize);
                                            }
                                        }
                                    }
                                }
                                // SAFETY: the inbox of q is only read by q's
                                // owner after the scatter barrier.
                                let val = unsafe { vals_s.get(k as usize) };
                                for &dst in layout.dests_of(k) {
                                    // SAFETY: dest vertices lie inside q.
                                    unsafe { acc_s.update(dst as usize, |a| *a += val) };
                                }
                            }
                            let vr = layout.partition_vertices(q);
                            for v in vr.start as usize..vr.end as usize {
                                // SAFETY: own range.
                                let a = unsafe { acc_s.get(v) };
                                let new = base + d * a;
                                if track {
                                    // SAFETY: own range (pre-write read).
                                    let old = unsafe { rank_s.get(v) };
                                    delta += convergence::l1_term(new, old);
                                }
                                // SAFETY: v is in this thread's own range;
                                // rank is read cross-thread only pre-barrier.
                                unsafe {
                                    rank_s.write(v, new);
                                    acc_s.write(v, 0.0);
                                }
                                if matches!(cfg.dangling, DanglingPolicy::Redistribute)
                                    && degs[v] == 0
                                {
                                    dpart += new as f64;
                                }
                            }
                        }
                        // SAFETY: slot j of both partial arrays is this
                        // thread's own.
                        unsafe {
                            partials_s.write(j, dpart);
                            deltas_s.write(j, delta);
                        }
                        spans.end(gather_t, "gather", it);
                        barrier.wait();

                        // --- Reduction (thread 0) ---
                        if j == 0 {
                            if matches!(cfg.dangling, DanglingPolicy::Redistribute) {
                                let mut mass = 0.0f64;
                                for t in partials_all.clone() {
                                    // SAFETY: all threads passed the barrier;
                                    // no one writes partials until the next.
                                    mass += unsafe { partials_s.get(t) };
                                }
                                let nb = (1.0 - d) * inv_n + d * (mass as f32) * inv_n;
                                // SAFETY: only thread 0 writes, pre-barrier.
                                unsafe { base_s.write(0, nb) };
                            }
                            // SAFETY: ctrl is thread 0's to write, pre-barrier.
                            unsafe { ctrl_s.write(1, it as u32 + 1) };
                            if track {
                                let parts: Vec<f64> = partials_all
                                    .clone()
                                    // SAFETY: all threads passed the barrier;
                                    // no one writes deltas until the next.
                                    .map(|i| unsafe { deltas_s.get(i) })
                                    .collect();
                                let residual = convergence::reduce(&parts);
                                rec.gauge(it, Some(residual), Some(num_parts as u64));
                                if let Some(t) = tol {
                                    if convergence::should_stop(residual, t) {
                                        // SAFETY: only thread 0 writes ctrl,
                                        // strictly before the next barrier.
                                        unsafe { ctrl_s.write(0, 1) };
                                    }
                                }
                            }
                        }
                        barrier.wait();
                        // SAFETY: thread 0 set the flag before the barrier.
                        if tol.is_some() && unsafe { ctrl_s.get(0) } == 1 {
                            break;
                        }
                    }
                    spans.flush(rec);
                });
            }
        });
    }
    let compute = t1.elapsed();
    let iterations_run = ctrl_box[1] as usize;
    let converged = ctrl_box[0] == 1;

    rec.record("preprocess", RUN_LEVEL, RUN_LEVEL, preprocess.as_nanos() as f64);
    rec.record("compute", RUN_LEVEL, RUN_LEVEL, compute.as_nanos() as f64);
    pc.finish(&rec, threads as u64);
    let trace = rec.finish(TraceMeta {
        engine: "HiPa".into(),
        path: PATH_NATIVE,
        machine: None,
        vertices: n as u64,
        edges: g.num_edges() as u64,
        threads: threads as u64,
        partitions: Some(num_parts as u64),
        iterations_run: iterations_run as u64,
        converged,
    });

    NativeRun { ranks: rank, preprocess, compute, iterations_run, converged, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{max_rel_error, reference_pagerank};
    use hipa_graph::gen::cycle;

    #[test]
    fn native_matches_reference_on_cycle() {
        let g = DiGraph::from_edge_list(&cycle(64));
        let cfg = PageRankConfig::default().with_iterations(15);
        let run = run(&g, &cfg, &NativeOpts::new(4, 64));
        let oracle = reference_pagerank(&g, &cfg);
        assert!(max_rel_error(&run.ranks, &oracle) < 1e-4);
    }

    #[test]
    fn native_thread_count_does_not_change_result() {
        let g = hipa_graph::datasets::small_test_graph(21);
        let cfg = PageRankConfig::default().with_iterations(8);
        let r1 = run(&g, &cfg, &NativeOpts::new(1, 1024));
        let r4 = run(&g, &cfg, &NativeOpts::new(4, 1024));
        assert_eq!(r1.ranks, r4.ranks, "bitwise determinism across thread counts");
    }
}
