//! The HiPa engine: hierarchical partitioning + thread-data pinning +
//! compressed scatter/gather (paper §3).
//!
//! Both execution paths share the same data layout and the same arithmetic
//! order, so the native and simulated runs produce **bit-identical** f32
//! rank vectors (the integration tests assert this):
//!
//! * [`native`] — persistent `std::thread` workers, one per plan thread,
//!   with barrier-synchronised scatter/gather phases (Algorithm 2);
//! * [`sim`] — the same phases executed on [`hipa_numasim::SimMachine`] with
//!   NUMA-aware partition-mapped region placement (§3.4).

pub mod native;
pub mod placement;
pub mod sim;

use crate::config::PageRankConfig;
use crate::runs::{Engine, NativeOpts, NativeRun, SimOpts, SimRun};
use hipa_graph::DiGraph;

/// The HiPa methodology (paper §3). Unit struct implementing [`Engine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HiPa;

impl Engine for HiPa {
    fn name(&self) -> &'static str {
        "HiPa"
    }

    fn numa_aware(&self) -> bool {
        true
    }

    fn run_native(&self, g: &DiGraph, cfg: &PageRankConfig, opts: &NativeOpts) -> NativeRun {
        native::run(g, cfg, opts)
    }

    fn run_sim(&self, g: &DiGraph, cfg: &PageRankConfig, opts: &SimOpts) -> SimRun {
        sim::run(g, cfg, opts)
    }
}
