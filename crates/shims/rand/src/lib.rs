//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the *subset* of the rand 0.8 API it actually uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`rngs::SmallRng`] and [`seq::SliceRandom::shuffle`].
//!
//! Generators are deterministic for a given seed (xoshiro256++ seeded through
//! SplitMix64), which is all the workspace relies on — every graph generator
//! takes an explicit seed. The concrete streams differ from upstream rand's
//! ChaCha-based `StdRng`, so seeded outputs are stable *within* this
//! workspace but not interchangeable with upstream.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(nanos ^ 0x9e37_79b9_7f4a_7c15)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as the element of a [`Rng::gen_range`] range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(inclusive as u64);
                assert!(span > 0, "gen_range called with an empty range");
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64).wrapping_add(inclusive as i64) as u64;
                assert!(span > 0, "gen_range called with an empty range");
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — the stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// The workspace enables rand's `small_rng` feature; alias it to the same
    /// generator.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), the only `seq` API the workspace uses.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Convenience re-export matching `rand::thread_rng` call sites (unseeded).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f: f32 = rng.gen_range(1.0f32..=2.0);
            assert!((1.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
