//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of rayon's API it uses: [`scope`]/[`Scope::spawn`]
//! fork-join, [`ThreadPoolBuilder`]/[`ThreadPool::scope`]/
//! [`ThreadPool::install`], and the slice parallel iterators (`par_iter`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut`) with
//! `for_each`/`enumerate`/`with_min_len`.
//!
//! Like the real rayon — and unlike this shim's first incarnation, which
//! spawned fresh OS threads on every `scope` call — everything runs on
//! *persistent* worker pools ([`pool`]): resident threads parked between
//! parallel regions, a lazily-created global pool at host width, and
//! explicit [`ThreadPool`]s whose `num_threads` genuinely bounds the
//! concurrency of everything run on them (`scope`, `install`, and any
//! `par_iter` inside). [`pool_stats`] exposes the scheduler's counters
//! (jobs, chunk claims, steals, park/unpark transitions) so the workspace's
//! trace layer can attribute scheduling cost.
//!
//! Under the `check-hb` feature the [`hb`] module threads FastTrack-style
//! vector clocks through every synchronization edge the pool creates (scope
//! spawn/join latches and the chunk-claim cursors) — the substrate of
//! `hipa-core`'s happens-before race detector.

pub mod hb;
mod iter;
mod pool;

pub use iter::{
    ChunksMutSource, ChunksSource, Enumerate, IndexedSource, ParIter, SliceMutSource, SliceSource,
};
pub use pool::{
    current_num_threads, pool_stats, scope, PoolStats, Scope, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder,
};

pub mod prelude {
    pub use crate::iter::prelude::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests;
