//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of rayon's API it uses: [`scope`]/[`Scope::spawn`] fork-join,
//! [`ThreadPoolBuilder`]/[`ThreadPool::scope`], and the slice parallel
//! iterators (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`)
//! with `for_each`/`enumerate`.
//!
//! Everything is backed by `std::thread::scope`: spawned tasks are real OS
//! threads, so parallel speedups are real on multicore hosts, and the
//! single-threaded fallback runs inline with zero spawn overhead.

use std::sync::Mutex;

/// Number of worker threads rayon would use: the host's available
/// parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A fork-join scope; mirrors `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope. The closure
    /// receives the scope again (rayon's signature), enabling nested spawns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a fork-join scope and waits for every spawned task; mirrors
/// `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { current_num_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle mirroring `rayon::ThreadPool`. Tasks are spawned as scoped OS
/// threads at `scope` time rather than queued on persistent workers; the
/// fork-join semantics (every spawn joined before `scope` returns) are
/// identical.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        scope(f)
    }

    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        f()
    }
}

/// Runs `f` over `items`, work-stealing from a shared queue across up to
/// `current_num_threads()` scoped threads; inline when that is 1.
fn drive<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    let f = &f;
    let queue = &queue;
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || loop {
                let item = queue.lock().unwrap().next();
                match item {
                    Some(item) => f(item),
                    None => break,
                }
            });
        }
    });
}

/// An eager parallel iterator over an explicit item list.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync + Send,
    {
        drive(self.items, f);
    }

    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Granularity hint; a no-op in this implementation.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

pub mod prelude {
    use super::ParIter;

    /// `par_iter`/`par_chunks` over shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_iter(&self) -> ParIter<&T>;
        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<&T> {
            ParIter { items: self.iter().collect() }
        }

        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParIter { items: self.chunks(chunk_size).collect() }
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` over unique slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_iter_mut(&mut self) -> ParIter<&mut T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<&mut T> {
            ParIter { items: self.iter_mut().collect() }
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParIter { items: self.chunks_mut(chunk_size).collect() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    // ordering: relaxed (test tally; published by the join).
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // ordering: relaxed (read after join — no concurrent writers left).
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                // ordering: relaxed (test tally; published by the join).
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    // ordering: relaxed (test tally; published by the join).
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        // ordering: relaxed (read after join — no concurrent writers left).
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_scope_borrows_and_writes() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let mut out = vec![0usize; 4];
        {
            let slots: Vec<(usize, &mut usize)> = out.iter_mut().enumerate().collect();
            pool.scope(|s| {
                for (i, slot) in slots {
                    s.spawn(move |_| *slot = i * i);
                }
            });
        }
        assert_eq!(out, vec![0, 1, 4, 9]);
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v: Vec<u64> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn par_chunks_mut_is_disjoint_and_complete() {
        let mut v = vec![0u32; 1003];
        v.par_chunks_mut(100).enumerate().for_each(|(c, chunk)| {
            for x in chunk {
                *x = c as u32 + 1;
            }
        });
        assert!(v.iter().all(|&x| x != 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[1002], 11);
    }

    #[test]
    fn par_chunks_reads_all() {
        let v: Vec<u64> = (0..500).collect();
        let sum = AtomicUsize::new(0);
        v.par_chunks(64).for_each(|c| {
            // ordering: relaxed (test tally; published by the join).
            sum.fetch_add(c.iter().sum::<u64>() as usize, Ordering::Relaxed);
        });
        // ordering: relaxed (read after join — no concurrent writers left).
        assert_eq!(sum.load(Ordering::Relaxed), (0..500).sum::<u64>() as usize);
    }
}
