//! Lazy slice parallel iterators.
//!
//! A [`ParIter`] is a pair (indexed source, `min_len` floor) — nothing is
//! materialised up front. `for_each` hands the source's index space to
//! [`parallel_for`](crate::pool), which splits it into per-worker ranges and
//! claims chunks of at least `min_len` indices at a time, so the
//! `with_min_len` granularity hint is honored instead of the previous
//! eager-`Vec` no-op.
//!
//! The one soundness obligation lives in [`IndexedSource::get`]: the driver
//! visits every index exactly once, which is what lets the mutable sources
//! mint non-aliasing `&mut` references from a raw base pointer.

use crate::pool::{current_pool, parallel_for};
use std::marker::PhantomData;

/// An indexed view the driver can fetch items from, in any order, each index
/// exactly once.
pub trait IndexedSource: Sync {
    type Item: Send;

    fn len(&self) -> usize;

    /// Fetches the item at `i`.
    ///
    /// # Safety
    ///
    /// `i < self.len()`, and each index is fetched at most once across all
    /// threads for the lifetime of the source: mutable sources return
    /// `&mut` references whose uniqueness rests on that contract.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// `par_iter`: shared references to slice elements.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    // SAFETY: shared references may alias freely; the body is safe code.
    unsafe fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// `par_chunks`: shared sub-slices of a fixed width.
pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> IndexedSource for ChunksSource<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    // SAFETY: shared sub-slices may alias freely; the body is safe code.
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.chunk;
        let hi = self.slice.len().min(lo + self.chunk);
        &self.slice[lo..hi]
    }
}

/// `par_iter_mut`: unique references to slice elements, minted from a raw
/// base pointer under the each-index-once contract.
pub struct SliceMutSource<'a, T> {
    base: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: sharing the source across threads only ever yields references to
// *distinct* indices (the `IndexedSource::get` contract), so no `&mut T`
// aliases another; `T: Send` lets those references cross threads.
unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

impl<'a, T: Send + 'a> IndexedSource for SliceMutSource<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    // SAFETY: relies on the trait's each-index-once contract; see the
    // inner block.
    unsafe fn get(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        // SAFETY: `i < len` keeps the offset inside the original slice, and
        // the caller fetches each index at most once, so this `&mut` is the
        // only live reference to the element.
        unsafe { &mut *self.base.add(i) }
    }
}

/// `par_chunks_mut`: unique sub-slices of a fixed width.
pub struct ChunksMutSource<'a, T> {
    base: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for `SliceMutSource` — chunk index `i` maps to the element
// range `[i*chunk, min(len, (i+1)*chunk))`, and distinct chunk indices map
// to disjoint ranges, so the minted `&mut [T]`s never alias.
unsafe impl<T: Send> Sync for ChunksMutSource<'_, T> {}

impl<'a, T: Send + 'a> IndexedSource for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    // SAFETY: relies on the trait's each-index-once contract; see the
    // inner block.
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.chunk;
        let hi = self.len.min(lo + self.chunk);
        // SAFETY: `lo..hi` lies inside the original slice, and the caller
        // fetches each chunk index at most once, so no two returned slices
        // overlap.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(lo), hi - lo) }
    }
}

/// Adapter pairing each item with its index.
pub struct Enumerate<S> {
    inner: S,
}

impl<S: IndexedSource> IndexedSource for Enumerate<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    // SAFETY: same index, same contract — forwarded verbatim to the inner
    // source.
    unsafe fn get(&self, i: usize) -> (usize, S::Item) {
        // SAFETY: as above.
        (i, unsafe { self.inner.get(i) })
    }
}

/// A lazy parallel iterator: an indexed source plus a `min_len` claim floor.
/// Work happens in [`for_each`](ParIter::for_each), on the current pool.
pub struct ParIter<S> {
    source: S,
    min_len: usize,
}

impl<S: IndexedSource> ParIter<S> {
    fn new(source: S) -> ParIter<S> {
        ParIter { source, min_len: 1 }
    }

    /// Granularity hint: never claim fewer than `min` indices at a time
    /// (rayon's `IndexedParallelIterator::with_min_len`).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min.max(1));
        self
    }

    pub fn enumerate(self) -> ParIter<Enumerate<S>> {
        ParIter { source: Enumerate { inner: self.source }, min_len: self.min_len }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync + Send,
    {
        let source = &self.source;
        parallel_for(&current_pool(), source.len(), self.min_len, &|i| {
            // SAFETY: `parallel_for` passes each index in `0..len` exactly
            // once (disjoint claimed windows), which is `get`'s contract.
            f(unsafe { source.get(i) })
        });
    }
}

pub mod prelude {
    use super::*;

    /// `par_iter`/`par_chunks` over shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_iter(&self) -> ParIter<SliceSource<'_, T>>;
        fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<SliceSource<'_, T>> {
            ParIter::new(SliceSource { slice: self })
        }

        fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParIter::new(ChunksSource { slice: self, chunk: chunk_size })
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` over unique slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSource<'_, T>>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>> {
            let len = self.len();
            ParIter::new(SliceMutSource { base: self.as_mut_ptr(), len, _marker: PhantomData })
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSource<'_, T>> {
            assert!(chunk_size > 0, "chunk size must be positive");
            let len = self.len();
            ParIter::new(ChunksMutSource {
                base: self.as_mut_ptr(),
                len,
                chunk: chunk_size,
                _marker: PhantomData,
            })
        }
    }
}
