use super::prelude::*;
use super::*;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

#[test]
fn scope_joins_all_spawns() {
    let counter = AtomicUsize::new(0);
    scope(|s| {
        for _ in 0..8 {
            s.spawn(|_| {
                // ordering: relaxed (test tally; published by the join).
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(counter.load(Ordering::Relaxed), 8);
}

#[test]
fn nested_spawn_works() {
    let counter = AtomicUsize::new(0);
    scope(|s| {
        s.spawn(|s| {
            // ordering: relaxed (test tally; published by the join).
            counter.fetch_add(1, Ordering::Relaxed);
            s.spawn(|_| {
                // ordering: relaxed (test tally; published by the join).
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(counter.load(Ordering::Relaxed), 2);
}

#[test]
fn pool_scope_borrows_and_writes() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    assert_eq!(pool.current_num_threads(), 4);
    let mut out = vec![0usize; 4];
    {
        let slots: Vec<(usize, &mut usize)> = out.iter_mut().enumerate().collect();
        pool.scope(|s| {
            for (i, slot) in slots {
                s.spawn(move |_| *slot = i * i);
            }
        });
    }
    assert_eq!(out, vec![0, 1, 4, 9]);
}

#[test]
fn par_iter_mut_touches_every_element() {
    let mut v: Vec<u64> = (0..1000).collect();
    v.par_iter_mut().for_each(|x| *x *= 2);
    assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
}

#[test]
fn par_chunks_mut_is_disjoint_and_complete() {
    let mut v = vec![0u32; 1003];
    v.par_chunks_mut(100).enumerate().for_each(|(c, chunk)| {
        for x in chunk {
            *x = c as u32 + 1;
        }
    });
    assert!(v.iter().all(|&x| x != 0));
    assert_eq!(v[0], 1);
    assert_eq!(v[1002], 11);
}

#[test]
fn par_chunks_reads_all() {
    let v: Vec<u64> = (0..500).collect();
    let sum = AtomicUsize::new(0);
    v.par_chunks(64).for_each(|c| {
        // ordering: relaxed (test tally; published by the join).
        sum.fetch_add(c.iter().sum::<u64>() as usize, Ordering::Relaxed);
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(sum.load(Ordering::Relaxed), (0..500).sum::<u64>() as usize);
}

// ---------------------------------------------------------------------------
// Persistent-pool regression tests
// ---------------------------------------------------------------------------

/// Marks a task's execution window on a local concurrency gauge and records
/// its high watermark.
fn track(active: &AtomicUsize, high: &AtomicUsize) {
    // ordering: relaxed (test gauge — each RMW returns the exact count at
    // its slot in the modification order, all the watermark needs).
    let now = active.fetch_add(1, Ordering::Relaxed) + 1;
    // ordering: relaxed (monotone watermark update on the same gauge).
    high.fetch_max(now, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(5));
    // ordering: relaxed (test gauge decrement).
    active.fetch_sub(1, Ordering::Relaxed);
}

/// The headline regression: a `num_threads(2)` pool runs at most 2 of its 8
/// spawned tasks concurrently (the old shim ran all 8 on fresh OS threads).
#[test]
fn pool_scope_bounds_concurrency() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let active = AtomicUsize::new(0);
    let high = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    pool.scope(|s| {
        for _ in 0..8 {
            s.spawn(|_| {
                track(&active, &high);
                // ordering: relaxed (test tally; published by the join).
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(done.load(Ordering::Relaxed), 8);
    // ordering: relaxed (read after join — no concurrent writers left).
    let high = high.load(Ordering::Relaxed);
    assert!(high <= 2, "num_threads(2) pool ran {high} tasks concurrently");
}

/// `install` routes `par_iter` onto the installed pool: with `num_threads(2)`
/// the observed concurrency stays ≤ 2 and no item runs on the caller thread
/// (dispatch happens on the resident workers).
#[test]
fn install_bounds_par_iter_concurrency() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let caller = std::thread::current().id();
    let active = AtomicUsize::new(0);
    let high = AtomicUsize::new(0);
    let ids = Mutex::new(HashSet::new());
    let v: Vec<u32> = (0..64).collect();
    pool.install(|| {
        v.par_iter().with_min_len(1).for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            track(&active, &high);
        });
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    let high = high.load(Ordering::Relaxed);
    assert!(high <= 2, "par_iter in a num_threads(2) install ran {high}-wide");
    let ids = ids.into_inner().unwrap();
    assert!(ids.len() <= 2, "more worker threads than the pool width: {}", ids.len());
    assert!(!ids.contains(&caller), "items ran on the caller instead of the pool");
}

/// `current_num_threads` reflects the installed pool (rayon semantics) and
/// falls back to the cached host width outside any pool.
#[test]
fn current_num_threads_tracks_install_context() {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    assert_eq!(current_num_threads(), host);
    let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
    outer.install(|| {
        assert_eq!(current_num_threads(), 3);
        inner.install(|| assert_eq!(current_num_threads(), 5));
        assert_eq!(current_num_threads(), 3);
    });
    assert_eq!(current_num_threads(), host);
    // Resident workers report their own pool's width.
    let seen = AtomicUsize::new(0);
    outer.scope(|s| {
        s.spawn(|_| {
            // ordering: relaxed (test tally; published by the join).
            seen.store(current_num_threads(), Ordering::Relaxed);
        });
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(seen.load(Ordering::Relaxed), 3);
}

/// The install context unwinds with the stack: a panic inside `install`
/// must not leave the pool installed on the caller thread.
#[test]
fn install_context_pops_on_panic() {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let r = catch_unwind(AssertUnwindSafe(|| pool.install(|| panic!("boom"))));
    assert!(r.is_err());
    assert_eq!(current_num_threads(), host);
}

/// `with_min_len` is no longer a no-op: the chunk-size rule takes the floor,
/// and a floor covering the whole input collapses to one inline sequential
/// pass (strictly ascending visit order).
#[test]
fn with_min_len_chunk_rule_and_sequential_collapse() {
    use super::pool::chunk_size;
    // The floor wins when it is coarser than the auto granularity...
    assert_eq!(chunk_size(1000, 100, 4), 100);
    // ...the auto granularity (len / (width × 8), rounded up) wins otherwise...
    assert_eq!(chunk_size(1000, 1, 4), 32);
    // ...and degenerate inputs clamp to at least one index per claim.
    assert_eq!(chunk_size(10, 0, 4), 1);
    assert_eq!(chunk_size(1, 1, 0), 1);

    let v: Vec<u32> = (0..100).collect();
    let order = Mutex::new(Vec::new());
    v.par_iter().with_min_len(100).enumerate().for_each(|(i, _)| {
        order.lock().unwrap().push(i);
    });
    let order = order.into_inner().unwrap();
    assert_eq!(order, (0..100).collect::<Vec<_>>(), "min_len ≥ len must run inline, in order");
}

/// Workers are resident: five scopes on a `num_threads(2)` pool reuse the
/// same two OS threads (the old shim would have spawned twenty).
#[test]
fn persistent_workers_are_reused_across_scopes() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let ids = Mutex::new(HashSet::new());
    for _ in 0..5 {
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
            }
        });
    }
    let ids = ids.into_inner().unwrap();
    assert!(!ids.is_empty());
    assert!(ids.len() <= 2, "expected ≤2 resident workers, saw {}", ids.len());
}

/// A nested scope inside a worker of a width-1 pool must not deadlock: the
/// waiting worker executes the queued jobs itself.
#[test]
fn nested_scope_on_saturated_pool_completes() {
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let counter = AtomicUsize::new(0);
    pool.scope(|s| {
        s.spawn(|_| {
            // On a worker thread the free `scope` resolves to the same pool.
            scope(|inner| {
                for _ in 0..4 {
                    inner.spawn(|_| {
                        // ordering: relaxed (test tally; published by the join).
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            // ordering: relaxed (test tally; published by the join).
            counter.fetch_add(1, Ordering::Relaxed);
        });
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(counter.load(Ordering::Relaxed), 5);
}

/// Oversubscription: far more tasks than workers all run to completion.
#[test]
fn oversubscribed_scope_drains() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let counter = AtomicUsize::new(0);
    pool.scope(|s| {
        for _ in 0..64 {
            s.spawn(|_| {
                // ordering: relaxed (test tally; published by the join).
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(counter.load(Ordering::Relaxed), 64);
}

/// A panicking task is rethrown by the scope caller after every other task
/// drained, and the pool stays usable afterwards.
#[test]
fn scope_propagates_task_panics_and_survives() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let done = AtomicUsize::new(0);
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|_| panic!("boom"));
            for _ in 0..4 {
                s.spawn(|_| {
                    // ordering: relaxed (test tally; published by the join).
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
    assert!(r.is_err(), "task panic must propagate out of the scope");
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(done.load(Ordering::Relaxed), 4, "surviving tasks drain before the rethrow");
    let counter = AtomicUsize::new(0);
    pool.scope(|s| {
        s.spawn(|_| {
            // ordering: relaxed (test tally; published by the join).
            counter.fetch_add(1, Ordering::Relaxed);
        });
    });
    // ordering: relaxed (read after join — no concurrent writers left).
    assert_eq!(counter.load(Ordering::Relaxed), 1);
}

/// `pool_stats` counters are cumulative and monotone.
#[test]
fn pool_stats_monotone() {
    let before = pool_stats();
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    pool.scope(|s| {
        s.spawn(|_| {});
    });
    let after = pool_stats();
    assert!(after.workers_spawned >= before.workers_spawned + 2);
    assert!(after.jobs >= before.jobs + 1);
    assert!(after.parks >= before.parks);
    assert!(after.max_active >= before.max_active);
}

#[test]
fn empty_scope_returns_value() {
    assert_eq!(scope(|_| 42), 42);
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    assert_eq!(pool.install(|| 7), 7);
    let empty: Vec<u32> = Vec::new();
    empty.par_iter().for_each(|_| unreachable!());
}
