//! The persistent worker pool backing the shim.
//!
//! Workers are resident OS threads, parked on a condvar between parallel
//! regions (the paper's §3.3 persistent-thread model, Algorithm 2), instead
//! of the previous spawn-per-`scope` strategy. A scope queues type-erased
//! jobs on its pool; the caller blocks until the scope's latch drains. While
//! it waits, a thread that is itself a worker of the *same* pool executes
//! queued jobs (so nested scopes always make progress and cannot deadlock),
//! whereas any other thread just sleeps — which is what keeps a
//! `num_threads(n)` pool from ever running more than `n` jobs at once.
//!
//! [`parallel_for`] is the index-space driver behind the parallel iterators:
//! every worker gets an even share of `0..len` with an atomic claim cursor,
//! claims it chunk by chunk, and steals from sibling ranges once its own is
//! drained — the claiming discipline of `hipa_core::par::run_indexed`,
//! generalized to chunked claims with a `with_min_len` floor.
//!
//! Synchronisation story: job hand-off and latch counts are guarded by one
//! mutex per pool ([`PoolShared::state`]); data written by jobs becomes
//! visible to the scope caller through that mutex (the caller re-acquires it
//! to observe the final latch decrement). The only atomics are the claim
//! cursors and the statistics cells, all `Relaxed`: a cursor needs nothing
//! but uniqueness of the claimed window, and the counters carry no payload.
//! Under `check-hb` the same edges additionally carry vector clocks ([`crate::hb`]):
//! spawns fork the caller's clock into the job, finished jobs release into
//! the scope's join clock (acquired by the caller after the latch drains),
//! and each chunk claim takes a release+acquire edge through its cursor —
//! whose RMW is upgraded to `AcqRel` so the modeled edge is real.

use crate::hb;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Process-wide statistics
// ---------------------------------------------------------------------------

/// Snapshot of the cumulative process-wide pool counters; see
/// [`pool_stats`]. All cells only ever grow (except via process restart), so
/// callers measure a region by subtracting two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Resident worker threads ever spawned (global pool + every
    /// [`ThreadPool`]).
    pub workers_spawned: u64,
    /// Jobs executed: scope spawns plus `parallel_for` range drivers.
    pub jobs: u64,
    /// Chunks claimed from the `parallel_for` index cursors.
    pub tasks_claimed: u64,
    /// Subset of `tasks_claimed` taken from a *sibling's* range after the
    /// claimant's own range drained.
    pub steals: u64,
    /// Times a thread parked on a pool condvar (idle worker or scope
    /// waiter).
    pub parks: u64,
    /// Times a parked thread woke up.
    pub unparks: u64,
    /// High watermark of OS threads concurrently executing pool jobs.
    pub max_active: u64,
}

struct StatCells {
    workers_spawned: AtomicU64,
    jobs: AtomicU64,
    tasks_claimed: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    active: AtomicU64,
    max_active: AtomicU64,
}

static STATS: StatCells = StatCells {
    workers_spawned: AtomicU64::new(0),
    jobs: AtomicU64::new(0),
    tasks_claimed: AtomicU64::new(0),
    steals: AtomicU64::new(0),
    parks: AtomicU64::new(0),
    unparks: AtomicU64::new(0),
    active: AtomicU64::new(0),
    max_active: AtomicU64::new(0),
};

fn bump(cell: &AtomicU64, n: u64) {
    // ordering: relaxed (statistics counter — exact count, no payload).
    cell.fetch_add(n, Ordering::Relaxed);
}

fn read(cell: &AtomicU64) -> u64 {
    // ordering: relaxed (statistics read; no cross-cell consistency needed).
    cell.load(Ordering::Relaxed)
}

/// Snapshot of the process-wide pool counters. A shim extension, not part of
/// rayon's API: `hipa-obs` bridges start/finish deltas of these into
/// `RunTrace` counters so the trace census can attribute scheduling cost.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        workers_spawned: read(&STATS.workers_spawned),
        jobs: read(&STATS.jobs),
        tasks_claimed: read(&STATS.tasks_claimed),
        steals: read(&STATS.steals),
        parks: read(&STATS.parks),
        unparks: read(&STATS.unparks),
        max_active: read(&STATS.max_active),
    }
}

thread_local! {
    /// Nesting depth of pool jobs on this thread: a worker helping a nested
    /// scope runs jobs inside jobs, and only the 0↔1 transitions touch the
    /// process-wide active gauge, so `max_active` counts OS threads, not
    /// stacked frames.
    static JOB_DEPTH: Cell<usize> = const { Cell::new(0) };
}

fn enter_job() {
    bump(&STATS.jobs, 1);
    let depth = JOB_DEPTH.with(|c| {
        let d = c.get();
        c.set(d + 1);
        d
    });
    if depth == 0 {
        // ordering: relaxed (concurrency gauge — each RMW returns the exact
        // count at its slot in the cell's modification order, which is all
        // the watermark needs; no payload is published through it).
        let now = STATS.active.fetch_add(1, Ordering::Relaxed) + 1;
        // ordering: relaxed (same gauge — monotone watermark update).
        STATS.max_active.fetch_max(now, Ordering::Relaxed);
    }
}

fn exit_job() {
    let depth = JOB_DEPTH.with(|c| {
        let d = c.get() - 1;
        c.set(d);
        d
    });
    if depth == 0 {
        // ordering: relaxed (concurrency gauge decrement).
        STATS.active.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Pool state
// ---------------------------------------------------------------------------

pub(crate) struct PoolShared {
    /// Number of resident workers; fixed at construction.
    pub(crate) width: usize,
    state: Mutex<PoolState>,
    /// Idle workers park here; notified once per pushed job and broadcast at
    /// shutdown.
    work_cv: Condvar,
    /// Scope waiters park here; notified on every push (a same-pool helper
    /// must see new jobs) and whenever a latch reaches zero.
    done_cv: Condvar,
}

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// A queued unit of work: a type-erased task plus the latch of the scope it
/// belongs to. The task closure is laundered to `'static`; see
/// [`Scope::spawn`] for why that is sound.
struct Job {
    task: Box<dyn FnOnce() + Send>,
    scope: ScopePtr,
    /// Spawn edge: the spawning thread's clock at `add_job`, adopted by the
    /// worker before the task body runs.
    #[cfg(feature = "check-hb")]
    spawn_clock: hb::VClock,
}

/// Pointer to the stack-pinned [`ScopeCore`] of the owning scope.
#[derive(Clone, Copy)]
struct ScopePtr(*const ScopeCore);

// SAFETY: the pointee outlives every job of its scope — `scope_on` blocks in
// `ScopeCore::wait` until the latch reaches zero before the core is dropped,
// and the latch counts each job until after it ran — so worker-side
// dereferences always see a live value.
unsafe impl Send for ScopePtr {}

/// The latch one `scope_on` call waits on: `pending` counts the scope body
/// itself (1) plus every unfinished spawned job.
struct ScopeCore {
    pool: Arc<PoolShared>,
    /// Read and written only under `PoolShared::state`; the atomic type
    /// provides shared mutability through the `&self` methods, not lock-free
    /// ordering.
    pending: AtomicUsize,
    /// First panic out of any spawned job; rethrown by the scope caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Join edge: every finished job releases its clock here; the scope
    /// caller acquires it once the latch drains.
    #[cfg(feature = "check-hb")]
    join_clock: hb::SyncClock,
}

impl ScopeCore {
    fn new(pool: Arc<PoolShared>) -> ScopeCore {
        ScopeCore {
            pool,
            pending: AtomicUsize::new(1),
            panic: Mutex::new(None),
            #[cfg(feature = "check-hb")]
            join_clock: hb::SyncClock::new(),
        }
    }

    /// Queues a job on the pool and counts it on the latch.
    fn add_job(&self, task: Box<dyn FnOnce() + Send>, this: ScopePtr) {
        #[cfg(feature = "check-hb")]
        let spawn_clock = hb::fork();
        let mut st = self.pool.state.lock().unwrap();
        // ordering: relaxed (guarded by the pool mutex).
        self.pending.fetch_add(1, Ordering::Relaxed);
        st.queue.push_back(Job {
            task,
            scope: this,
            #[cfg(feature = "check-hb")]
            spawn_clock,
        });
        self.pool.work_cv.notify_one();
        // Helpers waiting on a nested latch must re-check the queue.
        self.pool.done_cv.notify_all();
    }

    fn store_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        slot.get_or_insert(payload);
    }

    /// Counts one unit done; called by job runners and by the scope caller
    /// once the scope body returns.
    fn complete(&self) {
        let _st = self.pool.state.lock().unwrap();
        // ordering: relaxed (guarded by the pool mutex).
        if self.pending.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.pool.done_cv.notify_all();
        }
    }

    /// Blocks until every unit completes. A worker of the owning pool
    /// executes queued jobs while it waits (nested scopes make progress
    /// without exceeding the pool width); any other thread sleeps.
    fn wait(&self) {
        let help = worker_of().is_some_and(|p| Arc::ptr_eq(&p, &self.pool));
        loop {
            let job = {
                let mut st = self.pool.state.lock().unwrap();
                loop {
                    // ordering: relaxed (guarded by the pool mutex).
                    if self.pending.load(Ordering::Relaxed) == 0 {
                        return;
                    }
                    if help {
                        if let Some(job) = st.queue.pop_front() {
                            break job;
                        }
                    }
                    bump(&STATS.parks, 1);
                    st = self.pool.done_cv.wait(st).unwrap();
                    bump(&STATS.unparks, 1);
                }
            };
            run_job(job);
        }
    }
}

/// Runs a dequeued job and completes its latch, capturing panics so the
/// latch always drains and the scope caller can rethrow.
fn run_job(job: Job) {
    #[cfg(feature = "check-hb")]
    hb::adopt(&job.spawn_clock);
    let Job { task, scope, .. } = job;
    enter_job();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
    exit_job();
    // SAFETY: the owning scope is still waiting on its latch — this job has
    // not been counted complete yet — so the core pointer is live.
    let core = unsafe { &*scope.0 };
    // Join edge half 1: publish everything this job did (panicked or not)
    // into the scope's join clock before the latch can drain.
    #[cfg(feature = "check-hb")]
    core.join_clock.release();
    if let Err(payload) = result {
        core.store_panic(payload);
    }
    core.complete();
}

fn worker_loop(pool: Arc<PoolShared>) {
    WORKER_OF.with(|w| *w.borrow_mut() = Some(Arc::clone(&pool)));
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                bump(&STATS.parks, 1);
                st = pool.work_cv.wait(st).unwrap();
                bump(&STATS.unparks, 1);
            }
        };
        run_job(job);
    }
}

fn spawn_pool(width: usize) -> (Arc<PoolShared>, Vec<std::thread::JoinHandle<()>>) {
    let pool = Arc::new(PoolShared {
        width: width.max(1),
        state: Mutex::new(PoolState::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    });
    let handles = (0..pool.width)
        .map(|i| {
            bump(&STATS.workers_spawned, 1);
            let p = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(p))
                .expect("spawning pool worker")
        })
        .collect();
    (pool, handles)
}

// ---------------------------------------------------------------------------
// Thread-local pool context
// ---------------------------------------------------------------------------

thread_local! {
    /// The pool this thread is a resident worker of; set once at worker
    /// startup, never cleared.
    static WORKER_OF: RefCell<Option<Arc<PoolShared>>> = const { RefCell::new(None) };
    /// Stack of pools entered via [`ThreadPool::install`]/[`ThreadPool::scope`].
    static INSTALLED: RefCell<Vec<Arc<PoolShared>>> = const { RefCell::new(Vec::new()) };
}

fn worker_of() -> Option<Arc<PoolShared>> {
    WORKER_OF.with(|w| w.borrow().clone())
}

/// The pool implicit parallelism runs on: the innermost installed pool, else
/// the pool this thread works for, else the lazily-created global pool.
pub(crate) fn current_pool() -> Arc<PoolShared> {
    INSTALLED
        .with(|s| s.borrow().last().cloned())
        .or_else(worker_of)
        .unwrap_or_else(|| Arc::clone(global_pool()))
}

static HOST_THREADS: OnceLock<usize> = OnceLock::new();

/// Host parallelism, queried from the OS exactly once per process.
fn host_threads() -> usize {
    *HOST_THREADS
        .get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

static GLOBAL: OnceLock<Arc<PoolShared>> = OnceLock::new();

/// The global pool (width = host parallelism), created on first use; its
/// workers live for the rest of the process, parked when idle.
fn global_pool() -> &'static Arc<PoolShared> {
    GLOBAL.get_or_init(|| spawn_pool(host_threads()).0)
}

/// Width of the current pool: inside [`ThreadPool::install`]/`scope` (or on
/// one of its worker threads) the installed pool's thread count, otherwise
/// the host parallelism — crates.io rayon semantics.
pub fn current_num_threads() -> usize {
    INSTALLED
        .with(|s| s.borrow().last().map(|p| p.width))
        .or_else(|| worker_of().map(|p| p.width))
        .unwrap_or_else(host_threads)
}

struct InstallGuard;

impl InstallGuard {
    fn push(pool: Arc<PoolShared>) -> InstallGuard {
        INSTALLED.with(|s| s.borrow_mut().push(pool));
        InstallGuard
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

/// A fork-join scope; mirrors `rayon::Scope`. `'scope` is invariant, as in
/// rayon: it is the lifetime spawned closures (and their borrows) must
/// outlive.
pub struct Scope<'scope> {
    core: ScopePtr,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task that may borrow from the enclosing scope. The closure
    /// receives the scope again (rayon's signature), enabling nested spawns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let ptr = self.core;
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            f(&Scope { core: ptr, _marker: PhantomData });
        });
        // SAFETY: the closure is laundered to 'static but never outlives its
        // borrows: `scope_on` cannot return — nor its stack frame unwind —
        // before `ScopeCore::wait` sees the latch at zero, and the latch
        // counts this job until after the closure ran (or panicked). The
        // transmute only erases the lifetime bound; the trait object's
        // layout and vtable are unchanged.
        let task: Box<dyn FnOnce() + Send> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                task,
            )
        };
        // SAFETY: `self.core` points at the live ScopeCore of the enclosing
        // `scope_on` frame (scopes are only handed out inside that frame).
        let core = unsafe { &*self.core.0 };
        core.add_job(task, ptr);
    }
}

/// Runs `f` with a fork-join scope on `pool` and waits for every spawned
/// task; panics from the body or any task are rethrown after all tasks
/// finished (so no laundered borrow dangles).
pub(crate) fn scope_on<'scope, F, R>(pool: Arc<PoolShared>, f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let core = ScopeCore::new(pool);
    let scope = Scope { core: ScopePtr(&core), _marker: PhantomData };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
    // The body's own latch unit is done; spawned jobs may still be running.
    core.complete();
    core.wait();
    // Join edge half 2: the caller absorbs every job's released clock, so
    // everything the scope ran happens-before everything after it.
    #[cfg(feature = "check-hb")]
    core.join_clock.acquire();
    let job_panic = core.panic.lock().unwrap().take();
    match (result, job_panic) {
        (Ok(r), None) => r,
        (Err(payload), _) | (Ok(_), Some(payload)) => std::panic::resume_unwind(payload),
    }
}

/// Creates a fork-join scope on the current pool and waits for every spawned
/// task; mirrors `rayon::scope`.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    scope_on(current_pool(), f)
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

/// Error type of [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its resident workers; `0` threads means
    /// host parallelism.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { host_threads() } else { self.num_threads };
        let (shared, workers) = spawn_pool(n);
        Ok(ThreadPool { shared, workers })
    }
}

/// A handle mirroring `rayon::ThreadPool`: `num_threads` resident workers,
/// parked between calls, joined on drop.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.shared.width).finish()
    }
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.shared.width
    }

    /// Runs `f` with this pool installed as the current pool: nested
    /// `par_iter`s, free `scope`s, and [`current_num_threads`] inside `f`
    /// resolve to it.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let _guard = InstallGuard::push(Arc::clone(&self.shared));
        f()
    }

    /// A fork-join scope whose spawns run on this pool — at most
    /// `num_threads` of them concurrently. The pool is also installed for
    /// the duration of the scope body.
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        let _guard = InstallGuard::push(Arc::clone(&self.shared));
        scope_on(Arc::clone(&self.shared), f)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Index-space driver
// ---------------------------------------------------------------------------

/// Claim-granularity target: without a `with_min_len` floor, each worker's
/// range splits into about this many claims — enough slack for stealing to
/// rebalance, few enough that the cursor RMWs stay amortised.
const CLAIMS_PER_WORKER: usize = 8;

/// Consecutive indices claimed per cursor `fetch_add`: the `with_min_len`
/// floor, raised to the auto granularity for short inputs.
pub(crate) fn chunk_size(len: usize, min_len: usize, width: usize) -> usize {
    let auto = len.div_ceil(width.max(1) * CLAIMS_PER_WORKER).max(1);
    auto.max(min_len.max(1))
}

/// Runs `f(i)` for every `i` in `0..len` on the pool: per-worker index
/// ranges, chunked claims from a relaxed cursor per range, steal from
/// sibling ranges when the own range drains. Runs inline on the caller when
/// one worker suffices.
pub(crate) fn parallel_for<F>(pool: &Arc<PoolShared>, len: usize, min_len: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    if len == 0 {
        return;
    }
    let chunk = chunk_size(len, min_len, pool.width);
    let workers = pool.width.min(len.div_ceil(chunk));
    if workers <= 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let bounds: Vec<usize> = (0..=workers).map(|w| w * len / workers).collect();
    let cursors: Vec<AtomicUsize> = bounds[..workers].iter().map(|&lo| AtomicUsize::new(lo)).collect();
    #[cfg(feature = "check-hb")]
    let claim_clocks: Vec<hb::SyncClock> = (0..workers).map(|_| hb::SyncClock::new()).collect();
    let bounds = &bounds;
    let cursors = &cursors;
    #[cfg(feature = "check-hb")]
    let claim_clocks = &claim_clocks;
    scope_on(Arc::clone(pool), |s| {
        for w in 0..workers {
            s.spawn(move |_| {
                for k in 0..workers {
                    let v = (w + k) % workers;
                    let hi = bounds[v + 1];
                    loop {
                        // ordering: relaxed via `hb::CLAIM_ORDERING` (chunk-
                        // claim cursor — only uniqueness of the claimed
                        // window matters; results become visible to the
                        // caller through the scope's mutex-guarded latch).
                        // Under `check-hb` the constant upgrades to `AcqRel`
                        // and the claim takes a matching vector-clock edge,
                        // so successive claimants of one cursor are ordered
                        // in the model exactly as on the hardware.
                        let lo = cursors[v].fetch_add(chunk, hb::CLAIM_ORDERING);
                        if lo >= hi {
                            break;
                        }
                        #[cfg(feature = "check-hb")]
                        claim_clocks[v].rel_acq();
                        bump(&STATS.tasks_claimed, 1);
                        if k > 0 {
                            bump(&STATS.steals, 1);
                        }
                        for i in lo..hi.min(lo + chunk) {
                            f(i);
                        }
                    }
                }
            });
        }
    });
}
