//! Vector-clock happens-before runtime behind the `check-hb` feature.
//!
//! This module gives every OS thread a FastTrack-style vector clock and
//! threads those clocks through every synchronization edge the pool creates
//! (DESIGN.md §15):
//!
//! * **scope spawn** — [`fork`] snapshots the spawning thread's clock into
//!   the queued job, then bumps the spawner so its later events are *not*
//!   ordered before the job; the worker [`adopt`]s the snapshot before
//!   running the task;
//! * **scope join** — each finished job [`SyncClock::release`]s into its
//!   scope's join clock before the latch drops, and the scope caller
//!   [`SyncClock::acquire`]s it after the latch drains, so everything a job
//!   did happens-before everything after the scope;
//! * **chunk claims** — `parallel_for`'s claim cursors get a
//!   [`SyncClock::rel_acq`] edge per claim, and the cursor RMW itself is
//!   upgraded from `Relaxed` to `AcqRel` via [`CLAIM_ORDERING`] so the
//!   modeled edge exists on the hardware too (a detector must never invent
//!   an edge the real execution lacks).
//!
//! The pool's mutex/condvar hand-offs create *incidental* hardware edges
//! beyond these (any two jobs of one pool are loosely ordered through the
//! queue mutex). Those are deliberately **not** modeled: the detector checks
//! the documented synchronization contract — scope joins, barriers, claim
//! cursors — so code that is only ordered by queue-lock luck is reported as
//! racy, which is the point ("disjoint by plan" vs "racy but lucky").
//!
//! Thread identity is per OS thread, not per job. Pool workers are
//! persistent, so a worker's clock accumulates edges across the jobs it
//! runs — every one of which is a *true* happens-before edge (the worker
//! really did run those jobs in sequence), so reuse only suppresses reports
//! between accesses that genuinely cannot race. Clocks are sparse sorted
//! `(tid, clk)` vectors: fork-join programs touch a handful of threads, so
//! joins stay cheap and snapshots small.
//!
//! With the feature off, only [`CLAIM_ORDERING`] exists (as `Relaxed`) and
//! the runtime compiles to nothing.

#[cfg(feature = "check-hb")]
use std::cell::RefCell;
#[cfg(feature = "check-hb")]
use std::sync::atomic::AtomicU32;
use std::sync::atomic::Ordering;
#[cfg(feature = "check-hb")]
use std::sync::Mutex;

/// Memory ordering for work-claim cursor RMWs (the pool's `parallel_for`
/// cursors and the engines' FCFS claim counters).
///
/// Under `check-hb` the detector draws a happens-before edge through every
/// claim, so the RMW must actually be `AcqRel` for the modeled edge to exist
/// in the real execution; without the feature the cursors only need
/// uniqueness of the claimed window, and stay `Relaxed` as documented at
/// each site.
#[cfg(feature = "check-hb")]
pub const CLAIM_ORDERING: Ordering = Ordering::AcqRel;
/// See the `check-hb` variant above; claim cursors need only uniqueness.
// ordering: relaxed (claim cursors carry no payload when the HB detector is
// off; every use site carries its own `ordering:` justification).
#[cfg(not(feature = "check-hb"))]
pub const CLAIM_ORDERING: Ordering = Ordering::Relaxed;

/// A sparse vector clock: sorted `(tid, clk)` pairs, absent tids implicitly
/// zero. `clk` values come from [`fork`]/release bumps on the owning thread.
#[cfg(feature = "check-hb")]
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    entries: Vec<(u32, u64)>,
}

#[cfg(feature = "check-hb")]
impl VClock {
    pub fn new() -> VClock {
        VClock::default()
    }

    /// This clock's component for `tid` (0 if absent).
    pub fn get(&self, tid: u32) -> u64 {
        match self.entries.binary_search_by_key(&tid, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Raises the `tid` component to at least `clk`.
    pub fn set_max(&mut self, tid: u32, clk: u64) {
        match self.entries.binary_search_by_key(&tid, |e| e.0) {
            Ok(i) => {
                if self.entries[i].1 < clk {
                    self.entries[i].1 = clk;
                }
            }
            Err(i) => self.entries.insert(i, (tid, clk)),
        }
    }

    fn bump(&mut self, tid: u32) {
        match self.entries.binary_search_by_key(&tid, |e| e.0) {
            Ok(i) => self.entries[i].1 += 1,
            Err(i) => self.entries.insert(i, (tid, 1)),
        }
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        for &(tid, clk) in &other.entries {
            self.set_max(tid, clk);
        }
    }

    /// True when the epoch `(tid, clk)` happened-before (or at) this clock —
    /// i.e. `clk <= self[tid]`.
    pub fn covers(&self, tid: u32, clk: u64) -> bool {
        clk <= self.get(tid)
    }

    /// The `(tid, clk)` components, ascending by tid.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Human form for race reports: `{t1@3, t4@17}`.
    pub fn render(&self) -> String {
        let mut s = String::from("{");
        for (k, &(tid, clk)) in self.entries.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("t{tid}@{clk}"));
        }
        s.push('}');
        s
    }
}

/// Monotonic source of detector thread ids; 0 is reserved for "nobody".
#[cfg(feature = "check-hb")]
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

#[cfg(feature = "check-hb")]
struct ThreadHb {
    tid: u32,
    clock: VClock,
}

#[cfg(feature = "check-hb")]
impl ThreadHb {
    fn fresh() -> ThreadHb {
        // ordering: relaxed (unique-id counter — only atomicity matters).
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let mut clock = VClock::new();
        clock.set_max(tid, 1);
        ThreadHb { tid, clock }
    }
}

#[cfg(feature = "check-hb")]
thread_local! {
    /// This OS thread's detector identity and vector clock, assigned on
    /// first use and kept for the thread's lifetime.
    static THREAD_HB: RefCell<ThreadHb> = RefCell::new(ThreadHb::fresh());
}

/// This thread's detector id (stable for the OS thread's lifetime).
#[cfg(feature = "check-hb")]
pub fn my_tid() -> u32 {
    THREAD_HB.with(|h| h.borrow().tid)
}

/// This thread's current epoch `(tid, clock[tid])` — the value shadow state
/// records for an access happening now.
#[cfg(feature = "check-hb")]
pub fn my_epoch() -> (u32, u64) {
    THREAD_HB.with(|h| {
        let h = h.borrow();
        (h.tid, h.clock.get(h.tid))
    })
}

/// A snapshot of this thread's full vector clock (for race reports).
#[cfg(feature = "check-hb")]
pub fn my_clock() -> VClock {
    THREAD_HB.with(|h| h.borrow().clock.clone())
}

/// True when the recorded epoch `(tid, clk)` happened-before this thread's
/// present — the core ordering test of the detector.
#[cfg(feature = "check-hb")]
pub fn clock_covers(tid: u32, clk: u64) -> bool {
    THREAD_HB.with(|h| h.borrow().clock.covers(tid, clk))
}

/// Spawn edge, caller side: snapshots the caller's clock for the spawned
/// task and bumps the caller, so the caller's *later* events are unordered
/// with the task.
#[cfg(feature = "check-hb")]
pub fn fork() -> VClock {
    THREAD_HB.with(|h| {
        let mut h = h.borrow_mut();
        let snap = h.clock.clone();
        let tid = h.tid;
        h.clock.bump(tid);
        snap
    })
}

/// Spawn edge, task side: joins the spawner's snapshot into this thread's
/// clock before the task body runs.
#[cfg(feature = "check-hb")]
pub fn adopt(snapshot: &VClock) {
    THREAD_HB.with(|h| h.borrow_mut().clock.join(snapshot));
}

/// A mutex-guarded clock accumulator modeling one synchronization object
/// (a scope's join latch, a barrier generation, a claim cursor).
#[cfg(feature = "check-hb")]
pub struct SyncClock {
    inner: Mutex<VClock>,
}

#[cfg(feature = "check-hb")]
impl Default for SyncClock {
    fn default() -> Self {
        SyncClock::new()
    }
}

#[cfg(feature = "check-hb")]
impl SyncClock {
    pub fn new() -> SyncClock {
        SyncClock { inner: Mutex::new(VClock::new()) }
    }

    /// Release edge: publishes this thread's clock into the object
    /// (`m ⊔= C`), then bumps the thread so later events are not covered by
    /// the published snapshot.
    pub fn release(&self) {
        THREAD_HB.with(|h| {
            let mut h = h.borrow_mut();
            self.inner.lock().unwrap().join(&h.clock);
            let tid = h.tid;
            h.clock.bump(tid);
        });
    }

    /// Acquire edge: absorbs the object's clock (`C ⊔= m`).
    pub fn acquire(&self) {
        THREAD_HB.with(|h| {
            h.borrow_mut().clock.join(&self.inner.lock().unwrap());
        });
    }

    /// Combined acquire+release for an RMW site (claim cursors): absorbs the
    /// object, publishes back, bumps — one atomic exchange of orderings
    /// under the object's lock.
    pub fn rel_acq(&self) {
        THREAD_HB.with(|h| {
            let mut h = h.borrow_mut();
            let mut m = self.inner.lock().unwrap();
            h.clock.join(&m);
            m.join(&h.clock);
            let tid = h.tid;
            h.clock.bump(tid);
        });
    }
}

#[cfg(all(test, feature = "check-hb"))]
mod tests {
    use super::*;

    #[test]
    fn vclock_join_and_covers() {
        let mut a = VClock::new();
        a.set_max(1, 5);
        a.set_max(3, 2);
        let mut b = VClock::new();
        b.set_max(1, 3);
        b.set_max(2, 7);
        b.join(&a);
        assert_eq!(b.get(1), 5);
        assert_eq!(b.get(2), 7);
        assert_eq!(b.get(3), 2);
        assert!(b.covers(1, 5));
        assert!(!b.covers(1, 6));
        assert!(b.covers(9, 0));
        assert_eq!(b.render(), "{t1@5, t2@7, t3@2}");
    }

    #[test]
    fn fork_unorders_later_events() {
        let snap = fork();
        let (tid, now) = my_epoch();
        // The snapshot covers everything before the fork but not the
        // bumped present.
        assert!(snap.covers(tid, now - 1));
        assert!(!snap.covers(tid, now));
    }

    #[test]
    fn release_acquire_transfers_order() {
        use std::sync::Arc;
        let sc = Arc::new(SyncClock::new());
        let (me, before) = my_epoch();
        sc.release();
        // `before` is the epoch the release published; the bump moved us on.
        assert_eq!(my_epoch().1, before + 1);
        let sc2 = Arc::clone(&sc);
        let (saw_before, saw_after) = std::thread::spawn(move || {
            let unseen = clock_covers(me, before);
            sc2.acquire();
            (unseen, clock_covers(me, before))
        })
        .join()
        .unwrap();
        assert!(!saw_before, "a fresh thread must not cover a foreign epoch");
        assert!(saw_after, "acquire must absorb the released epoch");
    }

    #[test]
    fn rel_acq_orders_successive_claimants() {
        use std::sync::Arc;
        let sc = Arc::new(SyncClock::new());
        let (me, before) = my_epoch();
        sc.rel_acq();
        let sc2 = Arc::clone(&sc);
        let covered = std::thread::spawn(move || {
            sc2.rel_acq();
            clock_covers(me, before)
        })
        .join()
        .unwrap();
        assert!(covered, "a later claimant must cover an earlier claimant's past");
    }
}
