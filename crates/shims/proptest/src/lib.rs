//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of the proptest 1.x API its tests use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range, tuple, [`Just`], [`collection::vec`] and [`any`] strategies,
//!   plus [`Strategy::prop_map`],
//! * [`ProptestConfig::with_cases`] and the `PROPTEST_CASES` env override.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (stable across runs, so failures reproduce), there is **no
//! shrinking** (the failing inputs are printed verbatim), and
//! `proptest-regressions` files are not replayed — known regressions should
//! be pinned as explicit unit tests instead.

use std::fmt;

// ---------------------------------------------------------------------------
// RNG (self-contained xoshiro256++, SplitMix64-seeded)
// ---------------------------------------------------------------------------

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeded from the test name and case index, so every run of a given
    /// test replays the same case sequence.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of test values. Unlike upstream there is no value tree /
/// shrinking; a strategy just produces values.
pub trait Strategy {
    type Value: fmt::Debug;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy (parity with upstream's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe façade used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_gen(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.dyn_gen(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`]: a dependent second stage whose
/// strategy is derived from the first stage's value.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.inner.gen(rng);
        (self.f)(first).gen(rng)
    }
}

/// Output of [`Strategy::prop_filter`]. Rejection-samples up to a bound.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.whence);
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.uniform_u64(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo + (rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// ---------------------------------------------------------------------------
// `any` / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_f64() as f32
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        char::from_u32(rng.uniform_u64(0, 0xD800) as u32).unwrap_or('?')
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Length specification accepted by [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.gen(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Failure raised by `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Parity with upstream's `TestCaseError::Reject`.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one proptest-generated test function. `f` returns the formatted
/// inputs of the case plus its outcome (assertion failures and panics both
/// surface as `Err`).
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    for case in 0..cases {
        let mut rng = TestRng::deterministic(name, case);
        let (inputs, outcome) = f(&mut rng);
        if let Err(e) = outcome {
            panic!(
                "proptest '{name}' failed at case {case}/{cases} (no shrinking in this offline stand-in)\n  inputs: {inputs}\n  {e}"
            );
        }
    }
}

/// Converts a caught panic payload to a readable message.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}",
                file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}: {}",
                file!(), line!(), l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed at {}:{}: both {:?}",
                file!(),
                line!(),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::gen(&($strat), __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ));
                    let __flat = match __outcome {
                        ::std::result::Result::Ok(r) => r,
                        ::std::result::Result::Err(p) => ::std::result::Result::Err(
                            $crate::TestCaseError::fail($crate::panic_message(p)),
                        ),
                    };
                    (__inputs, __flat)
                });
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Mirrors upstream's `prelude::prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t", 0);
        for _ in 0..200 {
            let v = Strategy::gen(&(1usize..5, 0u32..10), &mut rng);
            assert!((1..5).contains(&v.0) && v.1 < 10);
        }
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = TestRng::deterministic("t2", 1);
        let s = crate::collection::vec(0u32..100, 3..7);
        for _ in 0..100 {
            let v = Strategy::gen(&s, &mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic("t3", 2);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(Strategy::gen(&s, &mut rng) % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("same", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("same", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(x in 0u32..50, v in prop::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'failing_inner' failed")]
    fn failing_case_reports_inputs() {
        // Hand-expanded single-case runner that always fails.
        crate::run_proptest(ProptestConfig::with_cases(1), "failing_inner", |rng| {
            let x = Strategy::gen(&(0u32..10), rng);
            (format!("x = {x:?}"), Err(TestCaseError::fail("boom")))
        });
    }
}
