//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion's API its benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, `measurement_time`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock loop: warm-up, iteration-count
//! calibration, then `sample_size` timed samples whose mean/min/max are
//! printed per bench. There are no saved baselines, HTML reports, or
//! statistical regression tests. When invoked with `--test` (as
//! `cargo test --benches` does), each bench body runs exactly once so the
//! suite stays fast.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("\n== group: {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of related benches sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one(&self, id: &str, mut body: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        body(&mut bencher);
        if self.criterion.test_mode {
            return;
        }
        let label =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{id}", self.name) };
        bencher.report(&label, self.throughput);
    }
}

/// Timing harness passed to each bench closure.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration samples for the enclosing group to
    /// report. In `--test` mode runs the body once and returns.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up and iteration-count calibration: target each sample at
        // measurement_time / sample_size.
        let warmup = Duration::from_millis(300).min(self.measurement_time / 4);
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let sample_target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_target / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    /// `iter_with_large_drop` parity: identical to [`Self::iter`] here.
    pub fn iter_with_large_drop<O, F>(&mut self, f: F)
    where
        F: FnMut() -> O,
    {
        self.iter(f);
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let min = self.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        let thrpt = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {}/s", si(n as f64 / (mean * 1e-9)))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {}B/s", si(n as f64 / (mean * 1e-9)))
            }
            None => String::new(),
        };
        println!("{label:<40} time: [{} {} {}]{thrpt}", fmt_ns(min), fmt_ns(mean), fmt_ns(max));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 64).id, "build/64");
        assert_eq!(BenchmarkId::from_parameter("HiPa").id, "HiPa");
    }

    #[test]
    fn bench_runs_body() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("x", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn timed_mode_produces_samples() {
        let mut b = Bencher {
            test_mode: false,
            measurement_time: Duration::from_millis(50),
            sample_size: 5,
            samples_ns: Vec::new(),
        };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }
}
