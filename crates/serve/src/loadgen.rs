//! Deterministic open-loop load generator for the rank server.
//!
//! Simulated users submit requests on a seeded arrival schedule
//! (exponential inter-arrival gaps) *without waiting for responses* — the
//! open-loop discipline — and collect their tickets at the end, so measured
//! latency includes queue wait under the offered load, not just service
//! time. Request content is a pure function of `(seed, user, request
//! index)`: two runs with the same config offer byte-identical request
//! streams, which is what makes serve censuses and determinism tests
//! reproducible.

use crate::server::{Request, Response, Server};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Simulated users (client threads submitting concurrently).
    pub users: usize,
    /// Requests each user submits.
    pub requests_per_user: usize,
    /// Master seed; user `u` derives its stream from `seed ^ u`.
    pub seed: u64,
    /// Request-mix weights (top-k lookups : personalized PageRank : edge
    /// updates). Zero disables a class.
    pub mix: (u32, u32, u32),
    /// `k` for top-k and PPR responses.
    pub topk: usize,
    /// PPR source-set size range `1..=max`.
    pub ppr_sources_max: usize,
    /// Probability a PPR request carries an intentionally invalid seed
    /// (exercises the error path; the server must answer, not die).
    pub invalid_share: f64,
    /// Mean inter-arrival gap per user, nanoseconds (0 = submit as fast as
    /// possible).
    pub mean_gap_ns: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            users: 8,
            requests_per_user: 32,
            seed: 42,
            mix: (90, 9, 1),
            topk: 10,
            ppr_sources_max: 3,
            invalid_share: 0.02,
            mean_gap_ns: 200_000,
        }
    }
}

/// Outcome of one load run (latency percentiles live in
/// [`Server::stats`]).
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub wall: Duration,
    pub completed: u64,
    pub errors: u64,
    pub throughput_rps: f64,
}

/// The request user `u` makes at its `i`-th step — pure function of the
/// config and `(u, i)`, shared by the load run and any replay.
pub fn request_for(cfg: &LoadConfig, num_vertices: usize, user: usize, i: usize) -> Request {
    // One RNG per (user, step): the request content is independent of how
    // many draws earlier requests consumed.
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed ^ (user as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ (i as u64) << 20,
    );
    let n = num_vertices as u32;
    let (w_topk, w_ppr, w_edges) = cfg.mix;
    let total = (w_topk + w_ppr + w_edges).max(1);
    let roll = rng.gen_range(0..total);
    if roll < w_topk {
        Request::TopK { k: cfg.topk }
    } else if roll < w_topk + w_ppr {
        let count = rng.gen_range(1..=cfg.ppr_sources_max.max(1));
        let invalid = rng.gen::<f64>() < cfg.invalid_share;
        let sources: Vec<u32> = (0..count)
            .map(|j| {
                if invalid && j == 0 {
                    n + rng.gen_range(0..10)
                } else {
                    rng.gen_range(0..n.max(1))
                }
            })
            .collect();
        Request::Ppr { sources, k: cfg.topk }
    } else {
        let count = rng.gen_range(1..=4usize);
        let edges: Vec<(u32, u32)> =
            (0..count).map(|_| (rng.gen_range(0..n.max(1)), rng.gen_range(0..n.max(1)))).collect();
        Request::AddEdges { edges }
    }
}

/// Runs the seeded open-loop load against `server` and waits for every
/// response. Latency histograms and queue gauges accumulate in
/// `server.stats()`.
///
/// User jobs run on a *dedicated* shim pool sized to `users` (not bare
/// `std::thread`, so the check-hb vector clocks cover them — audit rule 6;
/// and not the global pool, where jobs parked in `Ticket::wait` could
/// starve whatever else shares it). Width == job count, so every simulated
/// user still submits concurrently.
pub fn run_load(server: &Server, cfg: &LoadConfig) -> LoadReport {
    let n = server.num_vertices();
    let t0 = Instant::now();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(cfg.users.max(1))
        .build()
        .expect("build load-generator pool");
    let completed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    pool.scope(|scope| {
        for user in 0..cfg.users {
            let (completed, errors) = (&completed, &errors);
            scope.spawn(move |_| {
                let mut gap_rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(user as u64));
                let mut tickets = Vec::with_capacity(cfg.requests_per_user);
                for i in 0..cfg.requests_per_user {
                    if cfg.mean_gap_ns > 0 {
                        let u: f64 = gap_rng.gen();
                        let gap = (-(1.0 - u).ln() * cfg.mean_gap_ns as f64) as u64;
                        std::thread::sleep(Duration::from_nanos(gap));
                    }
                    tickets.push(server.submit(request_for(cfg, n, user, i)));
                }
                let mut done = 0u64;
                let mut errs = 0u64;
                for t in tickets {
                    match t.wait() {
                        Response::Error { .. } => {
                            done += 1;
                            errs += 1;
                        }
                        _ => done += 1,
                    }
                }
                // ordering: relaxed (per-user tallies; the pool-scope join
                // publishes them before the loads below).
                completed.fetch_add(done, Ordering::Relaxed);
                errors.fetch_add(errs, Ordering::Relaxed); // ordering: as above
            });
        }
    });
    // ordering: relaxed (read after the scope join — no writers left).
    let (completed, errors) = (completed.load(Ordering::Relaxed), errors.load(Ordering::Relaxed));
    let wall = t0.elapsed();
    let secs = wall.as_secs_f64();
    LoadReport {
        wall,
        completed,
        errors,
        throughput_rps: if secs > 0.0 { completed as f64 / secs } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use hipa_graph::gen::cycle;

    #[test]
    fn request_streams_are_deterministic() {
        let cfg = LoadConfig::default();
        for user in 0..3 {
            for i in 0..5 {
                let a = format!("{:?}", request_for(&cfg, 100, user, i));
                let b = format!("{:?}", request_for(&cfg, 100, user, i));
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn load_run_completes_every_request() {
        let server = Server::start(
            cycle(64),
            ServeConfig { threads: 2, verts_per_partition: 16, ..Default::default() },
        );
        let cfg = LoadConfig {
            users: 4,
            requests_per_user: 10,
            mean_gap_ns: 1_000,
            ..Default::default()
        };
        let report = run_load(&server, &cfg);
        assert_eq!(report.completed, 40);
        assert_eq!(server.stats().total_served(), 40);
        assert!(server.stats().queue_depth.count() > 0, "drains must be observed");
    }
}
