//! The resident rank server: one scheduler thread, an admission queue, and
//! one immutable preprocessed state per graph epoch.
//!
//! Requests enter through [`Server::submit`] (any thread) and park on a
//! ticket; the scheduler drains the queue in arrival order, answers top-k
//! lookups from the resident global ranks, groups personalized-PageRank
//! source sets into **one multi-vector partition-centric sweep** per batch
//! chunk (amortizing the graph pass across the whole batch), and commits
//! streamed edge updates as a *delta epoch* only after every read drained in
//! the same cycle has been answered — readers never observe a half-updated
//! graph. Invalid user input (out-of-range seeds or endpoints) produces an
//! error response instead of killing the server.

use crate::sampler::{SampleFrame, SamplerConfig};
use crate::stats::ServeStats;
use hipa_algos::{
    pagerank_delta, teleport_from_seeds, PersonalizedConfig, PprSolver, PrDeltaConfig,
};
use hipa_core::PcpmPrepared;
use hipa_graph::{DiGraph, EdgeList};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads of the resident sweep pool.
    pub threads: usize,
    /// Partition size (vertices) of the resident layout.
    pub verts_per_partition: usize,
    /// Maximum personalized-PageRank source sets advanced through one
    /// multi-vector sweep.
    pub batch_max: usize,
    /// Iteration schedule for personalized PageRank (threads / partition
    /// size are taken from the resident state, not from here).
    pub ppr: PersonalizedConfig,
    /// PageRank-Delta parameters for the global ranks and epoch re-ranks.
    pub delta: PrDeltaConfig,
    /// Background health sampler; `None` (the default) spawns no thread.
    pub sampler: Option<SamplerConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            verts_per_partition: 16 * 1024,
            batch_max: 32,
            ppr: PersonalizedConfig::default(),
            delta: PrDeltaConfig::default(),
            sampler: None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// The `k` highest globally-ranked vertices.
    TopK { k: usize },
    /// Personalized PageRank from a user source set; responds with the `k`
    /// highest personalized ranks.
    Ppr { sources: Vec<u32>, k: usize },
    /// Stream new edges in; committed at the next delta epoch.
    AddEdges { edges: Vec<(u32, u32)> },
}

/// The server's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    TopK {
        entries: Vec<(u32, f32)>,
        epoch: u64,
    },
    Ppr {
        top: Vec<(u32, f32)>,
        iterations: usize,
        converged: bool,
        epoch: u64,
    },
    /// Edges accepted and visible: `epoch` is the first epoch whose ranks
    /// include them.
    EdgesCommitted {
        accepted: usize,
        epoch: u64,
    },
    /// Invalid request input; the server keeps running.
    Error {
        message: String,
    },
}

struct TicketInner {
    slot: Mutex<Option<Response>>,
    cv: Condvar,
}

/// A pending response; blocks on [`wait`](Ticket::wait).
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    /// Blocks until the scheduler answers.
    pub fn wait(self) -> Response {
        let mut slot = self.0.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.0.cv.wait(slot).unwrap();
        }
        slot.take().expect("response present")
    }
}

struct Pending {
    req: Request,
    ticket: Arc<TicketInner>,
    submitted: Instant,
}

struct QueueState {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    stats: ServeStats,
}

/// The resident rank server. Construct with [`Server::start`]; submit from
/// any number of client threads; drop (or [`shutdown`](Server::shutdown))
/// to drain and join the scheduler.
pub struct Server {
    shared: Arc<Shared>,
    num_vertices: usize,
    scheduler: Option<std::thread::JoinHandle<()>>,
    sampler: Option<(Arc<SamplerCtl>, std::thread::JoinHandle<()>)>,
}

/// Stop signal for the sampler thread: a flag under a mutex plus a condvar
/// so shutdown interrupts the inter-tick sleep promptly instead of waiting
/// out the interval.
struct SamplerCtl {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// Snapshot of a [`DiGraph`]'s edges as an [`EdgeList`] (CSR order) — the
/// form [`Server::start`] consumes, since the server needs to extend the
/// edge set at delta epochs.
pub fn edge_list_of(g: &DiGraph) -> EdgeList {
    let mut edges = EdgeList::new(g.num_vertices(), Vec::new());
    for (s, d) in g.out_csr().iter_edges() {
        edges.push(s, d);
    }
    edges
}

/// Indices of the `k` highest-ranked vertices, descending, ties by index —
/// same contract as the facade crate's `top_k`.
fn top_k(ranks: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut idx: Vec<u32> = (0..ranks.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        ranks[b as usize].partial_cmp(&ranks[a as usize]).unwrap().then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.into_iter().map(|v| (v, ranks[v as usize])).collect()
}

/// Everything the scheduler owns for one graph epoch.
struct EpochState {
    edges: EdgeList,
    solver: PprSolver,
    ranks: Vec<f32>,
    epoch: u64,
}

impl EpochState {
    fn build(edges: EdgeList, cfg: &ServeConfig, epoch: u64) -> EpochState {
        let g = DiGraph::from_edge_list(&edges);
        let prepared = Arc::new(PcpmPrepared::build(&g, cfg.threads, cfg.verts_per_partition));
        let solver = PprSolver::from_prepared(prepared, &cfg.ppr);
        let ranks = pagerank_delta(&g, &cfg.delta).ranks;
        EpochState { edges, solver, ranks, epoch }
    }
}

impl Server {
    /// Builds the resident state (one layout build, one converged global
    /// rank vector, one worker pool) and starts the scheduler thread.
    pub fn start(edges: EdgeList, cfg: ServeConfig) -> Server {
        let num_vertices = edges.num_vertices();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { pending: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            stats: ServeStats::default(),
        });
        let sampler = cfg.sampler.clone().map(|scfg| {
            let ctl = Arc::new(SamplerCtl { stop: Mutex::new(false), cv: Condvar::new() });
            let (shared, ctl2) = (Arc::clone(&shared), Arc::clone(&ctl));
            let handle = std::thread::Builder::new()
                .name("hipa-serve-sampler".to_string())
                .spawn(move || sampler_loop(shared, ctl2, scfg))
                .expect("spawn sampler");
            (ctl, handle)
        });
        let shared2 = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("hipa-serve-scheduler".to_string())
            .spawn(move || scheduler_loop(shared2, edges, cfg))
            .expect("spawn scheduler");
        Server { shared, num_vertices, scheduler: Some(scheduler), sampler }
    }

    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Enqueues a request; returns immediately with a [`Ticket`].
    pub fn submit(&self, req: Request) -> Ticket {
        let ticket = Arc::new(TicketInner { slot: Mutex::new(None), cv: Condvar::new() });
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.pending.push_back(Pending {
                req,
                ticket: Arc::clone(&ticket),
                submitted: Instant::now(),
            });
        }
        self.shared.cv.notify_all();
        Ticket(ticket)
    }

    /// Submit and block for the response.
    pub fn call(&self, req: Request) -> Response {
        self.submit(req).wait()
    }

    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Stops accepting work after the queue drains and joins the scheduler.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(handle) = self.scheduler.take() {
            {
                let mut q = self.shared.queue.lock().unwrap();
                q.shutdown = true;
            }
            self.shared.cv.notify_all();
            let _ = handle.join();
        }
        // Stop the sampler after the scheduler drains so the final frame
        // sees the fully-served totals.
        if let Some((ctl, handle)) = self.sampler.take() {
            *ctl.stop.lock().unwrap() = true;
            ctl.cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn respond(
    shared: &Shared,
    pend: Pending,
    resp: Response,
    hist: fn(&ServeStats) -> &hipa_obs::Histogram,
) {
    if matches!(resp, Response::Error { .. }) {
        shared.stats.errors.incr();
    }
    hist(&shared.stats).record(pend.submitted.elapsed().as_nanos() as u64);
    let mut slot = pend.ticket.slot.lock().unwrap();
    *slot = Some(resp);
    pend.ticket.cv.notify_all();
}

fn scheduler_loop(shared: Arc<Shared>, edges: EdgeList, cfg: ServeConfig) {
    let n = edges.num_vertices();
    let mut state = EpochState::build(edges, &cfg, 0);
    loop {
        // Admission: wait for work, then drain the whole queue in arrival
        // order. One drain = one scheduling cycle.
        let batch: Vec<Pending> = {
            let mut q = shared.queue.lock().unwrap();
            while q.pending.is_empty() && !q.shutdown {
                q = shared.cv.wait(q).unwrap();
            }
            if q.pending.is_empty() && q.shutdown {
                return;
            }
            q.pending.drain(..).collect()
        };
        shared.stats.observe_queue_depth(batch.len() as u64);

        // Classify: reads are answered (or batched) now; edge updates are
        // deferred to the end of the cycle so every read drained alongside
        // them still sees the pre-update epoch — "reads drained between
        // delta epochs".
        let mut ppr_batch: Vec<(Pending, Vec<f32>, usize)> = Vec::new();
        let mut edge_updates: Vec<(Pending, Vec<(u32, u32)>)> = Vec::new();
        for pend in batch {
            match pend.req.clone() {
                Request::TopK { k } => {
                    shared.stats.topk_served.incr();
                    let resp =
                        Response::TopK { entries: top_k(&state.ranks, k), epoch: state.epoch };
                    respond(&shared, pend, resp, |s| &s.topk_latency);
                }
                Request::Ppr { sources, k } => match teleport_from_seeds(n, &sources) {
                    Ok(teleport) => ppr_batch.push((pend, teleport, k)),
                    Err(message) => {
                        shared.stats.ppr_served.incr();
                        respond(&shared, pend, Response::Error { message }, |s| &s.ppr_latency);
                    }
                },
                Request::AddEdges { edges } => {
                    if let Some(&(s, d)) =
                        edges.iter().find(|&&(s, d)| s as usize >= n || d as usize >= n)
                    {
                        shared.stats.edges_served.incr();
                        let message =
                            format!("edge ({s}, {d}) out of range: graph has {n} vertices");
                        respond(&shared, pend, Response::Error { message }, |s| &s.edges_latency);
                    } else {
                        edge_updates.push((pend, edges));
                    }
                }
            }
        }

        // Batched personalized PageRank: up to `batch_max` source sets per
        // multi-vector sweep. Batch composition cannot change any result —
        // each batch member is bitwise-equal to a solo solve.
        let mut ppr_batch = VecDeque::from(ppr_batch);
        while !ppr_batch.is_empty() {
            let take = cfg.batch_max.max(1).min(ppr_batch.len());
            let mut pends = Vec::with_capacity(take);
            let mut teleports = Vec::with_capacity(take);
            for (pend, teleport, k) in ppr_batch.drain(..take) {
                pends.push((pend, k));
                teleports.push(teleport);
            }
            let results = state.solver.solve_batch(&teleports);
            shared.stats.ppr_batches.incr();
            shared.stats.ppr_batched_sources.add(pends.len() as u64);
            for ((pend, k), res) in pends.into_iter().zip(results) {
                shared.stats.ppr_served.incr();
                let resp = Response::Ppr {
                    top: top_k(&res.ranks, k),
                    iterations: res.iterations_run,
                    converged: res.converged,
                    epoch: state.epoch,
                };
                respond(&shared, pend, resp, |s| &s.ppr_latency);
            }
        }

        // Delta epoch: all reads of this cycle are answered; commit the
        // streamed edges, rebuild the resident state, re-rank via
        // PageRank-Delta, then acknowledge the writers with the new epoch.
        if !edge_updates.is_empty() {
            let mut edges = state.edges.clone();
            let mut accepted = Vec::with_capacity(edge_updates.len());
            for (_, batch_edges) in &edge_updates {
                for &(s, d) in batch_edges {
                    edges.push(s, d);
                }
                accepted.push(batch_edges.len());
            }
            state = EpochState::build(edges, &cfg, state.epoch + 1);
            shared.stats.epochs.incr();
            for ((pend, _), accepted) in edge_updates.into_iter().zip(accepted) {
                shared.stats.edges_served.incr();
                let resp = Response::EdgesCommitted { accepted, epoch: state.epoch };
                respond(&shared, pend, resp, |s| &s.edges_latency);
            }
        }
    }
}

/// Background sampler: one [`SampleFrame`] per tick until told to stop,
/// plus one final frame at shutdown so even the shortest server lifetime
/// leaves a trajectory. All reads are wait-free or take the queue lock for
/// a single `len()`; a tick never blocks request processing measurably.
fn sampler_loop(shared: Arc<Shared>, ctl: Arc<SamplerCtl>, cfg: SamplerConfig) {
    let started = Instant::now();
    let mut seq = 0u64;
    let mut prev_served = 0u64;
    let mut prev_elapsed_ns = 0u64;
    let tick = |seq: u64, prev_served: &mut u64, prev_elapsed_ns: &mut u64| {
        let queue_depth = shared.queue.lock().unwrap().pending.len() as u64;
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let total_served = shared.stats.total_served();
        let all = shared.stats.merged_latency();
        let window_ns = elapsed_ns.saturating_sub(*prev_elapsed_ns).max(1);
        let throughput_rps =
            ((total_served - *prev_served) as f64 * 1e9 / window_ns as f64).round() as u64;
        let (latency_p50_ns, latency_p99_ns) =
            if all.is_empty() { (0, 0) } else { (all.quantile(0.50), all.quantile(0.99)) };
        shared.stats.push_frame(
            SampleFrame {
                seq,
                elapsed_ns,
                queue_depth,
                total_served,
                errors: shared.stats.errors.get(),
                latency_p50_ns,
                latency_p99_ns,
                throughput_rps,
            },
            cfg.capacity,
        );
        *prev_served = total_served;
        *prev_elapsed_ns = elapsed_ns;
        if let Some(path) = &cfg.expo_path {
            // Sampling must never take the server down; drop write errors.
            let _ = std::fs::write(
                path,
                shared.stats.render_exposition(queue_depth, started.elapsed()),
            );
        }
    };
    loop {
        {
            let mut stop = ctl.stop.lock().unwrap();
            while !*stop {
                let (guard, timeout) = ctl.cv.wait_timeout(stop, cfg.interval).unwrap();
                stop = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if *stop {
                break;
            }
        }
        tick(seq, &mut prev_served, &mut prev_elapsed_ns);
        seq += 1;
    }
    // Final frame: totals after the scheduler drained.
    tick(seq, &mut prev_served, &mut prev_elapsed_ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_graph::gen::cycle;

    fn small_cfg() -> ServeConfig {
        ServeConfig { threads: 2, verts_per_partition: 64, ..Default::default() }
    }

    #[test]
    fn topk_matches_global_ranks() {
        let edges = edge_list_of(&hipa_graph::datasets::small_test_graph(140));
        let g = DiGraph::from_edge_list(&edges);
        let cfg = small_cfg();
        let want = top_k(&pagerank_delta(&g, &cfg.delta).ranks, 5);
        let server = Server::start(edges, cfg);
        match server.call(Request::TopK { k: 5 }) {
            Response::TopK { entries, epoch } => {
                assert_eq!(entries, want);
                assert_eq!(epoch, 0);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn invalid_seed_gets_error_and_server_survives() {
        let edges = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let server = Server::start(edges, small_cfg());
        match server.call(Request::Ppr { sources: vec![99], k: 3 }) {
            Response::Error { message } => assert!(message.contains("out of range"), "{message}"),
            other => panic!("unexpected response {other:?}"),
        }
        // The server is still alive and serving.
        match server.call(Request::Ppr { sources: vec![0], k: 3 }) {
            Response::Ppr { top, .. } => assert_eq!(top.len(), 3),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(server.stats().errors.get(), 1);
    }

    #[test]
    fn edge_commit_advances_epoch_and_reranks() {
        let edges = cycle(6);
        let cfg = small_cfg();
        let server = Server::start(edges.clone(), cfg.clone());
        let before = match server.call(Request::TopK { k: 6 }) {
            Response::TopK { entries, epoch } => {
                assert_eq!(epoch, 0);
                entries
            }
            other => panic!("unexpected response {other:?}"),
        };
        match server.call(Request::AddEdges { edges: vec![(0, 3), (1, 3)] }) {
            Response::EdgesCommitted { accepted, epoch } => {
                assert_eq!(accepted, 2);
                assert_eq!(epoch, 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Post-epoch ranks equal a from-scratch delta run on the grown graph.
        let mut grown = edges;
        grown.push(0, 3);
        grown.push(1, 3);
        let want = top_k(&pagerank_delta(&DiGraph::from_edge_list(&grown), &cfg.delta).ranks, 6);
        match server.call(Request::TopK { k: 6 }) {
            Response::TopK { entries, epoch } => {
                assert_eq!(epoch, 1);
                assert_eq!(entries, want);
                assert_ne!(entries, before, "re-rank must reflect the new edges");
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Out-of-range endpoints are rejected without dying.
        match server.call(Request::AddEdges { edges: vec![(0, 99)] }) {
            Response::Error { message } => assert!(message.contains("out of range")),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn sampler_records_frames_and_exposition() {
        let edges = edge_list_of(&hipa_graph::datasets::small_test_graph(141));
        let expo = std::env::temp_dir().join("hipa_serve_sampler_test.prom");
        let _ = std::fs::remove_file(&expo);
        let cfg = ServeConfig {
            sampler: Some(SamplerConfig {
                interval: std::time::Duration::from_millis(5),
                capacity: 4,
                expo_path: Some(expo.clone()),
            }),
            ..small_cfg()
        };
        let server = Server::start(edges, cfg);
        for _ in 0..20 {
            assert!(matches!(server.call(Request::TopK { k: 3 }), Response::TopK { .. }));
        }
        let shared = Arc::clone(&server.shared);
        server.shutdown();

        let frames = shared.stats.frames();
        // At least the final shutdown frame is always present, and the ring
        // stays at its bound no matter how many ticks ran.
        assert!(!frames.is_empty());
        assert!(frames.len() <= 4, "ring must stay bounded, got {}", frames.len());
        // seq is monotone even across eviction.
        for w in frames.windows(2) {
            assert!(w[1].seq > w[0].seq);
        }
        let last = frames.last().unwrap();
        assert_eq!(last.total_served, 20);
        assert_eq!(last.errors, 0);
        assert!(last.latency_p99_ns >= last.latency_p50_ns);

        let text = std::fs::read_to_string(&expo).expect("exposition file written");
        assert!(text.contains("hipa_serve_requests_total 20"), "{text}");
        assert!(text.contains("hipa_serve_served_total{class=\"topk\"} 20"), "{text}");
        assert!(text.contains("hipa_serve_latency_ns{class=\"all\",quantile=\"0.99\"}"), "{text}");
        let _ = std::fs::remove_file(&expo);
    }

    #[test]
    fn shutdown_drains_cleanly() {
        let edges = cycle(8);
        let server = Server::start(edges, small_cfg());
        let tickets: Vec<Ticket> = (0..10).map(|_| server.submit(Request::TopK { k: 2 })).collect();
        for t in tickets {
            assert!(matches!(t.wait(), Response::TopK { .. }));
        }
        server.shutdown();
    }
}
