//! Live serve sampling: a background thread snapshots the server's health
//! at a fixed interval into a bounded time-series ring.
//!
//! [`ServeStats`](crate::ServeStats) accumulates *totals* over a server's
//! whole lifetime; operators of a long-running `hipa-serve` want the
//! *trajectory* — queue depth right now, throughput over the last tick,
//! latency quantiles as they move. Each tick the sampler reads the
//! admission queue depth, merges the three per-class latency histograms
//! into one ([`hipa_obs::Histogram::merge`] — wait-free, no recording
//! pauses), and pushes a [`SampleFrame`] into a bounded ring (oldest frame
//! evicted). Optionally it rewrites a plain-text exposition file
//! ([`crate::ServeStats::render_exposition`]) for scraping with standard
//! tooling.
//!
//! Frames export into the `RunTrace` as `sampler.*` metric series —
//! advisory under the perf-gate policy, since every field follows the host
//! clock and scheduler.

use std::path::PathBuf;
use std::time::Duration;

/// Background-sampler knobs ([`crate::ServeConfig::sampler`]; `None`
/// disables sampling entirely — no thread, no overhead).
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Tick period.
    pub interval: Duration,
    /// Ring capacity in frames; the oldest frame is evicted at the cap, so
    /// memory stays bounded however long the server runs.
    pub capacity: usize,
    /// When set, each tick rewrites this file with the plain-text metric
    /// exposition (write errors are ignored — sampling must never take the
    /// server down).
    pub expo_path: Option<PathBuf>,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig { interval: Duration::from_millis(50), capacity: 256, expo_path: None }
    }
}

/// One tick of the sampler: a point-in-time view of server health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleFrame {
    /// Tick number, 0-based, monotone even after ring eviction.
    pub seq: u64,
    /// Nanoseconds since the sampler started.
    pub elapsed_ns: u64,
    /// Admission-queue depth at the tick.
    pub queue_depth: u64,
    /// Lifetime requests served as of the tick.
    pub total_served: u64,
    /// Lifetime error responses as of the tick.
    pub errors: u64,
    /// All-class latency quantiles as of the tick (merged histogram).
    pub latency_p50_ns: u64,
    pub latency_p99_ns: u64,
    /// Requests served since the previous tick, scaled to per-second.
    pub throughput_rps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off_by_default_in_serve_config() {
        assert!(crate::ServeConfig::default().sampler.is_none());
        let s = SamplerConfig::default();
        assert!(s.capacity > 0);
        assert!(s.interval > Duration::ZERO);
        assert!(s.expo_path.is_none());
    }
}
