//! Serve-side metrics: per-class latency histograms, request counters,
//! queue-depth gauges — all exportable into a `RunTrace` through the
//! existing `hipa-obs` recorder.

use hipa_obs::{Counter, Histogram, Recorder, RUN_LEVEL};
use std::sync::Mutex;
use std::time::Duration;

/// Shared statistics of one [`Server`](crate::Server) lifetime. Clients and
/// the scheduler record concurrently; everything is commutative counters or
/// histograms, so totals depend only on what was served, not on timing.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Request latency (submit → response), nanoseconds, per request class.
    pub topk_latency: Histogram,
    pub ppr_latency: Histogram,
    pub edges_latency: Histogram,
    /// Requests answered per class (errors count toward their class too).
    pub topk_served: Counter,
    pub ppr_served: Counter,
    pub edges_served: Counter,
    /// Requests answered with [`Response::Error`](crate::Response::Error).
    pub errors: Counter,
    /// Multi-vector PPR sweeps run (one per batch chunk).
    pub ppr_batches: Counter,
    /// PPR source-set requests that went through a batched sweep — with
    /// `ppr_batches` this gives the realized amortization factor.
    pub ppr_batched_sources: Counter,
    /// Delta re-rank epochs committed.
    pub epochs: Counter,
    /// Admission-queue depth observed at each scheduler drain.
    pub queue_depth: Histogram,
    /// The per-drain depth series, in drain order (for trace export).
    pub queue_depth_series: Mutex<Vec<u64>>,
}

impl ServeStats {
    pub fn total_served(&self) -> u64 {
        self.topk_served.get() + self.ppr_served.get() + self.edges_served.get()
    }

    /// Records one scheduler drain observing `depth` queued requests.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth.record(depth);
        self.queue_depth_series.lock().unwrap().push(depth);
    }

    /// Writes every statistic into `rec` under the `serve.` counter
    /// namespace plus a `queue.depth` metric series (dotted phases are
    /// excluded from flamegraph export by convention). `wall` is the
    /// measurement window for the throughput counter.
    pub fn export_into(&self, rec: &Recorder, wall: Duration) {
        rec.set_counter("serve.topk.served", self.topk_served.get());
        rec.set_counter("serve.ppr.served", self.ppr_served.get());
        rec.set_counter("serve.edges.served", self.edges_served.get());
        rec.set_counter("serve.errors", self.errors.get());
        rec.set_counter("serve.ppr.batches", self.ppr_batches.get());
        rec.set_counter("serve.ppr.batched_sources", self.ppr_batched_sources.get());
        rec.set_counter("serve.epochs", self.epochs.get());
        for (name, h) in [
            ("topk", &self.topk_latency),
            ("ppr", &self.ppr_latency),
            ("edges", &self.edges_latency),
        ] {
            if h.is_empty() {
                continue;
            }
            rec.set_counter(&format!("serve.{name}.p50_ns"), h.quantile(0.50));
            rec.set_counter(&format!("serve.{name}.p95_ns"), h.quantile(0.95));
            rec.set_counter(&format!("serve.{name}.p99_ns"), h.quantile(0.99));
            rec.set_counter(&format!("serve.{name}.max_ns"), h.max());
            rec.set_counter(&format!("serve.{name}.mean_ns"), h.mean());
        }
        rec.set_counter("serve.queue.max_depth", self.queue_depth.max());
        for (i, &depth) in self.queue_depth_series.lock().unwrap().iter().enumerate() {
            rec.record("queue.depth", RUN_LEVEL, i as i64, depth as f64);
        }
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            rec.set_counter(
                "serve.throughput_rps",
                (self.total_served() as f64 / secs).round() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_obs::TraceMeta;

    #[test]
    fn export_writes_the_serve_namespace() {
        let stats = ServeStats::default();
        stats.topk_served.add(10);
        stats.ppr_served.add(5);
        for i in 0..100 {
            stats.ppr_latency.record(1000 + i * 10);
        }
        stats.observe_queue_depth(3);
        stats.observe_queue_depth(7);
        let rec = Recorder::new(true);
        stats.export_into(&rec, Duration::from_secs(2));
        let trace = rec.finish(TraceMeta::default()).unwrap();
        assert_eq!(trace.counter("serve.topk.served"), Some(10));
        assert_eq!(trace.counter("serve.throughput_rps"), Some(8)); // 15 / 2s
        assert!(trace.counter("serve.ppr.p95_ns").unwrap() >= 1000);
        assert_eq!(trace.counter("serve.queue.max_depth"), Some(7));
        assert_eq!(trace.spans.iter().filter(|s| s.phase == "queue.depth").count(), 2);
    }
}
