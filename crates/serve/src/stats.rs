//! Serve-side metrics: per-class latency histograms, request counters,
//! queue-depth gauges — all exportable into a `RunTrace` through the
//! existing `hipa-obs` recorder.

use crate::sampler::SampleFrame;
use hipa_obs::{Counter, Histogram, Recorder, RUN_LEVEL};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// Shared statistics of one [`Server`](crate::Server) lifetime. Clients and
/// the scheduler record concurrently; everything is commutative counters or
/// histograms, so totals depend only on what was served, not on timing.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Request latency (submit → response), nanoseconds, per request class.
    pub topk_latency: Histogram,
    pub ppr_latency: Histogram,
    pub edges_latency: Histogram,
    /// Requests answered per class (errors count toward their class too).
    pub topk_served: Counter,
    pub ppr_served: Counter,
    pub edges_served: Counter,
    /// Requests answered with [`Response::Error`](crate::Response::Error).
    pub errors: Counter,
    /// Multi-vector PPR sweeps run (one per batch chunk).
    pub ppr_batches: Counter,
    /// PPR source-set requests that went through a batched sweep — with
    /// `ppr_batches` this gives the realized amortization factor.
    pub ppr_batched_sources: Counter,
    /// Delta re-rank epochs committed.
    pub epochs: Counter,
    /// Admission-queue depth observed at each scheduler drain.
    pub queue_depth: Histogram,
    /// The per-drain depth series, in drain order (for trace export).
    pub queue_depth_series: Mutex<Vec<u64>>,
    /// Bounded time-series ring of background-sampler ticks (empty unless
    /// [`crate::ServeConfig::sampler`] is set).
    pub sampler_frames: Mutex<VecDeque<SampleFrame>>,
}

impl ServeStats {
    pub fn total_served(&self) -> u64 {
        self.topk_served.get() + self.ppr_served.get() + self.edges_served.get()
    }

    /// Records one scheduler drain observing `depth` queued requests.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth.record(depth);
        self.queue_depth_series.lock().unwrap().push(depth);
    }

    /// Pushes one sampler tick into the ring, evicting the oldest frame at
    /// `capacity` so memory stays bounded for resident servers.
    pub fn push_frame(&self, frame: SampleFrame, capacity: usize) {
        let mut ring = self.sampler_frames.lock().unwrap();
        while ring.len() >= capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(frame);
    }

    /// Snapshot of the sampler ring, oldest first.
    pub fn frames(&self) -> Vec<SampleFrame> {
        self.sampler_frames.lock().unwrap().iter().cloned().collect()
    }

    /// All-class latency histogram: the three per-class histograms merged
    /// into a fresh one (wait-free reads; recording continues undisturbed).
    pub fn merged_latency(&self) -> Histogram {
        let all = Histogram::new();
        all.merge(&self.topk_latency);
        all.merge(&self.ppr_latency);
        all.merge(&self.edges_latency);
        all
    }

    /// Plain-text metric exposition (one `name{labels} value` line per
    /// metric, `#`-prefixed comments) — the format the sampler rewrites to
    /// [`crate::sampler::SamplerConfig::expo_path`] each tick so standard
    /// scrapers can watch a resident server.
    pub fn render_exposition(&self, queue_depth_now: u64, uptime: Duration) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# hipa-serve metrics (plain-text exposition)");
        let _ = writeln!(out, "hipa_serve_uptime_seconds {:.3}", uptime.as_secs_f64());
        let _ = writeln!(out, "hipa_serve_requests_total {}", self.total_served());
        let _ = writeln!(out, "hipa_serve_errors_total {}", self.errors.get());
        let _ = writeln!(out, "hipa_serve_epochs_total {}", self.epochs.get());
        let _ = writeln!(out, "hipa_serve_queue_depth {queue_depth_now}");
        for (class, served, h) in [
            ("topk", &self.topk_served, &self.topk_latency),
            ("ppr", &self.ppr_served, &self.ppr_latency),
            ("edges", &self.edges_served, &self.edges_latency),
        ] {
            let _ = writeln!(out, "hipa_serve_served_total{{class=\"{class}\"}} {}", served.get());
            if h.is_empty() {
                continue;
            }
            for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "hipa_serve_latency_ns{{class=\"{class}\",quantile=\"{label}\"}} {}",
                    h.quantile(q)
                );
            }
            let _ = writeln!(out, "hipa_serve_latency_ns_max{{class=\"{class}\"}} {}", h.max());
        }
        let all = self.merged_latency();
        if !all.is_empty() {
            for (q, label) in [(0.50, "0.5"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "hipa_serve_latency_ns{{class=\"all\",quantile=\"{label}\"}} {}",
                    all.quantile(q)
                );
            }
        }
        if let Some(f) = self.sampler_frames.lock().unwrap().back() {
            let _ = writeln!(out, "hipa_serve_throughput_rps {}", f.throughput_rps);
            let _ = writeln!(out, "hipa_serve_sampler_ticks_total {}", f.seq + 1);
        }
        out
    }

    /// Writes every statistic into `rec` under the `serve.` counter
    /// namespace plus a `queue.depth` metric series (dotted phases are
    /// excluded from flamegraph export by convention). `wall` is the
    /// measurement window for the throughput counter.
    pub fn export_into(&self, rec: &Recorder, wall: Duration) {
        rec.set_counter("serve.topk.served", self.topk_served.get());
        rec.set_counter("serve.ppr.served", self.ppr_served.get());
        rec.set_counter("serve.edges.served", self.edges_served.get());
        rec.set_counter("serve.errors", self.errors.get());
        rec.set_counter("serve.ppr.batches", self.ppr_batches.get());
        rec.set_counter("serve.ppr.batched_sources", self.ppr_batched_sources.get());
        rec.set_counter("serve.epochs", self.epochs.get());
        for (name, h) in [
            ("topk", &self.topk_latency),
            ("ppr", &self.ppr_latency),
            ("edges", &self.edges_latency),
        ] {
            if h.is_empty() {
                continue;
            }
            rec.set_counter(&format!("serve.{name}.p50_ns"), h.quantile(0.50));
            rec.set_counter(&format!("serve.{name}.p95_ns"), h.quantile(0.95));
            rec.set_counter(&format!("serve.{name}.p99_ns"), h.quantile(0.99));
            rec.set_counter(&format!("serve.{name}.max_ns"), h.max());
            rec.set_counter(&format!("serve.{name}.mean_ns"), h.mean());
        }
        rec.set_counter("serve.queue.max_depth", self.queue_depth.max());
        for (i, &depth) in self.queue_depth_series.lock().unwrap().iter().enumerate() {
            rec.record("queue.depth", RUN_LEVEL, i as i64, depth as f64);
        }
        // Background-sampler trajectory: dotted `sampler.*` metric series
        // (excluded from flamegraphs, advisory under the perf-gate policy).
        let frames = self.sampler_frames.lock().unwrap();
        if !frames.is_empty() {
            rec.set_counter("sampler.frames", frames.len() as u64);
            for f in frames.iter() {
                let i = f.seq as i64;
                rec.record("sampler.queue.depth", RUN_LEVEL, i, f.queue_depth as f64);
                rec.record("sampler.p99_ns", RUN_LEVEL, i, f.latency_p99_ns as f64);
                rec.record("sampler.throughput_rps", RUN_LEVEL, i, f.throughput_rps as f64);
            }
        }
        drop(frames);
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            rec.set_counter(
                "serve.throughput_rps",
                (self.total_served() as f64 / secs).round() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_obs::TraceMeta;

    #[test]
    fn export_writes_the_serve_namespace() {
        let stats = ServeStats::default();
        stats.topk_served.add(10);
        stats.ppr_served.add(5);
        for i in 0..100 {
            stats.ppr_latency.record(1000 + i * 10);
        }
        stats.observe_queue_depth(3);
        stats.observe_queue_depth(7);
        let rec = Recorder::new(true);
        stats.export_into(&rec, Duration::from_secs(2));
        let trace = rec.finish(TraceMeta::default()).unwrap();
        assert_eq!(trace.counter("serve.topk.served"), Some(10));
        assert_eq!(trace.counter("serve.throughput_rps"), Some(8)); // 15 / 2s
        assert!(trace.counter("serve.ppr.p95_ns").unwrap() >= 1000);
        assert_eq!(trace.counter("serve.queue.max_depth"), Some(7));
        assert_eq!(trace.spans.iter().filter(|s| s.phase == "queue.depth").count(), 2);
    }

    fn frame(seq: u64, served: u64) -> SampleFrame {
        SampleFrame {
            seq,
            elapsed_ns: seq * 1000,
            queue_depth: seq,
            total_served: served,
            errors: 0,
            latency_p50_ns: 100,
            latency_p99_ns: 900,
            throughput_rps: 50,
        }
    }

    #[test]
    fn frame_ring_is_bounded_and_ordered() {
        let stats = ServeStats::default();
        for i in 0..10 {
            stats.push_frame(frame(i, i * 2), 4);
        }
        let frames = stats.frames();
        assert_eq!(frames.len(), 4);
        assert_eq!(frames.first().unwrap().seq, 6, "oldest frames evicted");
        assert_eq!(frames.last().unwrap().seq, 9);
    }

    #[test]
    fn frames_export_as_sampler_series() {
        let stats = ServeStats::default();
        stats.push_frame(frame(0, 5), 8);
        stats.push_frame(frame(1, 9), 8);
        let rec = Recorder::new(true);
        stats.export_into(&rec, Duration::from_secs(1));
        let trace = rec.finish(hipa_obs::TraceMeta::default()).unwrap();
        assert_eq!(trace.counter("sampler.frames"), Some(2));
        assert_eq!(trace.spans.iter().filter(|s| s.phase == "sampler.queue.depth").count(), 2);
        assert_eq!(trace.spans.iter().filter(|s| s.phase == "sampler.p99_ns").count(), 2);
        // Dotted metric series stay out of the flamegraph export.
        assert!(!trace.to_collapsed().contains("sampler"));
    }

    #[test]
    fn merged_latency_spans_all_classes() {
        let stats = ServeStats::default();
        stats.topk_latency.record(100);
        stats.ppr_latency.record(1_000_000);
        stats.edges_latency.record(10_000);
        let all = stats.merged_latency();
        assert_eq!(all.count(), 3);
        assert!(all.max() >= 1_000_000);
        // Re-merging later picks up new recordings: snapshots are cheap.
        stats.topk_latency.record(50);
        assert_eq!(stats.merged_latency().count(), 4);
    }

    #[test]
    fn exposition_renders_expected_lines() {
        let stats = ServeStats::default();
        stats.topk_served.add(3);
        stats.topk_latency.record(500);
        stats.topk_latency.record(700);
        stats.push_frame(frame(2, 3), 8);
        let text = stats.render_exposition(5, Duration::from_secs(10));
        assert!(text.contains("hipa_serve_uptime_seconds 10.000"), "{text}");
        assert!(text.contains("hipa_serve_requests_total 3"), "{text}");
        assert!(text.contains("hipa_serve_queue_depth 5"), "{text}");
        assert!(text.contains("hipa_serve_served_total{class=\"topk\"} 3"), "{text}");
        assert!(text.contains("class=\"topk\",quantile=\"0.99\""), "{text}");
        assert!(text.contains("hipa_serve_throughput_rps 50"), "{text}");
        assert!(text.contains("hipa_serve_sampler_ticks_total 3"), "{text}");
        // Classes with no traffic emit no quantile lines.
        assert!(!text.contains("class=\"ppr\",quantile"), "{text}");
    }
}
