//! `hipa-serve` — PageRank as a service on the HiPa substrate.
//!
//! The paper's §3.3 persistent-thread model (Algorithm 2) is exactly a
//! resident engine; this crate is the serving layer ROADMAP asks for on top
//! of it. A [`Server`] holds one immutable preprocessed state per graph
//! epoch — the graph, the PCPM layout + `hipa_plan` ownership
//! ([`hipa_core::PcpmPrepared`]), the resident worker pool, and converged
//! global ranks — and serves three request classes through an admission
//! queue and a batch scheduler:
//!
//! * **Top-k lookups** ([`Request::TopK`]) answered directly from the
//!   resident global ranks;
//! * **Personalized PageRank** ([`Request::Ppr`]): many user source sets are
//!   grouped and advanced through **one multi-vector partition-centric
//!   sweep** per power iteration ([`hipa_algos::PprSolver::solve_batch`]),
//!   amortizing the graph pass across the batch — and, because batch
//!   members freeze individually at their own convergence, every response
//!   is bitwise identical to a solo solve, so batching is invisible to
//!   clients;
//! * **Edge streaming** ([`Request::AddEdges`]): updates are committed as
//!   *delta epochs* — all reads drained in the same scheduling cycle are
//!   answered against the old state first, then the graph is rebuilt and
//!   re-ranked via PageRank-Delta ([`hipa_algos::pagerank_delta`]) and the
//!   epoch counter advances.
//!
//! Invalid user input (out-of-range personalization seeds or edge
//! endpoints) yields [`Response::Error`] instead of a server panic. Latency
//! histograms (p50/p95/p99), throughput and queue-depth gauges accumulate
//! in [`ServeStats`] and export into a `RunTrace` via `hipa-obs`
//! ([`ServeStats::export_into`]); the deterministic open-loop load
//! generator lives in [`loadgen`]. An opt-in background [`sampler`]
//! ([`ServeConfig`]'s `sampler` field) snapshots queue depth, merged
//! latency quantiles and windowed throughput into a bounded time-series
//! ring each tick, and can rewrite a plain-text exposition file for
//! external scrapers.
#![forbid(unsafe_code)]

pub mod loadgen;
pub mod sampler;
pub mod server;
pub mod stats;

pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use sampler::{SampleFrame, SamplerConfig};
pub use server::{edge_list_of, Request, Response, ServeConfig, Server, Ticket};
pub use stats::ServeStats;
