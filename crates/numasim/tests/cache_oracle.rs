//! Property test: the optimised set-associative cache model agrees with a
//! naive, obviously-correct LRU oracle on arbitrary access traces.

use hipa_numasim::cache::{Cache, CacheConfig, WayRange};
use proptest::prelude::*;

/// Naive per-set LRU: a vector of (line, dirty) in recency order (most
/// recent last).
struct OracleCache {
    sets: usize,
    assoc: usize,
    data: Vec<Vec<(u64, bool)>>,
}

impl OracleCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        OracleCache { sets, assoc: cfg.assoc, data: vec![Vec::new(); sets] }
    }

    /// Returns (hit, evicted) emulating probe-then-insert-on-miss.
    fn access(&mut self, line: u64, write: bool) -> (bool, Option<(u64, bool)>) {
        let set = &mut self.data[(line as usize) % self.sets];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (l, d) = set.remove(pos);
            set.push((l, d || write));
            return (true, None);
        }
        let evicted = if set.len() == self.assoc { Some(set.remove(0)) } else { None };
        set.push((line, write));
        (false, evicted)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_lru_oracle(
        accesses in prop::collection::vec((0u64..256, any::<bool>()), 1..600),
        sets_pow in 0u32..4,
        assoc in 1usize..6,
    ) {
        let cfg = CacheConfig::new(64 * (1 << sets_pow) * assoc, 64, assoc);
        let mut cache = Cache::new(cfg);
        let mut oracle = OracleCache::new(cfg);
        let ways = WayRange::full(assoc);
        for &(line, write) in &accesses {
            let oracle_hit;
            let oracle_evict;
            {
                let (h, e) = oracle.access(line, write);
                oracle_hit = h;
                oracle_evict = e;
            }
            let hit = cache.probe(line, ways, write);
            prop_assert_eq!(hit, oracle_hit, "hit mismatch on line {}", line);
            if !hit {
                let evicted = cache.insert(line, write, ways);
                let got = evicted.map(|e| (e.line, e.dirty));
                prop_assert_eq!(got, oracle_evict, "eviction mismatch on line {}", line);
            }
        }
        // Final occupancy agrees too.
        let oracle_occ: usize = oracle.data.iter().map(|s| s.len()).sum();
        prop_assert_eq!(cache.occupancy(), oracle_occ);
    }

    #[test]
    fn invalidate_matches_oracle_semantics(
        lines in prop::collection::vec(0u64..64, 1..100),
    ) {
        let cfg = CacheConfig::new(64 * 4 * 2, 64, 2);
        let mut cache = Cache::new(cfg);
        let ways = WayRange::full(2);
        for &l in &lines {
            if !cache.probe(l, ways, l % 3 == 0) {
                cache.insert(l, l % 3 == 0, ways);
            }
        }
        for &l in &lines {
            let was_in = cache.contains(l);
            let inv = cache.invalidate(l);
            prop_assert_eq!(inv.is_some(), was_in);
            prop_assert!(!cache.contains(l));
        }
        prop_assert!(cache.occupancy() <= 8);
    }
}
