//! Set-associative LRU cache model with write-back dirty tracking and
//! optional way partitioning (used to model SMT siblings competing for a
//! shared private cache).

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (64 on every machine modelled here).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    pub fn new(size_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(assoc >= 1);
        assert!(size_bytes >= line_bytes * assoc, "cache smaller than one set");
        CacheConfig { size_bytes, line_bytes, assoc }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.assoc).max(1)
    }

    /// Returns the geometry with capacity divided by `divisor` (associativity
    /// and line size kept). Used to scale the machine alongside the scaled
    /// graph datasets (DESIGN.md §2).
    pub fn scaled(&self, divisor: usize) -> CacheConfig {
        assert!(divisor >= 1);
        let size = (self.size_bytes / divisor).max(self.line_bytes * self.assoc);
        CacheConfig { size_bytes: size, line_bytes: self.line_bytes, assoc: self.assoc }
    }
}

/// Which ways of each set an access may use. Full range normally; half the
/// ways when an SMT sibling is competing for the same private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayRange {
    pub start: usize,
    pub len: usize,
}

impl WayRange {
    pub fn full(assoc: usize) -> Self {
        WayRange { start: 0, len: assoc }
    }
}

/// A line evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    pub line: u64,
    pub dirty: bool,
}

const INVALID: u64 = u64::MAX;

/// One set-associative LRU cache.
///
/// Lines are identified by their global line number (`addr >> line_bits`).
/// LRU is stamp-based: each hit/insert records a monotonically increasing
/// counter; the victim is the valid slot with the smallest stamp.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    tags: Vec<u64>,
    dirty: Vec<bool>,
    stamp: Vec<u64>,
    tick: u64,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let slots = sets * cfg.assoc;
        Cache {
            cfg,
            sets,
            tags: vec![INVALID; slots],
            dirty: vec![false; slots],
            stamp: vec![0; slots],
            tick: 0,
        }
    }

    #[inline]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.sets
    }

    #[inline]
    fn slot_range(&self, line: u64, ways: WayRange) -> (usize, usize) {
        debug_assert!(ways.start + ways.len <= self.cfg.assoc, "way range exceeds associativity");
        let base = self.set_of(line) * self.cfg.assoc + ways.start;
        (base, base + ways.len)
    }

    /// Looks the line up; on hit, refreshes LRU and ORs in `mark_dirty`.
    /// Returns whether it hit.
    pub fn probe(&mut self, line: u64, ways: WayRange, mark_dirty: bool) -> bool {
        let (lo, hi) = self.slot_range(line, ways);
        for i in lo..hi {
            if self.tags[i] == line {
                self.tick += 1;
                self.stamp[i] = self.tick;
                if mark_dirty {
                    self.dirty[i] = true;
                }
                return true;
            }
        }
        false
    }

    /// Inserts the line (which must not currently hit in `ways`), returning
    /// the victim if a valid line had to be evicted.
    pub fn insert(&mut self, line: u64, dirty: bool, ways: WayRange) -> Option<Evicted> {
        let (lo, hi) = self.slot_range(line, ways);
        self.tick += 1;
        // Prefer an invalid slot; otherwise evict the LRU one.
        let mut victim = lo;
        let mut best = u64::MAX;
        for i in lo..hi {
            if self.tags[i] == INVALID {
                victim = i;
                break;
            }
            if self.stamp[i] < best {
                best = self.stamp[i];
                victim = i;
            }
        }
        let out = if self.tags[victim] != INVALID {
            Some(Evicted { line: self.tags[victim], dirty: self.dirty[victim] })
        } else {
            None
        };
        self.tags[victim] = line;
        self.dirty[victim] = dirty;
        self.stamp[victim] = self.tick;
        out
    }

    /// Removes a line wherever it is in its set (all ways — back-invalidation
    /// ignores way partitioning). Returns the line's dirty bit if present.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let (lo, hi) = self.slot_range(line, WayRange::full(self.cfg.assoc));
        for i in lo..hi {
            if self.tags[i] == line {
                self.tags[i] = INVALID;
                let d = self.dirty[i];
                self.dirty[i] = false;
                return Some(d);
            }
        }
        None
    }

    /// Whether the line is resident (no LRU update). Test/diagnostic helper.
    pub fn contains(&self, line: u64) -> bool {
        let (lo, hi) = self.slot_range(line, WayRange::full(self.cfg.assoc));
        self.tags[lo..hi].contains(&line)
    }

    /// Marks the resident line dirty (no-op if absent).
    pub fn mark_dirty(&mut self, line: u64) {
        let (lo, hi) = self.slot_range(line, WayRange::full(self.cfg.assoc));
        for i in lo..hi {
            if self.tags[i] == line {
                self.dirty[i] = true;
                return;
            }
        }
    }

    /// Drops all content (between independent experiment runs).
    pub fn clear(&mut self) {
        self.tags.fill(INVALID);
        self.dirty.fill(false);
        self.stamp.fill(0);
        self.tick = 0;
    }

    /// Number of currently valid lines. Diagnostic.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(1 << 20, 64, 16);
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.scaled(64).size_bytes, 16 * 1024);
        assert_eq!(c.scaled(1 << 30).size_bytes, 64 * 16); // floor at one set
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = tiny();
        let w = WayRange::full(2);
        assert!(!c.probe(100, w, false));
        assert_eq!(c.insert(100, false, w), None);
        assert!(c.probe(100, w, false));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        let w = WayRange::full(2);
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(0, false, w);
        c.insert(4, false, w);
        assert!(c.probe(0, w, false)); // refresh 0 -> 4 becomes LRU
        let ev = c.insert(8, false, w).unwrap();
        assert_eq!(ev.line, 4);
        assert!(c.contains(0) && c.contains(8) && !c.contains(4));
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut c = tiny();
        let w = WayRange::full(2);
        c.insert(0, false, w);
        assert!(c.probe(0, w, true)); // write marks dirty
        c.insert(4, false, w);
        let ev = c.insert(8, false, w).unwrap();
        assert_eq!(ev, Evicted { line: 0, dirty: true });
    }

    #[test]
    fn way_partitioning_isolates_halves() {
        let mut c = tiny();
        let left = WayRange { start: 0, len: 1 };
        let right = WayRange { start: 1, len: 1 };
        c.insert(0, false, left);
        // The sibling's half does not see the line...
        assert!(!c.probe(0, right, false));
        // ...and inserting there evicts nothing.
        assert_eq!(c.insert(4, false, right), None);
        // Full-width probe sees both.
        assert!(c.contains(0) && c.contains(4));
    }

    #[test]
    fn invalidate_reports_dirty() {
        let mut c = tiny();
        let w = WayRange::full(2);
        c.insert(7, true, w);
        assert_eq!(c.invalidate(7), Some(true));
        assert_eq!(c.invalidate(7), None);
        assert!(!c.contains(7));
    }

    #[test]
    fn capacity_bound_holds() {
        let mut c = tiny();
        let w = WayRange::full(2);
        for line in 0..100 {
            c.probe(line, w, false);
            c.insert(line, false, w);
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.insert(3, true, WayRange::full(2));
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }
}
