//! Simulated NUMA address space: named regions, page-granular node
//! ownership, and placement policies.
//!
//! Engines allocate a region per data structure (rank array, CSR offsets,
//! edge array, message bins, …) with a [`Placement`] policy. The address
//! space assigns each 4 KB page an owning NUMA node; the machine then
//! classifies every DRAM-level access as local or remote by comparing the
//! page owner with the accessing core's socket — exactly what the memory
//! controller counters the paper reads (remote MApE, Fig. 5) observe.

/// Handle to an allocated region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub(crate) usize);

impl RegionId {
    /// The region's index in allocation order.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from an allocation-order index (diagnostics).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        RegionId(i)
    }
}

/// Simulated page size.
pub const PAGE_BYTES: usize = 4096;

/// NUMA placement policy for a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// All pages on one node (`numa_alloc_onnode`).
    Node(usize),
    /// Pages round-robin across all nodes (`numa_alloc_interleaved`, the
    /// default a NUMA-oblivious allocator effectively converges to for big
    /// shared arrays under first-touch by 40 scattered threads).
    Interleaved,
    /// Explicit byte ranges per node: `(end_offset, node)` pairs with
    /// ascending, final `end_offset == region length`. This is HiPa's
    /// partition-mapped layout (§3.4): one contiguous virtual range whose
    /// physical pages follow the NUMA partitioning. A page is owned by the
    /// node covering its first byte.
    Blocked(Vec<(usize, usize)>),
    /// Pages are owned by the node of the first core that touches them —
    /// Linux's default policy. Untouched pages read as node 0.
    FirstTouch,
}

/// Marker for a page not yet claimed under [`Placement::FirstTouch`].
const UNTOUCHED: u8 = u8::MAX;

#[derive(Debug, Clone)]
struct Region {
    name: String,
    base: u64,
    len: usize,
    /// Owning node per page.
    page_owner: Vec<u8>,
}

/// The simulated address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    nodes: usize,
    regions: Vec<Region>,
    next_base: u64,
}

impl AddressSpace {
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 1 && nodes < u8::MAX as usize, "node marker 255 is reserved");
        AddressSpace { nodes, regions: Vec::new(), next_base: PAGE_BYTES as u64 }
    }

    /// Allocates a region of `len` bytes with the given placement.
    ///
    /// # Panics
    /// Panics if a `Blocked` placement is malformed (non-ascending or not
    /// covering the region) or names a node that does not exist.
    pub fn alloc(&mut self, name: &str, len: usize, placement: Placement) -> RegionId {
        let pages = len.div_ceil(PAGE_BYTES);
        let mut page_owner = vec![0u8; pages];
        match &placement {
            Placement::Node(n) => {
                assert!(*n < self.nodes, "node {n} out of range");
                page_owner.fill(*n as u8);
            }
            Placement::Interleaved => {
                for (i, p) in page_owner.iter_mut().enumerate() {
                    *p = (i % self.nodes) as u8;
                }
            }
            Placement::FirstTouch => {
                page_owner.fill(UNTOUCHED);
            }
            Placement::Blocked(ranges) => {
                assert!(!ranges.is_empty(), "empty blocked placement");
                let mut prev = 0usize;
                for &(end, node) in ranges {
                    // Equal ends are allowed: a node may own zero bytes of an
                    // array (e.g. no messages destined to its partitions).
                    assert!(end >= prev, "blocked ranges must be non-decreasing");
                    assert!(node < self.nodes, "node {node} out of range");
                    prev = end;
                }
                assert!(prev >= len, "blocked placement covers {prev} of {len} bytes");
                for (i, p) in page_owner.iter_mut().enumerate() {
                    let first_byte = i * PAGE_BYTES;
                    let node = ranges
                        .iter()
                        .find(|&&(end, _)| first_byte < end)
                        .map(|&(_, n)| n)
                        .unwrap_or(ranges.last().unwrap().1);
                    *p = node as u8;
                }
            }
        }
        // Regions are page-aligned and separated by a guard page so distinct
        // regions never share a cache line.
        let base = self.next_base;
        let span = (pages + 1) * PAGE_BYTES;
        self.next_base += span as u64;
        self.regions.push(Region { name: name.to_string(), base, len, page_owner });
        RegionId(self.regions.len() - 1)
    }

    /// Global byte address of `offset` within the region.
    #[inline]
    pub fn addr(&self, r: RegionId, offset: usize) -> u64 {
        let reg = &self.regions[r.0];
        debug_assert!(
            offset < reg.len.max(1),
            "offset {offset} beyond region '{}' ({} bytes)",
            reg.name,
            reg.len
        );
        reg.base + offset as u64
    }

    /// Region containing a global address.
    #[inline]
    pub fn region_of_addr(&self, addr: u64) -> RegionId {
        // Regions are allocated in ascending base order; binary search.
        match self.regions.binary_search_by(|r| {
            if addr < r.base {
                std::cmp::Ordering::Greater
            } else if addr >= r.base + (r.page_owner.len() * PAGE_BYTES) as u64 {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => RegionId(i),
            Err(_) => panic!("address {addr:#x} not in any region"),
        }
    }

    /// Owning NUMA node of the page containing a global address.
    #[inline]
    pub fn owner_of_addr(&self, addr: u64) -> usize {
        let reg = &self.regions[self.region_of_addr(addr).0];
        let page = ((addr - reg.base) as usize) / PAGE_BYTES;
        let o = reg.page_owner[page];
        if o == UNTOUCHED {
            0
        } else {
            o as usize
        }
    }

    /// First-touch claim: if the page holding `offset` is untouched, it
    /// becomes owned by `node`. Returns the (possibly just-assigned) owner.
    #[inline]
    pub fn touch(&mut self, r: RegionId, offset: usize, node: usize) -> usize {
        let reg = &mut self.regions[r.0];
        let p = &mut reg.page_owner[offset / PAGE_BYTES];
        if *p == UNTOUCHED {
            *p = node as u8;
        }
        *p as usize
    }

    /// Number of regions allocated so far.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Owning node of `offset` within a region (fast path: no search).
    /// Untouched first-touch pages read as node 0.
    #[inline]
    pub fn owner_of(&self, r: RegionId, offset: usize) -> usize {
        let reg = &self.regions[r.0];
        let o = reg.page_owner[offset / PAGE_BYTES];
        if o == UNTOUCHED {
            0
        } else {
            o as usize
        }
    }

    pub fn region_len(&self, r: RegionId) -> usize {
        self.regions[r.0].len
    }

    pub fn region_name(&self, r: RegionId) -> &str {
        &self.regions[r.0].name
    }

    /// Total bytes allocated across regions.
    pub fn total_bytes(&self) -> usize {
        self.regions.iter().map(|r| r.len).sum()
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_placement_owns_all_pages() {
        let mut s = AddressSpace::new(2);
        let r = s.alloc("a", 3 * PAGE_BYTES, Placement::Node(1));
        for off in [0, PAGE_BYTES, 3 * PAGE_BYTES - 1] {
            assert_eq!(s.owner_of(r, off), 1);
        }
    }

    #[test]
    fn interleaved_round_robins() {
        let mut s = AddressSpace::new(2);
        let r = s.alloc("a", 4 * PAGE_BYTES, Placement::Interleaved);
        assert_eq!(s.owner_of(r, 0), 0);
        assert_eq!(s.owner_of(r, PAGE_BYTES), 1);
        assert_eq!(s.owner_of(r, 2 * PAGE_BYTES), 0);
    }

    #[test]
    fn blocked_assigns_by_range() {
        let mut s = AddressSpace::new(2);
        let len = 10 * PAGE_BYTES;
        let r = s.alloc("a", len, Placement::Blocked(vec![(6 * PAGE_BYTES, 0), (len, 1)]));
        assert_eq!(s.owner_of(r, 5 * PAGE_BYTES), 0);
        assert_eq!(s.owner_of(r, 6 * PAGE_BYTES), 1);
        assert_eq!(s.owner_of(r, len - 1), 1);
    }

    #[test]
    fn blocked_mid_page_boundary_uses_first_byte() {
        let mut s = AddressSpace::new(2);
        // Boundary in the middle of page 0: the page belongs to the node
        // covering its first byte (node 0).
        let r = s.alloc("a", PAGE_BYTES, Placement::Blocked(vec![(100, 0), (PAGE_BYTES, 1)]));
        assert_eq!(s.owner_of(r, 0), 0);
        assert_eq!(s.owner_of(r, 200), 0);
    }

    #[test]
    fn addr_and_owner_of_addr_agree() {
        let mut s = AddressSpace::new(4);
        let a = s.alloc("a", 2 * PAGE_BYTES, Placement::Node(3));
        let b = s.alloc("b", PAGE_BYTES, Placement::Node(1));
        assert_eq!(s.owner_of_addr(s.addr(a, 10)), 3);
        assert_eq!(s.owner_of_addr(s.addr(b, 10)), 1);
    }

    #[test]
    fn regions_do_not_share_lines() {
        let mut s = AddressSpace::new(1);
        let a = s.alloc("a", 100, Placement::Node(0));
        let b = s.alloc("b", 100, Placement::Node(0));
        assert!(s.addr(b, 0) / 64 > s.addr(a, 99) / 64);
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn blocked_must_cover_region() {
        let mut s = AddressSpace::new(2);
        s.alloc("a", 2 * PAGE_BYTES, Placement::Blocked(vec![(PAGE_BYTES, 0)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_placement_checks_node() {
        let mut s = AddressSpace::new(2);
        s.alloc("a", 10, Placement::Node(2));
    }
}
