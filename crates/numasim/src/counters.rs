//! Event counters and the per-run report.
//!
//! These are the simulator's equivalents of the hardware counters the paper
//! reads with VTune/perf: DRAM accesses split local/remote (Fig. 5's MApE),
//! LLC hits (Fig. 7), thread creations and migrations (§3.3).

/// Memory-hierarchy event totals. All DRAM counters are in 64-byte-line
/// events; byte figures multiply by the line size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Line-granular load accesses issued.
    pub reads: u64,
    /// Line-granular store accesses issued.
    pub writes: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub llc_hits: u64,
    /// Demand lines served from the accessing core's own node DRAM.
    pub dram_local: u64,
    /// Demand lines served from a remote node's DRAM.
    pub dram_remote: u64,
    /// Dirty write-backs that landed in local DRAM.
    pub wb_local: u64,
    /// Dirty write-backs that landed in remote DRAM.
    pub wb_remote: u64,
    /// Atomic read-modify-write operations.
    pub atomics: u64,
    /// Arithmetic operations charged via `ThreadCtx::compute`.
    pub compute_ops: u64,
    /// Software-prefetch hints issued via `ThreadCtx::prefetch` (line
    /// granular). A prefetched line that misses still shows up in the
    /// DRAM counters — the hint hides latency, it does not erase traffic.
    pub prefetches: u64,
}

impl MemCounters {
    /// Total lines that reached DRAM (demand + write-back).
    pub fn dram_lines(&self) -> u64 {
        self.dram_local + self.dram_remote + self.wb_local + self.wb_remote
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self, line_bytes: usize) -> u64 {
        self.dram_lines() * line_bytes as u64
    }

    /// DRAM traffic that crossed the socket interconnect, in bytes.
    pub fn dram_remote_bytes(&self, line_bytes: usize) -> u64 {
        (self.dram_remote + self.wb_remote) * line_bytes as u64
    }

    /// Fraction of DRAM traffic that was remote (the percentage annotated on
    /// top of Fig. 5's bars).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.dram_lines();
        if total == 0 {
            0.0
        } else {
            (self.dram_remote + self.wb_remote) as f64 / total as f64
        }
    }

    /// LLC hit ratio among accesses that reached the LLC.
    pub fn llc_hit_ratio(&self) -> f64 {
        let reached = self.llc_hits + self.dram_local + self.dram_remote;
        if reached == 0 {
            0.0
        } else {
            self.llc_hits as f64 / reached as f64
        }
    }

    pub fn add(&mut self, o: &MemCounters) {
        self.reads += o.reads;
        self.writes += o.writes;
        self.l1_hits += o.l1_hits;
        self.l2_hits += o.l2_hits;
        self.llc_hits += o.llc_hits;
        self.dram_local += o.dram_local;
        self.dram_remote += o.dram_remote;
        self.wb_local += o.wb_local;
        self.wb_remote += o.wb_remote;
        self.atomics += o.atomics;
        self.compute_ops += o.compute_ops;
        self.prefetches += o.prefetches;
    }
}

/// Timing record of one parallel phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Cycles the phase occupied on the wall clock (after congestion).
    pub cycles: f64,
    /// Max single-thread clock in the phase (latency/compute component).
    pub max_thread_cycles: f64,
    /// Cycles implied by the busiest node's DRAM byte demand.
    pub bandwidth_cycles: f64,
    /// True when the roofline picked the bandwidth term — the phase was
    /// memory-bandwidth-bound (the regime Fig. 6's p-PR/GPOP collapse into).
    pub bandwidth_bound: bool,
}

/// Full result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Label supplied by the engine ("HiPa", "p-PR", ...).
    pub label: String,
    /// Machine preset name.
    pub machine: String,
    /// Total simulated cycles.
    pub cycles: f64,
    /// Processor frequency used to convert cycles to seconds.
    pub ghz: f64,
    /// Cache line size (for byte conversions).
    pub line_bytes: usize,
    pub mem: MemCounters,
    pub threads_created: u64,
    pub migrations: u64,
    pub phases: u64,
    /// Phases that ended bandwidth-bound.
    pub bandwidth_bound_phases: u64,
}

impl SimReport {
    /// Simulated wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles / (self.ghz * 1e9)
    }

    /// Memory accesses per edge in bytes — Fig. 5's y-axis. DRAM traffic
    /// divided by the edge count of the processed graph.
    pub fn mape(&self, num_edges: usize) -> f64 {
        self.mem.dram_bytes(self.line_bytes) as f64 / num_edges.max(1) as f64
    }

    /// Remote component of [`Self::mape`].
    pub fn remote_mape(&self, num_edges: usize) -> f64 {
        self.mem.dram_remote_bytes(self.line_bytes) as f64 / num_edges.max(1) as f64
    }

    /// Multi-line human-readable summary (used by the CLI and examples).
    pub fn render(&self) -> String {
        let m = &self.mem;
        format!(
            "[{label} on {machine}]\n\
             time:     {secs:.4}s ({cycles:.3e} cycles @ {ghz} GHz)\n\
             accesses: {reads} reads, {writes} writes, {atomics} atomics\n\
             hits:     L1 {l1}, L2 {l2}, LLC {llc} ({llcr:.1}% of LLC lookups)\n\
             DRAM:     {dl} local + {dr} remote demand, {wl}+{wr} write-backs ({rem:.1}% remote)\n\
             threads:  {tc} created, {mig} migrations, {ph} phases ({bw} bandwidth-bound)",
            label = self.label,
            machine = self.machine,
            secs = self.seconds(),
            cycles = self.cycles,
            ghz = self.ghz,
            reads = m.reads,
            writes = m.writes,
            atomics = m.atomics,
            l1 = m.l1_hits,
            l2 = m.l2_hits,
            llc = m.llc_hits,
            llcr = m.llc_hit_ratio() * 100.0,
            dl = m.dram_local,
            dr = m.dram_remote,
            wl = m.wb_local,
            wr = m.wb_remote,
            rem = m.remote_fraction() * 100.0,
            tc = self.threads_created,
            mig = self.migrations,
            ph = self.phases,
            bw = self.bandwidth_bound_phases,
        )
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_fraction_and_bytes() {
        let c = MemCounters {
            dram_local: 60,
            dram_remote: 30,
            wb_local: 5,
            wb_remote: 5,
            ..Default::default()
        };
        assert!((c.remote_fraction() - 0.35).abs() < 1e-12);
        assert_eq!(c.dram_bytes(64), 100 * 64);
        assert_eq!(c.dram_remote_bytes(64), 35 * 64);
    }

    #[test]
    fn zero_division_is_safe() {
        let c = MemCounters::default();
        assert_eq!(c.remote_fraction(), 0.0);
        assert_eq!(c.llc_hit_ratio(), 0.0);
    }

    #[test]
    fn report_units() {
        let r = SimReport {
            label: "x".into(),
            machine: "m".into(),
            cycles: 2.2e9,
            ghz: 2.2,
            line_bytes: 64,
            mem: MemCounters { dram_local: 1000, ..Default::default() },
            threads_created: 0,
            migrations: 0,
            phases: 0,
            bandwidth_bound_phases: 0,
        };
        assert!((r.seconds() - 1.0).abs() < 1e-12);
        assert!((r.mape(6400) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_key_fields() {
        let r = SimReport {
            label: "HiPa".into(),
            machine: "skylake-4210".into(),
            cycles: 1e9,
            ghz: 2.2,
            line_bytes: 64,
            mem: MemCounters { dram_remote: 42, dram_local: 58, ..Default::default() },
            threads_created: 40,
            migrations: 3,
            phases: 20,
            bandwidth_bound_phases: 2,
        };
        let out = r.to_string();
        assert!(out.contains("HiPa"));
        assert!(out.contains("42 remote"));
        assert!(out.contains("40 created, 3 migrations"));
    }

    #[test]
    fn add_accumulates() {
        let mut a = MemCounters { reads: 1, l2_hits: 2, ..Default::default() };
        a.add(&MemCounters { reads: 3, atomics: 4, ..Default::default() });
        assert_eq!(a.reads, 4);
        assert_eq!(a.l2_hits, 2);
        assert_eq!(a.atomics, 4);
    }
}
