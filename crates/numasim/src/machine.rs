//! The simulated machine: pools of simulated threads, barrier-synchronised
//! parallel phases, the full cache/NUMA access path, and the roofline
//! bandwidth-congestion model.
//!
//! # Execution model
//!
//! An engine expresses its computation as a sequence of *phases* over a
//! thread *pool*. Within [`SimMachine::phase`] each simulated thread's work
//! closure runs to completion (host-sequentially — the host has one core),
//! accumulating cycles on the thread's private clock and driving the cache
//! hierarchy of the logical CPU it is placed on. At the end of the phase the
//! wall clock advances by
//!
//! ```text
//! max(max_thread_cycles,                 // latency/compute bound
//!     max_node DRAM bytes / node_bw,     // DRAM bandwidth bound
//!     cross-socket bytes / interconnect_bw)
//!   + barrier cost
//! ```
//!
//! which is the standard roofline approximation: a phase is as slow as its
//! slowest thread unless the threads collectively saturate a memory channel
//! (the regime responsible for the partition-centric scalability collapse in
//! the paper's Fig. 6).
//!
//! Two simulated threads sharing a physical core (SMT siblings) have the
//! core's private L1/L2 *way-partitioned* between them — each sees half the
//! associativity — modelling the §3.3 observation that hyper-threaded pairs
//! compete for the private cache.

use crate::cache::{Cache, WayRange};
use crate::counters::{MemCounters, PhaseStat, SimReport};
use crate::mem::{AddressSpace, Placement, RegionId};
use crate::sched::{place, ThreadPlacement};
use crate::spec::MachineSpec;
use crate::topology::LogicalCpu;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Handle to a created thread pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolId(usize);

/// How work inside a phase responds to slow threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseBalance {
    /// Work is statically assigned (HiPa's thread-data pinning): the phase
    /// lasts as long as its slowest thread.
    Static,
    /// Work is claimed dynamically (FCFS counters, OpenMP-dynamic chunks,
    /// work stealing): threads on shared cores simply claim less, so the
    /// phase cost is the throughput-weighted mean, floored by the slowest
    /// single thread's *per-unit* share (one claim granule).
    Dynamic,
}

#[derive(Debug, Clone)]
struct Pool {
    cpus: Vec<LogicalCpu>,
}

/// A simulated NUMA multicore machine.
///
/// ```
/// use hipa_numasim::{MachineSpec, Placement, SimMachine, ThreadPlacement};
/// let mut m = SimMachine::new(MachineSpec::tiny_test());
/// let local = m.alloc("local", 4096, Placement::Node(0));
/// let remote = m.alloc("remote", 4096, Placement::Node(1));
/// // The sequential context runs on socket 0: one local, one remote miss.
/// m.seq(|ctx| {
///     ctx.read(local, 0, 4);
///     ctx.read(remote, 0, 4);
/// });
/// assert_eq!(m.counters().dram_local, 1);
/// assert_eq!(m.counters().dram_remote, 1);
/// ```
#[derive(Debug)]
pub struct SimMachine {
    spec: MachineSpec,
    space: AddressSpace,
    /// Private caches, one per *physical* core.
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    /// Shared LLC, one per socket.
    llc: Vec<Cache>,
    rng: StdRng,
    pools: Vec<Pool>,
    mem: MemCounters,
    /// DRAM lines (demand + write-back) per region — the per-data-structure
    /// traffic breakdown a VTune memory-access analysis would show.
    region_dram: Vec<u64>,
    threads_created: u64,
    migrations: u64,
    cycles: f64,
    phases: Vec<PhaseStat>,
}

impl SimMachine {
    pub fn new(spec: MachineSpec) -> Self {
        let pc = spec.topology.physical_cores();
        let sockets = spec.topology.sockets;
        SimMachine {
            space: AddressSpace::new(sockets),
            l1: (0..pc).map(|_| Cache::new(spec.l1)).collect(),
            l2: (0..pc).map(|_| Cache::new(spec.l2)).collect(),
            llc: (0..sockets).map(|_| Cache::new(spec.llc)).collect(),
            rng: StdRng::seed_from_u64(spec.seed),
            pools: Vec::new(),
            mem: MemCounters::default(),
            region_dram: Vec::new(),
            threads_created: 0,
            migrations: 0,
            cycles: 0.0,
            phases: Vec::new(),
            spec,
        }
    }

    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Allocates a named data region with a NUMA placement policy.
    pub fn alloc(&mut self, name: &str, bytes: usize, placement: Placement) -> RegionId {
        self.region_dram.push(0);
        self.space.alloc(name, bytes, placement)
    }

    /// DRAM lines (demand + write-back) per region, most-trafficked first —
    /// the per-array breakdown used by diagnostics and the placement
    /// examples.
    pub fn dram_lines_by_region(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .region_dram
            .iter()
            .enumerate()
            .map(|(i, &lines)| (self.space.region_name(RegionId::from_index(i)).to_string(), lines))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    pub(crate) fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Creates a pool of `n` simulated threads. Charges the spawn cost for
    /// the parallel-region entry plus one migration cost per thread the
    /// placement policy had to move (§3.3). Counts toward
    /// `threads_created` — the quantity Algorithm 1 inflates and
    /// Algorithm 2 minimises.
    pub fn create_pool(&mut self, n: usize, policy: &ThreadPlacement) -> PoolId {
        let pr = place(&self.spec.topology, &mut self.rng, n, policy);
        self.threads_created += n as u64;
        self.migrations += pr.migrations;
        self.cycles += self.spec.cost.spawn + pr.migrations as f64 * self.spec.cost.migration;
        self.pools.push(Pool { cpus: pr.cpus });
        PoolId(self.pools.len() - 1)
    }

    /// The logical CPUs a pool's threads ended up on.
    pub fn pool_cpus(&self, pool: PoolId) -> &[LogicalCpu] {
        &self.pools[pool.0].cpus
    }

    /// Runs one barrier-synchronised parallel phase with static work
    /// assignment: `f(i, ctx)` is invoked once per thread `i` in the pool.
    pub fn phase<F>(&mut self, pool: PoolId, f: F)
    where
        F: FnMut(usize, &mut ThreadCtx),
    {
        self.phase_balanced(pool, PhaseBalance::Static, f)
    }

    /// [`Self::phase`] with an explicit load-balance model.
    pub fn phase_balanced<F>(&mut self, pool: PoolId, balance: PhaseBalance, mut f: F)
    where
        F: FnMut(usize, &mut ThreadCtx),
    {
        let cpus = self.pools[pool.0].cpus.clone();
        if cpus.is_empty() {
            return;
        }
        let topo = self.spec.topology;
        let mut active_per_core = vec![0u8; topo.physical_cores()];
        for c in &cpus {
            active_per_core[topo.core_of(*c)] += 1;
        }
        let sockets = topo.sockets;
        let mut max_clock = 0f64;
        let mut sum_clock = 0f64;
        let mut node_bytes = vec![0f64; sockets];
        let mut xsock_bytes = 0f64;
        let smt_throughput = self.spec.cost.smt_throughput;
        for (i, &cpu) in cpus.iter().enumerate() {
            let core = topo.core_of(cpu);
            let siblings = active_per_core[core] as usize;
            let mut ctx = ThreadCtx::new(self, cpu, siblings);
            f(i, &mut ctx);
            // SMT siblings share the core's execution resources: each runs
            // at smt_throughput / siblings of full speed.
            let slow = if siblings > 1 { siblings as f64 / smt_throughput } else { 1.0 };
            max_clock = max_clock.max(ctx.clock * slow);
            sum_clock += ctx.clock * slow;
            for (t, b) in node_bytes.iter_mut().zip(&ctx.stream_node_bytes) {
                *t += b;
            }
            xsock_bytes += ctx.stream_xsock_bytes;
        }
        let latency_clock = match balance {
            PhaseBalance::Static => max_clock,
            // Dynamic claiming redistributes work away from slow threads;
            // the mean is floored at half the slowest thread's static share
            // (claim granularity / tail effects).
            PhaseBalance::Dynamic => (sum_clock / cpus.len() as f64).max(max_clock * 0.5),
        };
        let max_clock = latency_clock;
        let cost = &self.spec.cost;
        let bw_node =
            node_bytes.iter().cloned().fold(0f64, f64::max) / cost.node_bw_bytes_per_cycle;
        let bw_x = xsock_bytes / cost.interconnect_bw_bytes_per_cycle;
        let bw = bw_node.max(bw_x);
        // Past saturation, contention (queueing, row-buffer conflicts, bus
        // arbitration) makes the channel *less* efficient, not just full —
        // the §4.4 observation that extra threads "aggregate the contention
        // on bus and cache resources". Model: the bandwidth term grows by
        // 60 % of its oversubscription ratio.
        let t = if bw > max_clock && max_clock > 0.0 {
            let over = bw / max_clock - 1.0;
            bw * (1.0 + 1.2 * over.min(3.0)) + cost.barrier
        } else {
            max_clock.max(bw) + cost.barrier
        };
        self.cycles += t;
        self.phases.push(PhaseStat {
            cycles: t,
            max_thread_cycles: max_clock,
            bandwidth_cycles: bw,
            bandwidth_bound: bw > max_clock,
        });
    }

    /// Runs sequential (single-thread) work on logical CPU 0 — preprocessing,
    /// partitioning, result concatenation.
    pub fn seq<R, F: FnOnce(&mut ThreadCtx) -> R>(&mut self, f: F) -> R {
        let mut ctx = ThreadCtx::new(self, LogicalCpu(0), 1);
        let r = f(&mut ctx);
        let clock = ctx.clock;
        self.cycles += clock;
        r
    }

    /// Advances the wall clock by a fixed number of cycles (modelled fixed
    /// costs outside the access path).
    pub fn advance(&mut self, cycles: f64) {
        self.cycles += cycles;
    }

    /// Total simulated cycles so far.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Simulated wall time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.cycles / (self.spec.cost.ghz * 1e9)
    }

    pub fn counters(&self) -> &MemCounters {
        &self.mem
    }

    pub fn threads_created(&self) -> u64 {
        self.threads_created
    }

    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    pub fn phase_stats(&self) -> &[PhaseStat] {
        &self.phases
    }

    /// Snapshots a [`SimReport`].
    pub fn report(&self, label: &str) -> SimReport {
        SimReport {
            label: label.to_string(),
            machine: self.spec.name.clone(),
            cycles: self.cycles,
            ghz: self.spec.cost.ghz,
            line_bytes: self.spec.l1.line_bytes,
            mem: self.mem,
            threads_created: self.threads_created,
            migrations: self.migrations,
            phases: self.phases.len() as u64,
            bandwidth_bound_phases: self.phases.iter().filter(|p| p.bandwidth_bound).count() as u64,
        }
    }

    /// Clears counters and the wall clock (cache contents survive). Used by
    /// harnesses that warm up before measuring, mirroring the paper's
    /// averaging over repeated runs.
    pub fn reset_measurement(&mut self) {
        self.mem = MemCounters::default();
        self.cycles = 0.0;
        self.phases.clear();
        self.threads_created = 0;
        self.migrations = 0;
    }
}

/// Per-thread access context handed to phase closures. Every simulated load
/// and store flows through here.
pub struct ThreadCtx<'m> {
    m: &'m mut SimMachine,
    cpu: LogicalCpu,
    core: usize,
    socket: usize,
    l1w: WayRange,
    l2w: WayRange,
    clock: f64,
    /// DRAM bytes from *streaming* accesses (and write-backs) per node —
    /// the only traffic the bandwidth roofline constrains. Random-access
    /// bytes are already latency-throttled by the per-access cost.
    stream_node_bytes: Vec<f64>,
    stream_xsock_bytes: f64,
}

impl<'m> ThreadCtx<'m> {
    fn new(m: &'m mut SimMachine, cpu: LogicalCpu, active_on_core: usize) -> Self {
        let topo = m.spec.topology;
        let core = topo.core_of(cpu);
        let socket = topo.socket_of(cpu);
        let part = |assoc: usize| -> WayRange {
            if active_on_core <= 1 {
                WayRange::full(assoc)
            } else {
                // Way-partition the private cache between SMT siblings.
                let share = (assoc / active_on_core).max(1);
                let idx = topo.smt_index_of(cpu).min(active_on_core - 1);
                let start = (share * idx).min(assoc - share);
                WayRange { start, len: share }
            }
        };
        let sockets = topo.sockets;
        ThreadCtx {
            l1w: part(m.spec.l1.assoc),
            l2w: part(m.spec.l2.assoc),
            m,
            cpu,
            core,
            socket,
            clock: 0.0,
            stream_node_bytes: vec![0.0; sockets],
            stream_xsock_bytes: 0.0,
        }
    }

    /// The logical CPU this simulated thread runs on.
    pub fn cpu(&self) -> LogicalCpu {
        self.cpu
    }

    /// The NUMA node (socket) this thread runs on.
    pub fn socket(&self) -> usize {
        self.socket
    }

    /// This thread's clock within the current phase, in cycles.
    pub fn thread_cycles(&self) -> f64 {
        self.clock
    }

    /// Random-access read of `len` bytes at `offset` in `region`.
    #[inline]
    pub fn read(&mut self, region: RegionId, offset: usize, len: usize) {
        self.access(region, offset, len, false, false);
    }

    /// Random-access write.
    #[inline]
    pub fn write(&mut self, region: RegionId, offset: usize, len: usize) {
        self.access(region, offset, len, true, false);
    }

    /// Sequential (prefetch-friendly) read of a byte range.
    #[inline]
    pub fn stream_read(&mut self, region: RegionId, offset: usize, len: usize) {
        self.access(region, offset, len, false, true);
    }

    /// Sequential write of a byte range.
    #[inline]
    pub fn stream_write(&mut self, region: RegionId, offset: usize, len: usize) {
        self.access(region, offset, len, true, true);
    }

    /// Atomic read-modify-write (`fetch_add` and friends): a random write
    /// access plus the atomic's extra latency.
    pub fn atomic_rmw(&mut self, region: RegionId, offset: usize, len: usize) {
        self.access(region, offset, len, true, false);
        self.clock += self.m.spec.cost.atomic_extra;
        self.m.mem.atomics += 1;
    }

    /// Charges `ops` arithmetic operations to this thread.
    #[inline]
    pub fn compute(&mut self, ops: u64) {
        self.clock += ops as f64 * self.m.spec.cost.op;
        self.m.mem.compute_ops += ops;
    }

    /// Charges raw cycles (fixed modelled costs).
    #[inline]
    pub fn charge(&mut self, cycles: f64) {
        self.clock += cycles;
    }

    /// Software-prefetch hint for `len` bytes at `offset` in `region` — the
    /// model of `hipa_core::prefetch` on the native path. Per line: the
    /// issue cost (one non-blocking uop, an ALU-op equivalent) is charged,
    /// the `mem.prefetches` counter ticks, and the line is pulled up to L2
    /// (a T1-style hint — the tiny L1 is left to the demand stream). Unlike
    /// a demand
    /// access, a line that misses all the way to DRAM does **not** pay the
    /// random-access latency — the hint was issued far enough ahead that
    /// the DRAM round-trip overlaps the intervening work. What cannot be
    /// hidden is channel occupancy: the fill charges its transfer time,
    /// `line_bytes / node_bw` for a local line or `line_bytes /
    /// interconnect_bw` for a remote one. The DRAM line counters still tick
    /// (traffic is real); the *stream* roofline bytes are left alone on
    /// purpose — demand random misses don't contribute there either, and a
    /// prefetched line is the same line the demand path would have fetched,
    /// so counting it would penalise the hinted run for identical traffic.
    /// Demand hit counters (`l1_hits`…) are untouched: they keep measuring
    /// demand accesses only.
    pub fn prefetch(&mut self, region: RegionId, offset: usize, len: usize) {
        debug_assert!(len > 0);
        let line_bytes = self.m.spec.l1.line_bytes as u64;
        let base = self.m.space.addr(region, 0);
        let addr = base + offset as u64;
        let first = addr / line_bytes;
        let last = (addr + len as u64 - 1) / line_bytes;
        let max_off = self.m.space.region_len(region).saturating_sub(1);
        for line in first..=last {
            let off = ((line * line_bytes).max(base) - base) as usize;
            self.prefetch_line(region, off.min(max_off), line);
        }
    }

    fn prefetch_line(&mut self, region: RegionId, offset: usize, line: u64) {
        let m = &mut *self.m;
        let cost = &m.spec.cost;
        m.mem.prefetches += 1;
        // Issue cost: one non-blocking uop in a spare issue slot — an
        // ALU-op equivalent, not a full L1-hit latency.
        self.clock += cost.op;
        if m.l1[self.core].probe(line, self.l1w, false) {
            return;
        }
        // Fills stop at L2 (a T1-style hint): promoting to the (small) L1
        // would evict the stream buffers the demand loops depend on; the
        // demand access promotes the line itself when it arrives.
        if m.l2[self.core].probe(line, self.l2w, false) {
            return;
        }
        let llc_ways = WayRange::full(self.m.spec.llc.assoc);
        if self.m.llc[self.socket].probe(line, llc_ways, false) {
            self.fill_l2(line, false);
            return;
        }
        // DRAM: latency is overlapped by the lookahead window; the thread
        // pays only the line's channel-transfer time.
        let owner = self.m.space_mut().touch(region, offset, self.socket);
        let local = owner == self.socket;
        let lb = self.m.spec.l1.line_bytes as f64;
        let cost = &self.m.spec.cost;
        self.clock += if local {
            lb / cost.node_bw_bytes_per_cycle
        } else {
            lb / cost.interconnect_bw_bytes_per_cycle
        };
        self.m.region_dram[region.index()] += 1;
        if local {
            self.m.mem.dram_local += 1;
        } else {
            self.m.mem.dram_remote += 1;
        }
        if self.m.spec.llc_inclusive {
            self.fill_llc(line, false);
        }
        self.fill_l2(line, false);
    }

    fn access(&mut self, region: RegionId, offset: usize, len: usize, write: bool, stream: bool) {
        debug_assert!(len > 0);
        let line_bytes = self.m.spec.l1.line_bytes as u64;
        let base = self.m.space.addr(region, 0);
        let addr = base + offset as u64;
        let first = addr / line_bytes;
        let last = (addr + len as u64 - 1) / line_bytes;
        let max_off = self.m.space.region_len(region).saturating_sub(1);
        for line in first..=last {
            // Regions are page-aligned, so every line of the region starts at
            // or after the base; its region offset locates the owning page.
            let off = ((line * line_bytes).max(base) - base) as usize;
            self.access_line(region, off.min(max_off), line, write, stream);
        }
    }

    fn access_line(
        &mut self,
        region: RegionId,
        offset: usize,
        line: u64,
        write: bool,
        stream: bool,
    ) {
        let m = &mut *self.m;
        let cost = &m.spec.cost;
        if write {
            m.mem.writes += 1;
        } else {
            m.mem.reads += 1;
        }
        // L1.
        if m.l1[self.core].probe(line, self.l1w, write) {
            m.mem.l1_hits += 1;
            self.clock += cost.l1_hit;
            return;
        }
        // L2.
        if m.l2[self.core].probe(line, self.l2w, false) {
            m.mem.l2_hits += 1;
            self.clock += cost.l2_hit;
            self.fill_l1(line, write);
            return;
        }
        // LLC (shared, full ways).
        let llc_ways = WayRange::full(self.m.spec.llc.assoc);
        if self.m.llc[self.socket].probe(line, llc_ways, false) {
            self.m.mem.llc_hits += 1;
            self.clock += self.m.spec.cost.llc_hit;
            self.fill_l2(line, false);
            self.fill_l1(line, write);
            return;
        }
        // DRAM. A first-touch page is claimed by this thread's node.
        let owner = self.m.space_mut().touch(region, offset, self.socket);
        let local = owner == self.socket;
        let cost = &self.m.spec.cost;
        self.clock += match (stream, local) {
            (true, true) => cost.dram_stream_local,
            (true, false) => cost.dram_stream_remote,
            (false, true) => cost.dram_random_local,
            (false, false) => cost.dram_random_remote,
        };
        let lb = self.m.spec.l1.line_bytes as f64;
        self.m.region_dram[region.index()] += 1;
        if local {
            self.m.mem.dram_local += 1;
        } else {
            self.m.mem.dram_remote += 1;
            if stream {
                self.stream_xsock_bytes += lb;
            }
        }
        if stream {
            self.stream_node_bytes[owner] += lb;
        }
        if self.m.spec.llc_inclusive {
            self.fill_llc(line, false);
        }
        self.fill_l2(line, false);
        self.fill_l1(line, write);
    }

    fn fill_l1(&mut self, line: u64, dirty: bool) {
        if let Some(v) = self.m.l1[self.core].insert(line, dirty, self.l1w) {
            if v.dirty {
                // Write the dirty victim back into L2.
                if self.m.l2[self.core].contains(v.line) {
                    self.m.l2[self.core].mark_dirty(v.line);
                } else {
                    self.fill_l2(v.line, true);
                }
            }
        }
    }

    fn fill_l2(&mut self, line: u64, dirty: bool) {
        if let Some(v) = self.m.l2[self.core].insert(line, dirty, self.l2w) {
            if self.m.spec.llc_inclusive {
                // Inclusive LLC already tracks the line; just propagate dirt.
                if self.m.llc[self.socket].contains(v.line) {
                    if v.dirty {
                        self.m.llc[self.socket].mark_dirty(v.line);
                    }
                } else if v.dirty {
                    self.writeback(v.line);
                }
            } else {
                // Non-inclusive LLC acts as a victim cache for L2 evictions.
                self.fill_llc(v.line, v.dirty);
            }
        }
    }

    fn fill_llc(&mut self, line: u64, dirty: bool) {
        let ways = WayRange::full(self.m.spec.llc.assoc);
        if self.m.llc[self.socket].contains(line) {
            if dirty {
                self.m.llc[self.socket].mark_dirty(line);
            }
            return;
        }
        if let Some(v) = self.m.llc[self.socket].insert(line, dirty, ways) {
            let mut victim_dirty = v.dirty;
            if self.m.spec.llc_inclusive {
                // Inclusive LLC: evicted lines may not live in any private
                // cache of this socket — back-invalidate them.
                let topo = self.m.spec.topology;
                let lo = self.socket * topo.cores_per_socket;
                for core in lo..lo + topo.cores_per_socket {
                    if let Some(d) = self.m.l1[core].invalidate(v.line) {
                        victim_dirty |= d;
                    }
                    if let Some(d) = self.m.l2[core].invalidate(v.line) {
                        victim_dirty |= d;
                    }
                }
            }
            if victim_dirty {
                self.writeback(v.line);
            }
        }
    }

    fn writeback(&mut self, line: u64) {
        let lb = self.m.spec.l1.line_bytes;
        let region = self.m.space.region_of_addr(line * lb as u64);
        self.m.region_dram[region.index()] += 1;
        let owner = self.m.space.owner_of_addr(line * lb as u64);
        // Write-backs are bursty DMA-like traffic: count them against the
        // bandwidth roofline like streams.
        if owner == self.socket {
            self.m.mem.wb_local += 1;
        } else {
            self.m.mem.wb_remote += 1;
            self.stream_xsock_bytes += lb as f64;
        }
        self.stream_node_bytes[owner] += lb as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    fn machine() -> SimMachine {
        SimMachine::new(MachineSpec::tiny_test())
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut m = machine();
        let r = m.alloc("a", 4096, Placement::Node(0));
        m.seq(|ctx| {
            ctx.read(r, 0, 4);
            ctx.read(r, 0, 4);
            ctx.read(r, 8, 4); // same line
        });
        let c = m.counters();
        assert_eq!(c.dram_local + c.dram_remote, 1);
        assert_eq!(c.l1_hits, 2);
    }

    #[test]
    fn local_vs_remote_classification() {
        let mut m = machine();
        let r0 = m.alloc("n0", 4096, Placement::Node(0));
        let r1 = m.alloc("n1", 4096, Placement::Node(1));
        // Sequential context runs on logical CPU 0 = socket 0.
        m.seq(|ctx| {
            assert_eq!(ctx.socket(), 0);
            ctx.read(r0, 0, 4);
            ctx.read(r1, 0, 4);
        });
        let c = m.counters();
        assert_eq!(c.dram_local, 1);
        assert_eq!(c.dram_remote, 1);
    }

    #[test]
    fn remote_access_costs_more() {
        let mut m1 = machine();
        let r = m1.alloc("n0", 4096, Placement::Node(0));
        m1.seq(|ctx| ctx.read(r, 0, 4));
        let local_cycles = m1.cycles();

        let mut m2 = machine();
        let r = m2.alloc("n1", 4096, Placement::Node(1));
        m2.seq(|ctx| ctx.read(r, 0, 4));
        let remote_cycles = m2.cycles();
        assert!(remote_cycles > local_cycles);
    }

    #[test]
    fn streaming_cheaper_than_random() {
        let spec = MachineSpec::tiny_test();
        let bytes = 64 * 1024;
        let mut m1 = SimMachine::new(spec.clone());
        let r = m1.alloc("a", bytes, Placement::Node(0));
        m1.seq(|ctx| ctx.stream_read(r, 0, bytes));
        let stream = m1.cycles();

        let mut m2 = SimMachine::new(spec);
        let r = m2.alloc("a", bytes, Placement::Node(0));
        m2.seq(|ctx| {
            // Touch the same lines in a cache-defeating stride order.
            let lines = bytes / 64;
            let mut i = 0;
            for _ in 0..lines {
                ctx.read(r, i * 64, 4);
                i = (i + 97) % lines; // coprime stride
            }
        });
        let random = m2.cycles();
        assert!(stream * 2.0 < random, "stream {stream} vs random {random}");
    }

    #[test]
    fn multi_line_access_touches_each_line() {
        let mut m = machine();
        let r = m.alloc("a", 4096, Placement::Node(0));
        m.seq(|ctx| ctx.stream_read(r, 0, 256)); // 4 lines
        assert_eq!(m.counters().reads, 4);
    }

    #[test]
    fn phase_advances_wall_clock_by_max_thread() {
        let mut m = machine();
        let r = m.alloc("a", 1 << 16, Placement::Node(0));
        let pool = m.create_pool(2, &ThreadPlacement::RoundRobin);
        let before = m.cycles();
        m.phase(pool, |i, ctx| {
            // Thread 1 does twice the work.
            let n = if i == 0 { 10 } else { 20 };
            for k in 0..n {
                ctx.read(r, (k * 64) % (1 << 16), 4);
            }
            ctx.compute(1000);
        });
        let stat = m.phase_stats().last().unwrap().clone();
        assert!(m.cycles() > before);
        assert!(stat.max_thread_cycles > 0.0);
        // Phase time includes the barrier.
        assert!(stat.cycles >= stat.max_thread_cycles);
    }

    #[test]
    fn pool_binding_counts_migrations_and_costs_time() {
        let mut m = machine();
        let t0 = m.cycles();
        let _ = m.create_pool(4, &ThreadPlacement::BindNode(vec![0, 0, 1, 1]));
        assert_eq!(m.threads_created(), 4);
        // tiny_test has 8 logical CPUs; a random 4-thread placement nearly
        // always needs at least one move (verified deterministic via seed).
        assert!(m.migrations() > 0);
        assert!(m.cycles() > t0);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut m = machine();
            let r = m.alloc("a", 1 << 14, Placement::Interleaved);
            let pool = m.create_pool(4, &ThreadPlacement::OsRandom);
            m.phase(pool, |i, ctx| {
                for k in 0..100 {
                    ctx.read(r, ((i * 1000 + k * 67) % 256) * 64, 4);
                }
            });
            (m.cycles(), *m.counters())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn capacity_eviction_reaches_dram_twice() {
        let mut m = machine();
        // Working set far beyond L1+L2+LLC of the tiny machine (20.5 KB).
        let bytes = 256 * 1024;
        let r = m.alloc("a", bytes, Placement::Node(0));
        m.seq(|ctx| {
            ctx.stream_read(r, 0, bytes);
            ctx.stream_read(r, 0, bytes);
        });
        let c = m.counters();
        // Second pass misses again: demand DRAM lines ~ 2 * lines.
        let lines = (bytes / 64) as u64;
        assert!(c.dram_local > 2 * lines - lines / 4, "dram {} vs lines {}", c.dram_local, lines);
    }

    #[test]
    fn dirty_writebacks_counted() {
        let mut m = machine();
        let bytes = 256 * 1024;
        let r = m.alloc("a", bytes, Placement::Node(0));
        m.seq(|ctx| {
            ctx.stream_write(r, 0, bytes);
            // Force eviction of the dirty lines with a second big region.
        });
        let r2 = m.alloc("b", bytes, Placement::Node(0));
        m.seq(|ctx| ctx.stream_read(r2, 0, bytes));
        assert!(m.counters().wb_local > 0, "no write-backs recorded");
    }

    #[test]
    fn smt_sharing_halves_effective_private_cache() {
        // Two threads on the SAME physical core (way-partitioned) should
        // miss more than two threads on different cores, for a working set
        // that fits one full L2 but not half of it.
        let spec = MachineSpec::tiny_test();
        let bytes = 3 * 1024; // per-thread set: fits the 4 KB L2, not a 2 KB half
        let run = |cpus: Vec<LogicalCpu>| {
            let mut m = SimMachine::new(spec.clone());
            let r = m.alloc("a", 16 * 1024, Placement::Node(0));
            let pool = m.create_pool(2, &ThreadPlacement::Pinned(cpus));
            // Warm then re-read: steady-state private-cache hits are what
            // differ. Each thread has a disjoint working set.
            for _ in 0..4 {
                m.phase(pool, |i, ctx| {
                    let lines = bytes / 64;
                    let base = i * 8 * 1024;
                    let mut k = 0;
                    for _ in 0..lines {
                        ctx.read(r, base + k * 64, 4);
                        k = (k + 29) % lines;
                    }
                });
            }
            m.counters().l1_hits + m.counters().l2_hits
        };
        // tiny_test: 2 sockets x 2 cores x 2 smt; physical cores = 4.
        // CPUs 0 and 4 are siblings on core 0; CPUs 0 and 1 are different cores.
        let shared_hits = run(vec![LogicalCpu(0), LogicalCpu(4)]);
        let split_hits = run(vec![LogicalCpu(0), LogicalCpu(1)]);
        assert!(
            shared_hits < split_hits,
            "shared-core private hits {shared_hits} >= split {split_hits}"
        );
    }

    #[test]
    fn seq_work_accrues_time() {
        let mut m = machine();
        let before = m.cycles();
        m.seq(|ctx| ctx.compute(10_000));
        assert!(m.cycles() > before);
        assert_eq!(m.counters().compute_ops, 10_000);
    }

    #[test]
    fn first_touch_claims_pages_for_the_toucher() {
        let mut m = machine();
        let r = m.alloc("ft", 4 * 4096, Placement::FirstTouch);
        // tiny_test: logical 0/1 are socket 0 cores; 2/3 are socket 1.
        let pool = m.create_pool(2, &ThreadPlacement::Pinned(vec![LogicalCpu(0), LogicalCpu(2)]));
        m.phase(pool, |i, ctx| {
            // Thread 0 (socket 0) touches pages 0-1; thread 1 (socket 1)
            // touches pages 2-3.
            let base = i * 2 * 4096;
            ctx.read(r, base, 4);
            ctx.read(r, base + 4096, 4);
        });
        assert_eq!(m.space().owner_of(r, 0), 0);
        assert_eq!(m.space().owner_of(r, 4096), 0);
        assert_eq!(m.space().owner_of(r, 2 * 4096), 1);
        assert_eq!(m.space().owner_of(r, 3 * 4096), 1);
        // Re-reading from the other socket is now remote, not a re-claim.
        let pool2 = m.create_pool(1, &ThreadPlacement::Pinned(vec![LogicalCpu(1)]));
        let before = m.counters().dram_remote;
        m.phase(pool2, |_, ctx| {
            // Different line on a socket-1-owned page so it misses.
            ctx.read(r, 2 * 4096 + 512, 4);
        });
        assert_eq!(m.counters().dram_remote, before + 1);
    }

    #[test]
    fn region_traffic_breakdown_sums_to_dram_counters() {
        let mut m = machine();
        let a = m.alloc("hot", 1 << 16, Placement::Node(0));
        let b = m.alloc("cold", 1 << 16, Placement::Node(1));
        m.seq(|ctx| {
            ctx.stream_read(a, 0, 1 << 16);
            ctx.read(b, 0, 4);
        });
        let by_region = m.dram_lines_by_region();
        let total: u64 = by_region.iter().map(|(_, l)| l).sum();
        let c = m.counters();
        assert_eq!(total, c.dram_lines());
        assert_eq!(by_region[0].0, "hot");
        assert!(by_region[0].1 > by_region[1].1);
    }

    #[test]
    fn report_snapshot_consistent() {
        let mut m = machine();
        let r = m.alloc("a", 4096, Placement::Node(1));
        m.seq(|ctx| ctx.read(r, 0, 4));
        let rep = m.report("test");
        assert_eq!(rep.mem.dram_remote, 1);
        assert!(rep.seconds() > 0.0);
        assert_eq!(rep.machine, "tiny-test");
    }
}
