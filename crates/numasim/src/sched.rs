//! OS thread-placement model.
//!
//! The paper's §3.3 argues that (a) a NUMA-oblivious runtime lets the OS
//! place worker threads on arbitrary logical cores — possibly two on the
//! same physical core even when half the machine is idle — and (b) binding
//! threads after the fact (Algorithm 1) migrates them, paying a remote-
//! memory context transfer each time. This module models exactly those two
//! behaviours, deterministically from the machine seed.

use crate::topology::{LogicalCpu, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// How an engine asks for its threads to be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadPlacement {
    /// The OS picks distinct logical CPUs uniformly at random, ignoring
    /// physical-core status (NUMA-oblivious engines: p-PR, v-PR, GPOP).
    OsRandom,
    /// Idealised OS: fills first hardware threads of every physical core
    /// before any second thread (used by ablations).
    RoundRobin,
    /// Exact logical CPUs, one per thread — HiPa's thread-data pinning
    /// (affinity is set before the thread first runs, so no migration).
    Pinned(Vec<LogicalCpu>),
    /// Thread `i` must end on NUMA node `nodes[i]`: the OS first places it
    /// randomly, then the runtime binds it, migrating it if the random spot
    /// was on the wrong node (Polymer / Algorithm 1 behaviour).
    BindNode(Vec<usize>),
}

/// Result of placing one pool of threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementResult {
    pub cpus: Vec<LogicalCpu>,
    /// Threads that had to migrate to satisfy a node binding.
    pub migrations: u64,
}

/// Places `n` threads according to the policy.
///
/// # Panics
/// Panics if `n` exceeds the number of logical CPUs, or if a pinned/bound
/// request is inconsistent with the topology.
pub fn place(
    topo: &Topology,
    rng: &mut StdRng,
    n: usize,
    policy: &ThreadPlacement,
) -> PlacementResult {
    let total = topo.logical_cpus();
    assert!(n <= total, "{n} threads exceed {total} logical CPUs");
    match policy {
        ThreadPlacement::OsRandom => {
            // A CFS-like scheduler balances load across physical cores
            // before doubling up SMT siblings, but is oblivious to which
            // *node* a thread's data lives on — that is the randomness the
            // paper's §3.3 complains about. Model: a random permutation of
            // physical cores (first hardware threads), then, if more
            // threads than cores, a random permutation of the siblings.
            let pc = topo.physical_cores();
            let mut firsts: Vec<LogicalCpu> = (0..pc).map(LogicalCpu).collect();
            firsts.shuffle(rng);
            let mut cpus = firsts;
            if n > pc {
                let mut seconds: Vec<LogicalCpu> = (pc..total).map(LogicalCpu).collect();
                seconds.shuffle(rng);
                cpus.extend(seconds);
            }
            cpus.truncate(n);
            PlacementResult { cpus, migrations: 0 }
        }
        ThreadPlacement::RoundRobin => {
            PlacementResult { cpus: (0..n).map(LogicalCpu).collect(), migrations: 0 }
        }
        ThreadPlacement::Pinned(cpus) => {
            assert_eq!(cpus.len(), n, "pinned list length mismatch");
            let mut seen = vec![false; total];
            for c in cpus {
                assert!(c.0 < total, "pinned cpu {} out of range", c.0);
                assert!(!seen[c.0], "cpu {} pinned twice", c.0);
                seen[c.0] = true;
            }
            PlacementResult { cpus: cpus.clone(), migrations: 0 }
        }
        ThreadPlacement::BindNode(nodes) => {
            assert_eq!(nodes.len(), n, "bind list length mismatch");
            // OS-random initial placement...
            let mut all: Vec<LogicalCpu> = (0..total).map(LogicalCpu).collect();
            all.shuffle(rng);
            let initial = &all[..n];
            // CPUs held by threads that already sit on their requested node
            // stay occupied; everything else (idle CPUs and the seats of
            // threads about to migrate away) is free for migration targets.
            let staying: Vec<LogicalCpu> = initial
                .iter()
                .zip(nodes)
                .filter(|(c, &want)| topo.socket_of(**c) == want)
                .map(|(c, _)| *c)
                .collect();
            let mut free: Vec<Vec<LogicalCpu>> = (0..topo.sockets)
                .map(|s| {
                    let mut v = topo.logicals_on_socket(s);
                    v.retain(|c| !staying.contains(c));
                    v
                })
                .collect();
            // ...then bind: wrong-node threads migrate to a free CPU on the
            // requested node.
            let mut cpus = Vec::with_capacity(n);
            let mut migrations = 0;
            for (i, &want) in nodes.iter().enumerate() {
                assert!(want < topo.sockets, "node {want} out of range");
                let cur = initial[i];
                if topo.socket_of(cur) == want {
                    cpus.push(cur);
                } else {
                    let dest =
                        free[want].pop().expect("binding demands more CPUs on a node than it has");
                    cpus.push(dest);
                    migrations += 1;
                }
            }
            PlacementResult { cpus, migrations }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn topo() -> Topology {
        Topology::new(2, 4, 2) // 8 physical, 16 logical
    }

    #[test]
    fn os_random_distinct_and_deterministic() {
        let t = topo();
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = place(&t, &mut r1, 8, &ThreadPlacement::OsRandom);
        let b = place(&t, &mut r2, 8, &ThreadPlacement::OsRandom);
        assert_eq!(a, b);
        let mut cpus = a.cpus.clone();
        cpus.sort();
        cpus.dedup();
        assert_eq!(cpus.len(), 8);
        assert_eq!(a.migrations, 0);
    }

    #[test]
    fn os_random_spreads_cores_but_ignores_nodes() {
        let t = topo(); // 8 physical cores, 2 nodes
                        // Up to the physical core count, no core is doubled (CFS balances).
        let mut rng = StdRng::seed_from_u64(5);
        let p = place(&t, &mut rng, 8, &ThreadPlacement::OsRandom);
        let mut cores: Vec<_> = p.cpus.iter().map(|&c| t.core_of(c)).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 8, "no SMT doubling below core count");
        // Beyond it, siblings get used.
        let mut rng = StdRng::seed_from_u64(5);
        let p = place(&t, &mut rng, 12, &ThreadPlacement::OsRandom);
        let mut cores: Vec<_> = p.cpus.iter().map(|&c| t.core_of(c)).collect();
        cores.sort_unstable();
        let before = cores.len();
        cores.dedup();
        assert!(cores.len() < before, "siblings must double up past core count");
        // Node assignment of a *partial* placement is random: across seeds
        // the first 4 threads land on node 0 in varying numbers.
        let mut counts = std::collections::HashSet::new();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = place(&t, &mut rng, 4, &ThreadPlacement::OsRandom);
            counts.insert(p.cpus.iter().filter(|&&c| t.socket_of(c) == 0).count());
        }
        assert!(counts.len() > 1, "node split should vary across seeds");
    }

    #[test]
    fn round_robin_uses_physical_first() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(0);
        let p = place(&t, &mut rng, 8, &ThreadPlacement::RoundRobin);
        for (i, c) in p.cpus.iter().enumerate() {
            assert_eq!(c.0, i);
            assert_eq!(t.smt_index_of(*c), 0);
        }
    }

    #[test]
    fn bind_node_lands_on_requested_nodes() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(3);
        let nodes = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let p = place(&t, &mut rng, 8, &ThreadPlacement::BindNode(nodes.clone()));
        for (i, c) in p.cpus.iter().enumerate() {
            assert_eq!(t.socket_of(*c), nodes[i]);
        }
        // Some of the random initial spots must have been wrong.
        assert!(p.migrations > 0);
        assert!(p.migrations <= 8);
    }

    #[test]
    fn pinned_is_exact() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(0);
        let want = vec![LogicalCpu(3), LogicalCpu(11)];
        let p = place(&t, &mut rng, 2, &ThreadPlacement::Pinned(want.clone()));
        assert_eq!(p.cpus, want);
        assert_eq!(p.migrations, 0);
    }

    #[test]
    #[should_panic(expected = "pinned twice")]
    fn pinned_rejects_duplicates() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(0);
        place(&t, &mut rng, 2, &ThreadPlacement::Pinned(vec![LogicalCpu(1), LogicalCpu(1)]));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_threads_rejected() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(0);
        place(&t, &mut rng, 17, &ThreadPlacement::OsRandom);
    }
}
