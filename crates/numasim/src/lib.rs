//! A deterministic NUMA multicore machine simulator.
//!
//! The paper's measurements (execution time, remote memory accesses, LLC
//! hits, scalability under hyper-threading) were taken on two real Intel
//! machines. This environment has a single core and no NUMA, so the
//! reproduction substitutes a parameterised *model* of those machines — see
//! `DESIGN.md` §2 for the substitution argument.
//!
//! The simulator executes the *actual* computation of an engine: the engine
//! performs its real loads/stores on its own Rust data and mirrors each of
//! them through a [`ThreadCtx`], which drives
//!
//! * a three-level set-associative write-back cache hierarchy
//!   ([`cache`]) — private L1/L2 per physical core (way-partitioned between
//!   SMT siblings when both are active), shared LLC per socket, with
//!   inclusive (Haswell) or non-inclusive (Skylake) LLC policy;
//! * a NUMA address space ([`mem`]) where every region's pages carry an
//!   owning node, so each DRAM-level access is classified local or remote;
//! * a cost model ([`spec`]) with distinct random-access and streaming DRAM
//!   costs, plus a per-phase roofline bandwidth-congestion model
//!   ([`machine`]) that stretches a phase when its threads demand more
//!   bytes/cycle from a node's DRAM (or from the socket interconnect) than
//!   the hardware provides;
//! * an OS-scheduler model ([`sched`]) that places threads randomly (as a
//!   NUMA-oblivious runtime would), counts thread creations, and counts the
//!   migrations incurred by NUMA binding (paper §3.3's 160-vs-16 argument).
//!
//! Everything is deterministic given the machine seed, so every table in
//! `EXPERIMENTS.md` regenerates bit-identically.
#![forbid(unsafe_code)]

pub mod cache;
pub mod counters;
pub mod machine;
pub mod mem;
pub mod sched;
pub mod spec;
pub mod topology;

pub use cache::{Cache, CacheConfig};
pub use counters::{MemCounters, PhaseStat, SimReport};
pub use machine::{PhaseBalance, PoolId, SimMachine, ThreadCtx};
pub use mem::{Placement, RegionId};
pub use sched::ThreadPlacement;
pub use spec::{CostModel, MachineSpec};
pub use topology::{LogicalCpu, Topology};
