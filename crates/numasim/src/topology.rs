//! Machine topology: sockets (NUMA nodes), physical cores, SMT siblings.
//!
//! Logical CPUs are enumerated the way Linux enumerates them on Intel
//! two-way-SMT parts: logical ids `0 .. P-1` are the first hardware thread
//! of each physical core (socket-major), ids `P .. 2P-1` are the second
//! thread, so logical `L` sits on physical core `L % P`.

/// A logical CPU (hardware thread) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalCpu(pub usize);

/// Sockets × cores × SMT description of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of sockets; each socket is one NUMA node (paper §2.2).
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per physical core (2 = Hyper-Threading).
    pub smt: usize,
}

impl Topology {
    pub fn new(sockets: usize, cores_per_socket: usize, smt: usize) -> Self {
        assert!(sockets >= 1 && cores_per_socket >= 1 && smt >= 1);
        Topology { sockets, cores_per_socket, smt }
    }

    /// Total physical cores.
    #[inline]
    pub fn physical_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total logical CPUs (the paper's "logic cores").
    #[inline]
    pub fn logical_cpus(&self) -> usize {
        self.physical_cores() * self.smt
    }

    /// Physical core of a logical CPU.
    #[inline]
    pub fn core_of(&self, l: LogicalCpu) -> usize {
        assert!(l.0 < self.logical_cpus(), "logical cpu {} out of range", l.0);
        l.0 % self.physical_cores()
    }

    /// SMT sibling index (0 or 1 on two-way SMT) of a logical CPU.
    #[inline]
    pub fn smt_index_of(&self, l: LogicalCpu) -> usize {
        assert!(l.0 < self.logical_cpus());
        l.0 / self.physical_cores()
    }

    /// Socket (NUMA node) of a physical core.
    #[inline]
    pub fn socket_of_core(&self, core: usize) -> usize {
        assert!(core < self.physical_cores());
        core / self.cores_per_socket
    }

    /// Socket (NUMA node) of a logical CPU.
    #[inline]
    pub fn socket_of(&self, l: LogicalCpu) -> usize {
        self.socket_of_core(self.core_of(l))
    }

    /// All logical CPUs on a given socket, first-threads first.
    pub fn logicals_on_socket(&self, socket: usize) -> Vec<LogicalCpu> {
        (0..self.logical_cpus()).map(LogicalCpu).filter(|&l| self.socket_of(l) == socket).collect()
    }

    /// Restricts the machine to its first `sockets` sockets (the paper's
    /// single-node experiment in §4.5).
    pub fn with_sockets(mut self, sockets: usize) -> Self {
        assert!(sockets >= 1 && sockets <= self.sockets);
        self.sockets = sockets;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_like_enumeration() {
        // 2 sockets x 10 cores x 2 SMT = 40 logical.
        let t = Topology::new(2, 10, 2);
        assert_eq!(t.physical_cores(), 20);
        assert_eq!(t.logical_cpus(), 40);
        // Logical 0 and 20 are siblings on core 0, socket 0.
        assert_eq!(t.core_of(LogicalCpu(0)), 0);
        assert_eq!(t.core_of(LogicalCpu(20)), 0);
        assert_eq!(t.smt_index_of(LogicalCpu(0)), 0);
        assert_eq!(t.smt_index_of(LogicalCpu(20)), 1);
        // Logical 15 is core 15 which lives on socket 1.
        assert_eq!(t.socket_of(LogicalCpu(15)), 1);
        assert_eq!(t.socket_of(LogicalCpu(5)), 0);
    }

    #[test]
    fn logicals_on_socket_complete_and_disjoint() {
        let t = Topology::new(2, 4, 2);
        let s0 = t.logicals_on_socket(0);
        let s1 = t.logicals_on_socket(1);
        assert_eq!(s0.len() + s1.len(), t.logical_cpus());
        for l in &s0 {
            assert_eq!(t.socket_of(*l), 0);
        }
        assert_eq!(
            s0,
            vec![
                LogicalCpu(0),
                LogicalCpu(1),
                LogicalCpu(2),
                LogicalCpu(3),
                LogicalCpu(8),
                LogicalCpu(9),
                LogicalCpu(10),
                LogicalCpu(11)
            ]
        );
    }

    #[test]
    fn with_sockets_shrinks() {
        let t = Topology::new(2, 10, 2).with_sockets(1);
        assert_eq!(t.logical_cpus(), 20);
    }

    #[test]
    #[should_panic]
    fn core_of_checks_range() {
        Topology::new(1, 2, 2).core_of(LogicalCpu(4));
    }
}
