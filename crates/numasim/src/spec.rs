//! Machine specifications: topology + cache geometry + cost model, with the
//! two presets the paper evaluates on and a scaling knob that shrinks the
//! caches alongside the scaled-down graph datasets.

use crate::cache::CacheConfig;
use crate::topology::Topology;

/// Latency/bandwidth/overhead parameters, all in core cycles unless noted.
///
/// All memory costs are *effective* (throughput) costs, not raw load-to-use
/// latencies: an out-of-order core keeps ~8–10 misses in flight, so the
/// effective cost of a random DRAM access is roughly latency / MLP. The
/// streaming costs are derived directly from the paper's §2.2 measurement —
/// sequentially reading 1 GB takes 0.06 s locally vs 0.40 s remotely on the
/// Xeon 4210, i.e. ≈ 8 vs ≈ 53 cycles per 64-byte line at 2.2 GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub ghz: f64,
    pub l1_hit: f64,
    pub l2_hit: f64,
    pub llc_hit: f64,
    /// Random (pointer-chasing) DRAM access, local node.
    pub dram_random_local: f64,
    /// Random DRAM access, remote node.
    pub dram_random_remote: f64,
    /// Per-line cost of streaming from local DRAM.
    pub dram_stream_local: f64,
    /// Per-line cost of streaming from remote DRAM.
    pub dram_stream_remote: f64,
    /// Sustainable DRAM bandwidth per NUMA node, bytes per cycle.
    pub node_bw_bytes_per_cycle: f64,
    /// Sustainable cross-socket interconnect bandwidth, bytes per cycle.
    pub interconnect_bw_bytes_per_cycle: f64,
    /// Extra cost of an atomic read-modify-write beyond the plain access.
    pub atomic_extra: f64,
    /// One arithmetic op (fractional — superscalar cores retire several per
    /// cycle).
    pub op: f64,
    /// Combined throughput of two SMT siblings sharing a physical core,
    /// relative to one thread running alone (≈1.2–1.3 on Intel). Each
    /// sharing thread runs at `smt_throughput / 2` of full speed.
    pub smt_throughput: f64,
    /// Creating a pool of threads (one parallel region entry).
    pub spawn: f64,
    /// Migrating one thread across cores/nodes (§3.3: context moves through
    /// remote memory).
    pub migration: f64,
    /// Barrier synchronisation at the end of a phase.
    pub barrier: f64,
}

/// A complete simulated machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    pub name: String,
    pub topology: Topology,
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    /// LLC *per socket*.
    pub llc: CacheConfig,
    /// Inclusive LLC (Haswell) back-invalidates private caches on eviction;
    /// non-inclusive (Skylake) fills bypass the LLC and it acts as a victim
    /// cache for L2 evictions. §4.5 hinges on this difference.
    pub llc_inclusive: bool,
    pub cost: CostModel,
    /// RNG seed for the OS-placement model.
    pub seed: u64,
}

impl MachineSpec {
    /// The paper's main machine (§4.1): two Intel Xeon Silver 4210
    /// (Skylake-SP derivative, 14 nm), 10 physical / 20 logical cores per
    /// socket, 1 MB L2 per core, 13.75 MB shared non-inclusive LLC,
    /// 128 GB DRAM per node.
    ///
    /// (The 4210's data sheet L1d is 32 KB; the paper's "64 KB" counts
    /// L1i + L1d. The data side is what matters here.)
    pub fn skylake_4210() -> Self {
        MachineSpec {
            name: "skylake-4210".into(),
            topology: Topology::new(2, 10, 2),
            l1: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new(1024 * 1024, 64, 16),
            llc: CacheConfig::new(13_750 * 1024 + 10 * 1024, 64, 11),
            llc_inclusive: false,
            cost: CostModel {
                ghz: 2.2,
                l1_hit: 1.5,
                l2_hit: 5.0,
                llc_hit: 12.0,
                dram_random_local: 25.0,
                dram_random_remote: 30.0,
                dram_stream_local: 8.0,
                dram_stream_remote: 53.0,
                node_bw_bytes_per_cycle: 40.0,
                interconnect_bw_bytes_per_cycle: 12.5,
                atomic_extra: 15.0,
                op: 0.4,
                smt_throughput: 1.2,
                spawn: 12_000.0,
                migration: 40_000.0,
                barrier: 3_000.0,
            },
            seed: 0x5EED_0001,
        }
    }

    /// The paper's older machine (§4.5): two Intel Xeon E5-2667 v3
    /// (Haswell, 22 nm), 8 cores per socket, 256 KB L2 per core, 2.5 MB of
    /// *inclusive* LLC per core, 64 GB total DRAM.
    pub fn haswell_e5_2667() -> Self {
        MachineSpec {
            name: "haswell-e5-2667".into(),
            topology: Topology::new(2, 8, 2),
            l1: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new(256 * 1024, 64, 8),
            llc: CacheConfig::new(20 * 1024 * 1024, 64, 20),
            llc_inclusive: true,
            cost: CostModel {
                ghz: 3.2,
                l1_hit: 1.5,
                l2_hit: 4.0,
                llc_hit: 10.0,
                dram_random_local: 28.0,
                dram_random_remote: 34.0,
                dram_stream_local: 10.0,
                dram_stream_remote: 65.0,
                node_bw_bytes_per_cycle: 26.0,
                interconnect_bw_bytes_per_cycle: 8.5,
                atomic_extra: 16.0,
                op: 0.4,
                smt_throughput: 1.2,
                spawn: 12_000.0,
                migration: 45_000.0,
                barrier: 3_000.0,
            },
            seed: 0x5EED_0002,
        }
    }

    /// A tiny 2-socket machine for unit tests: 2 cores per socket, 2-way
    /// SMT, very small caches so capacity effects appear with toy data.
    pub fn tiny_test() -> Self {
        MachineSpec {
            name: "tiny-test".into(),
            topology: Topology::new(2, 2, 2),
            l1: CacheConfig::new(512, 64, 2),
            l2: CacheConfig::new(4 * 1024, 64, 4),
            llc: CacheConfig::new(16 * 1024, 64, 4),
            llc_inclusive: false,
            cost: CostModel {
                ghz: 1.0,
                l1_hit: 1.5,
                l2_hit: 5.0,
                llc_hit: 12.0,
                dram_random_local: 25.0,
                dram_random_remote: 30.0,
                dram_stream_local: 8.0,
                dram_stream_remote: 53.0,
                node_bw_bytes_per_cycle: 40.0,
                interconnect_bw_bytes_per_cycle: 12.5,
                atomic_extra: 15.0,
                op: 0.4,
                smt_throughput: 1.2,
                spawn: 12_000.0,
                migration: 40_000.0,
                barrier: 3_000.0,
            },
            seed: 0x5EED_00FF,
        }
    }

    /// Shrinks all cache capacities by `divisor`, keeping everything else.
    /// The experiment harnesses pair `scaled(64)` machines with the ~64×
    /// scaled-down datasets so partition-size effects keep their shape
    /// (DESIGN.md §2).
    pub fn scaled(mut self, divisor: usize) -> Self {
        self.l1 = self.l1.scaled(divisor);
        self.l2 = self.l2.scaled(divisor);
        self.llc = self.llc.scaled(divisor);
        self.name = format!("{}/{}x", self.name, divisor);
        self
    }

    /// Restricts to the first `n` sockets (§4.5 single-node experiment).
    pub fn with_sockets(mut self, n: usize) -> Self {
        self.topology = self.topology.with_sockets(n);
        self
    }

    /// Replaces the placement-model seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_paper_setup() {
        let m = MachineSpec::skylake_4210();
        assert_eq!(m.topology.logical_cpus(), 40);
        assert_eq!(m.l2.size_bytes, 1024 * 1024);
        assert!(!m.llc_inclusive);
    }

    #[test]
    fn haswell_matches_paper_setup() {
        let m = MachineSpec::haswell_e5_2667();
        assert_eq!(m.topology.logical_cpus(), 32);
        assert_eq!(m.l2.size_bytes, 256 * 1024);
        assert!(m.llc_inclusive);
    }

    #[test]
    fn stream_ratio_matches_paper_observation() {
        // §2.2: 1 GB sequential read, 0.06 s local vs 0.40 s remote.
        let c = MachineSpec::skylake_4210().cost;
        let ratio = c.dram_stream_remote / c.dram_stream_local;
        assert!((6.0..7.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scaled_divides_caches_only() {
        let m = MachineSpec::skylake_4210().scaled(64);
        assert_eq!(m.l2.size_bytes, 16 * 1024);
        assert_eq!(m.topology.logical_cpus(), 40);
        assert_eq!(m.cost.ghz, 2.2);
    }
}
