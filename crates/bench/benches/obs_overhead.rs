//! Criterion benches proving the observability layer costs nothing when off.
//!
//! Two angles:
//! * `engine_trace_off_vs_on` — HiPa's native path with the recorder
//!   disabled vs enabled on the same graph. The disabled side must match
//!   the pre-obs engine throughput (the acceptance bar is <1% drift); the
//!   enabled side shows what full tracing costs.
//! * `recorder_primitives` — the per-call cost of the disabled recorder's
//!   hot-path operations (span start/end, counter add, gauge), which is a
//!   single `Option` check each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipa_core::{Engine, HiPa, NativeOpts, PageRankConfig};
use hipa_obs::Recorder;
use std::hint::black_box;
use std::time::Duration;

fn bench_engine_off_vs_on(c: &mut Criterion) {
    let g = hipa_graph::datasets::small_test_graph(3);
    let cfg = PageRankConfig::default().with_iterations(5);
    let mut group = c.benchmark_group("engine_trace_off_vs_on");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.throughput(criterion::Throughput::Elements((g.num_edges() * cfg.iterations) as u64));
    for (label, trace) in [("off", false), ("on", true)] {
        let opts = NativeOpts::new(2, 1024).with_trace(trace);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| HiPa.run_native(&g, &cfg, &opts).ranks)
        });
    }
    group.finish();
}

fn bench_recorder_primitives(c: &mut Criterion) {
    let off = Recorder::new(false);
    let mut group = c.benchmark_group("recorder_primitives_disabled");
    group.sample_size(50).measurement_time(Duration::from_secs(1));
    group.bench_function("span_start_end", |b| {
        b.iter(|| {
            let t = off.start();
            off.end(black_box(t), "phase", 0, 0);
        })
    });
    let counter = off.counter("bench");
    group.bench_function("counter_add", |b| b.iter(|| counter.add(black_box(1))));
    group.bench_function("gauge", |b| b.iter(|| off.gauge(black_box(0), Some(0.5), None)));
    group.bench_function("thread_spans_flush", |b| {
        b.iter(|| {
            let mut spans = off.thread_spans(black_box(0));
            let t = spans.start();
            spans.end(t, "phase", 0);
            spans.flush(&off);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_off_vs_on, bench_recorder_primitives);
criterion_main!(benches);
