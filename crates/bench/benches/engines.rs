//! Criterion benches of the five native engines (the real-thread paths) on
//! a small scale-free graph. Absolute wall-clock numbers on this single-core
//! host do not reproduce the paper — the simulated harness bins do — but
//! these benches track regressions in the engines' real code paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipa_baselines::all_engines;
use hipa_core::{Engine, NativeOpts, PageRankConfig};
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let g = hipa_graph::datasets::small_test_graph(1);
    let cfg = PageRankConfig::default().with_iterations(5);
    let opts = NativeOpts::new(2, 1024);
    let mut group = c.benchmark_group("native_pagerank");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.throughput(criterion::Throughput::Elements((g.num_edges() * cfg.iterations) as u64));
    for e in all_engines() {
        group.bench_function(BenchmarkId::from_parameter(e.name()), |b| {
            b.iter(|| e.run_native(&g, &cfg, &opts).ranks)
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let g = hipa_graph::datasets::small_test_graph(2);
    let cfg = PageRankConfig::default().with_iterations(5);
    let mut group = c.benchmark_group("hipa_native_threads");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let opts = NativeOpts::new(t, 1024);
            b.iter(|| hipa_core::HiPa.run_native(&g, &cfg, &opts).ranks)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_thread_scaling);
criterion_main!(benches);
