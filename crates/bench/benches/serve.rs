//! Criterion benches of the serving hot path: what the `SpmvWorkspace`
//! bugfix actually buys per call (one-shot layout rebuild vs resident
//! reuse), and the per-query cost of batched multi-vector PPR as the batch
//! widens — the amortization curve behind `--bin serve`'s census. CI runs
//! these with `--test` (bodies once), so they double as a smoke test of the
//! resident-reuse entry points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipa_algos::{teleport_from_seeds, PersonalizedConfig, PprSolver, SpmvWorkspace};
use hipa_graph::{datasets::small_test_graph, DiGraph};
use std::time::Duration;

const THREADS: usize = 2;
const VPP: usize = 256;

fn graph() -> DiGraph {
    small_test_graph(77)
}

/// One SpMV through the one-shot wrapper (rebuilds layout + plan + pool
/// every call — the pre-fix hot path) vs a resident workspace.
fn bench_spmv_residency(c: &mut Criterion) {
    let g = graph();
    let n = g.num_vertices();
    let x: Vec<f32> = (0..n).map(|v| 1.0 + (v % 7) as f32).collect();
    let mut group = c.benchmark_group("serve_spmv_residency");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("one_shot_rebuild", |b| {
        b.iter(|| hipa_algos::spmv_partition_centric(&g, &x, THREADS, VPP))
    });
    let mut ws = SpmvWorkspace::new(&g, THREADS, VPP);
    group.bench_function("resident_workspace", |b| b.iter(|| ws.run(&x)));
    group.finish();
}

/// Per-query cost of a k-wide PPR batch: one multi-vector sweep serves all
/// k source sets, so time/k should fall as k grows.
fn bench_ppr_batch_width(c: &mut Criterion) {
    let g = graph();
    let n = g.num_vertices();
    let cfg = PersonalizedConfig {
        iterations: 10,
        threads: THREADS,
        verts_per_partition: VPP,
        ..Default::default()
    };
    let mut group = c.benchmark_group("serve_ppr_batch_width");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let mut solver = PprSolver::new(&g, &cfg);
    for k in [1usize, 4, 16] {
        let teleports: Vec<Vec<f32>> =
            (0..k).map(|i| teleport_from_seeds(n, &[((i * n) / k) as u32]).unwrap()).collect();
        group.bench_with_input(BenchmarkId::new("batch", k), &k, |b, _| {
            b.iter(|| solver.solve_batch(&teleports))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv_residency, bench_ppr_batch_width);
criterion_main!(benches);
