//! Criterion benches of the preprocessing structures: the hierarchical plan
//! (Eq. 2–4), the PCPM layout build (compression), and the lookup table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipa_core::PcpmLayout;
use hipa_partition::{hipa_plan, LookupTable};
use std::time::Duration;

fn bench_layout(c: &mut Criterion) {
    let g = hipa_graph::datasets::small_test_graph(4);
    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));

    for vpp in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("pcpm_build", vpp), &vpp, |b, &vpp| {
            b.iter(|| PcpmLayout::build(g.out_csr(), vpp, false))
        });
    }
    group.bench_function("hipa_plan", |b| b.iter(|| hipa_plan(g.out_degrees(), 2, 8, 64)));
    group.bench_function("lookup_table", |b| {
        let plan = hipa_plan(g.out_degrees(), 2, 8, 64);
        b.iter(|| LookupTable::from_plan(&plan))
    });
    group.bench_function("csr_build", |b| {
        let el = hipa_graph::gen::rmat(&hipa_graph::gen::RmatParams::graph500(10, 8), 3);
        b.iter(|| hipa_graph::Csr::from_edge_list(&el))
    });
    group.finish();
}

/// Sequential vs parallel PCPM layout build at several worker counts.
/// The graph is big enough (~50k vertices) that the default chunk
/// decomposition produces a dozen chunks per pass, so the parallel path is
/// genuinely exercised rather than degenerating to one chunk.
fn bench_parallel_build(c: &mut Criterion) {
    use hipa_graph::gen::{zipf_graph, ZipfParams};
    let g = hipa_graph::DiGraph::from_edge_list(&zipf_graph(
        &ZipfParams {
            num_vertices: 50_000,
            mean_degree: 12.0,
            locality: 0.3,
            block_size: 256,
            ..Default::default()
        },
        29,
    ));
    let csr = g.out_csr();
    let vpp = 512usize;
    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));
    group.bench_function("seq", |b| b.iter(|| PcpmLayout::build_seq_ext(csr, vpp, false, true)));
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("par", threads), &threads, |b, &t| {
            b.iter(|| PcpmLayout::build_par_ext(csr, vpp, false, true, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layout, bench_parallel_build);
criterion_main!(benches);
