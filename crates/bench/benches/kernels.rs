//! Criterion benches for the hot-kernel pass (DESIGN.md §12): native
//! scatter/gather with software prefetch on vs off, and the cost of the
//! frequency sub-clustering relabel itself. On this single-core host the
//! prefetch delta is usually within noise — the `kernels` harness bin's
//! simulated A/B is the authoritative measurement; this bench exists to
//! keep the prefetched code paths exercised and regression-tracked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipa_core::{Engine, NativeOpts, PageRankConfig, ReorderStrategy};
use std::time::Duration;

fn bench_prefetch_ab(c: &mut Criterion) {
    let g = hipa_graph::datasets::Dataset::Journal.build();
    let cfg = PageRankConfig::default().with_iterations(5);
    let mut group = c.benchmark_group("native_prefetch");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.throughput(criterion::Throughput::Elements((g.num_edges() * cfg.iterations) as u64));
    for prefetch in [false, true] {
        let label = if prefetch { "on" } else { "off" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &prefetch, |b, &p| {
            // Partition above NATIVE_L2_BYTES so the adaptive gate arms the
            // hints; at paper-tuned sizes the A/B is a no-op by design.
            let opts = NativeOpts::new(2, 2 << 20).with_prefetch(p);
            b.iter(|| hipa_core::HiPa.run_native(&g, &cfg, &opts).ranks)
        });
    }
    group.finish();
}

fn bench_reorder_prepare(c: &mut Criterion) {
    let g = hipa_graph::datasets::Dataset::Journal.build();
    let mut group = c.benchmark_group("reorder_prepare");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for strat in [ReorderStrategy::DegreeDesc, ReorderStrategy::FrequencyClusters] {
        group.bench_with_input(BenchmarkId::from_parameter(strat.name()), &strat, |b, &s| {
            b.iter(|| hipa_core::preorder::prepare(&g, s, 4096).graph.num_edges())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prefetch_ab, bench_reorder_prepare);
criterion_main!(benches);
