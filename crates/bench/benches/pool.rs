//! Criterion benches of the rayon shim's persistent pool: the fixed cost of
//! opening a parallel region (scope dispatch) against the spawn-per-scope
//! discipline the shim used before it grew resident workers, and the
//! per-item overhead of `par_iter` dispatch under different `with_min_len`
//! granularities. A `pool_stats` snapshot is printed after the run so
//! `run_all.sh` can archive the scheduler counters next to the timings.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use rayon::prelude::*;
use std::time::Duration;

const WIDTH: usize = 2;

/// Fixed cost of a parallel region: `WIDTH` trivial spawns per scope. The
/// `pooled` variant reuses resident workers; `os_threads` re-creates them
/// each scope, which is exactly what the old shim did on every call.
fn bench_scope_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_scope_dispatch");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let pool = rayon::ThreadPoolBuilder::new().num_threads(WIDTH).build().unwrap();
    group.bench_function("pooled", |b| {
        b.iter(|| {
            let mut out = [0u64; WIDTH];
            let slots: Vec<&mut u64> = out.iter_mut().collect();
            pool.scope(|s| {
                for (j, slot) in slots.into_iter().enumerate() {
                    s.spawn(move |_| *slot = j as u64 + 1);
                }
            });
            out
        })
    });
    group.bench_function("os_threads", |b| {
        b.iter(|| {
            let mut out = [0u64; WIDTH];
            let slots: Vec<&mut u64> = out.iter_mut().collect();
            std::thread::scope(|s| {
                for (j, slot) in slots.into_iter().enumerate() {
                    s.spawn(move || *slot = j as u64 + 1);
                }
            });
            out
        })
    });
    group.finish();
}

/// Per-item dispatch cost: a near-empty body over 64 K items, so the numbers
/// are dominated by chunk claiming rather than user work. `min_len` sweeps
/// the claim granularity from pathological (1) to coarse (4096); `auto` is
/// the shim's default split of about eight claims per worker.
fn bench_par_iter_dispatch(c: &mut Criterion) {
    const N: usize = 64 * 1024;
    let mut group = c.benchmark_group("pool_par_iter_dispatch");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(N as u64));
    let pool = rayon::ThreadPoolBuilder::new().num_threads(WIDTH).build().unwrap();
    let mut data = vec![1u32; N];
    for min_len in [1usize, 64, 4096] {
        group.bench_with_input(BenchmarkId::new("min_len", min_len), &min_len, |b, &m| {
            b.iter(|| {
                pool.install(|| {
                    data.par_iter_mut().with_min_len(m).for_each(|x| *x = x.wrapping_add(1))
                })
            })
        });
    }
    group.bench_function("auto", |b| {
        b.iter(|| pool.install(|| data.par_iter_mut().for_each(|x| *x = x.wrapping_add(1))))
    });
    group.finish();
}

criterion_group!(benches, bench_scope_dispatch, bench_par_iter_dispatch);

fn main() {
    benches();
    // Scheduler-counter snapshot for `results/` (cumulative over the whole
    // bench process; `max_active` should not exceed the pool width).
    let s = rayon::pool_stats();
    println!("\n== pool_stats ==");
    println!("workers_spawned {}", s.workers_spawned);
    println!("jobs {}", s.jobs);
    println!("tasks_claimed {}", s.tasks_claimed);
    println!("steals {}", s.steals);
    println!("parks {}", s.parks);
    println!("unparks {}", s.unparks);
    println!("max_active {}", s.max_active);
    assert!(s.max_active <= WIDTH as u64, "pool exceeded its width bound");
}
