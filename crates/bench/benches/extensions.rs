//! Criterion benches of the §6 extensions: SpMV, PageRank-Delta, BFS.

use criterion::{criterion_group, criterion_main, Criterion};
use hipa_algos::{bfs_partition_centric, pagerank_delta, spmv_partition_centric, PrDeltaConfig};
use std::time::Duration;

fn bench_extensions(c: &mut Criterion) {
    let g = hipa_graph::datasets::small_test_graph(8);
    let x: Vec<f32> = (0..g.num_vertices()).map(|i| 1.0 / (i + 1) as f32).collect();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));

    group.bench_function("spmv_partition_centric", |b| {
        b.iter(|| spmv_partition_centric(&g, &x, 2, 256))
    });
    group.bench_function("pagerank_delta", |b| {
        b.iter(|| pagerank_delta(&g, &PrDeltaConfig { threshold: 1e-6, ..Default::default() }))
    });
    group.bench_function("bfs_partition_centric", |b| b.iter(|| bfs_partition_centric(&g, 0, 256)));
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
