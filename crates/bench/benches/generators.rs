//! Criterion benches of the deterministic graph generators.

use criterion::{criterion_group, criterion_main, Criterion};
use hipa_graph::gen::{erdos_renyi, rmat, zipf_graph, RmatParams, ZipfParams};
use std::time::Duration;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    group.bench_function("rmat_scale12_ef8", |b| {
        let p = RmatParams::graph500(12, 8);
        b.iter(|| rmat(&p, 7))
    });
    group.bench_function("zipf_8k_deg12", |b| {
        let p = ZipfParams { num_vertices: 8192, ..Default::default() };
        b.iter(|| zipf_graph(&p, 7))
    });
    group.bench_function("er_8k_64k", |b| b.iter(|| erdos_renyi(8192, 65536, 7)));
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
