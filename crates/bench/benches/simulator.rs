//! Criterion benches of the machine simulator itself: raw access-path
//! throughput (how many simulated accesses per second the host sustains)
//! and a full simulated PageRank run.

use criterion::{criterion_group, criterion_main, Criterion};
use hipa_core::{Engine, PageRankConfig, SimOpts};
use hipa_numasim::{MachineSpec, Placement, SimMachine, ThreadPlacement};
use std::time::Duration;

fn bench_access_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_access_path");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let accesses = 100_000usize;
    group.throughput(criterion::Throughput::Elements(accesses as u64));

    group.bench_function("random_reads", |b| {
        b.iter(|| {
            let mut m = SimMachine::new(MachineSpec::tiny_test());
            let r = m.alloc("a", 1 << 20, Placement::Interleaved);
            let pool = m.create_pool(4, &ThreadPlacement::RoundRobin);
            m.phase(pool, |j, ctx| {
                let mut k = j * 7919;
                for _ in 0..accesses / 4 {
                    k = (k * 1103515245 + 12345) & ((1 << 20) - 4 - 1);
                    ctx.read(r, k & !3, 4);
                }
            });
            m.cycles()
        })
    });
    group.bench_function("stream_reads", |b| {
        b.iter(|| {
            let mut m = SimMachine::new(MachineSpec::tiny_test());
            let r = m.alloc("a", 64 * accesses, Placement::Interleaved);
            let pool = m.create_pool(4, &ThreadPlacement::RoundRobin);
            m.phase(pool, |j, ctx| {
                let chunk = 64 * accesses / 4;
                ctx.stream_read(r, j * chunk, chunk);
            });
            m.cycles()
        })
    });
    group.finish();
}

fn bench_full_sim(c: &mut Criterion) {
    let g = hipa_graph::datasets::small_test_graph(6);
    let cfg = PageRankConfig::default().with_iterations(3);
    let mut group = c.benchmark_group("sim_full_run");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("hipa_tiny_machine", |b| {
        b.iter(|| {
            hipa_core::HiPa.run_sim(
                &g,
                &cfg,
                &SimOpts::new(MachineSpec::tiny_test()).with_threads(8).with_partition_bytes(1024),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_access_path, bench_full_sim);
criterion_main!(benches);
