//! Shared harness configuration for the benchmark binaries that regenerate
//! the paper's tables and figures (see DESIGN.md §4 for the index).
//!
//! # Scaling convention
//!
//! The datasets are ~64–1000× smaller than the paper's (DESIGN.md §5), and
//! the simulated machines shrink their caches by [`SCALE`] = 64 to match, so
//! cache-capacity effects keep their shape. Partition sizes are always
//! *quoted in paper units* (e.g. "256KB") and divided by [`SCALE`] before
//! they reach an engine.
#![forbid(unsafe_code)]

pub mod snapshot;

use hipa_core::{Engine, PageRankConfig, SimOpts, SimRun};
use hipa_graph::{datasets::Dataset, DiGraph};
use hipa_numasim::MachineSpec;

/// Cache-scaling factor pairing the scaled datasets with scaled machines.
pub const SCALE: usize = 64;

/// The paper's iteration count for timed runs (§4.1).
pub const PAPER_ITERATIONS: usize = 20;

/// The paper's main machine, cache-scaled.
pub fn skylake() -> MachineSpec {
    MachineSpec::skylake_4210().scaled(SCALE)
}

/// The paper's §4.5 comparison machine, cache-scaled.
pub fn haswell() -> MachineSpec {
    MachineSpec::haswell_e5_2667().scaled(SCALE)
}

/// Converts a paper-units partition size to simulated bytes.
pub fn scaled_partition(paper_bytes: usize) -> usize {
    (paper_bytes / SCALE).max(64)
}

/// One methodology with the per-paper tuned execution parameters (§4.1:
/// HiPa/v-PR/Polymer use all 40 threads; p-PR and GPOP are run at their
/// best-performing thread counts, 20; GPOP uses 1 MB partitions, the others
/// 256 KB).
pub struct Method {
    pub engine: Box<dyn Engine>,
    pub threads: usize,
    /// Partition size in paper units.
    pub partition_paper_bytes: usize,
}

impl Method {
    /// Runs this method on a graph on the given (already scaled) machine.
    pub fn run(&self, g: &DiGraph, machine: MachineSpec, iterations: usize) -> SimRun {
        let opts = SimOpts::new(machine)
            .with_threads(self.threads)
            .with_partition_bytes(scaled_partition(self.partition_paper_bytes));
        let cfg = PageRankConfig::default().with_iterations(iterations);
        self.engine.run_sim(g, &cfg, &opts)
    }

    pub fn name(&self) -> &'static str {
        self.engine.name()
    }

    /// Like [`Self::run`] but with a convergence tolerance: the engine stops
    /// as soon as the shared L1 rule fires (`SimRun::converged`), with
    /// `iterations` as the cap.
    pub fn run_to_tolerance(
        &self,
        g: &DiGraph,
        machine: MachineSpec,
        iterations: usize,
        tolerance: f32,
    ) -> SimRun {
        let opts = SimOpts::new(machine)
            .with_threads(self.threads)
            .with_partition_bytes(scaled_partition(self.partition_paper_bytes));
        let cfg = PageRankConfig::default().with_iterations(iterations).with_tolerance(tolerance);
        self.engine.run_sim(g, &cfg, &opts)
    }

    /// Like [`Self::run_to_tolerance`] but with the trace recorder enabled,
    /// so the returned run carries its `RunTrace` (per-phase cycle spans,
    /// the residual trajectory, and the simulator's memory counters).
    pub fn run_to_tolerance_traced(
        &self,
        g: &DiGraph,
        machine: MachineSpec,
        iterations: usize,
        tolerance: f32,
    ) -> SimRun {
        let opts = SimOpts::new(machine)
            .with_threads(self.threads)
            .with_partition_bytes(scaled_partition(self.partition_paper_bytes))
            .with_trace(true);
        let cfg = PageRankConfig::default().with_iterations(iterations).with_tolerance(tolerance);
        self.engine.run_sim(g, &cfg, &opts)
    }

    /// Like [`Self::run`] but overriding the thread count (Fig. 6 sweeps).
    pub fn run_with_threads(
        &self,
        g: &DiGraph,
        machine: MachineSpec,
        iterations: usize,
        threads: usize,
    ) -> SimRun {
        let opts = SimOpts::new(machine)
            .with_threads(threads)
            .with_partition_bytes(scaled_partition(self.partition_paper_bytes));
        let cfg = PageRankConfig::default().with_iterations(iterations);
        self.engine.run_sim(g, &cfg, &opts)
    }
}

/// The five methods in Table 2 column order with the paper's settings.
pub fn paper_methods() -> Vec<Method> {
    vec![
        Method { engine: Box::new(hipa_core::HiPa), threads: 40, partition_paper_bytes: 256 << 10 },
        Method {
            engine: Box::new(hipa_baselines::Ppr),
            threads: 20,
            partition_paper_bytes: 256 << 10,
        },
        Method {
            engine: Box::new(hipa_baselines::Vpr),
            threads: 40,
            partition_paper_bytes: 256 << 10,
        },
        Method {
            engine: Box::new(hipa_baselines::Gpop),
            threads: 20,
            partition_paper_bytes: 1 << 20,
        },
        Method {
            engine: Box::new(hipa_baselines::Polymer),
            threads: 40,
            partition_paper_bytes: 256 << 10,
        },
    ]
}

/// Dataset list in Table 1/2 row order.
pub fn paper_datasets() -> Vec<Dataset> {
    Dataset::ALL.to_vec()
}

/// Parses `--fast` (fewer iterations / fewer graphs for smoke runs) and
/// `--csv` flags that all bins accept.
pub struct BinArgs {
    pub fast: bool,
    pub csv: bool,
}

impl BinArgs {
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        BinArgs { fast: args.iter().any(|a| a == "--fast"), csv: args.iter().any(|a| a == "--csv") }
    }

    /// Iteration count honouring `--fast`.
    pub fn iterations(&self) -> usize {
        if self.fast {
            5
        } else {
            PAPER_ITERATIONS
        }
    }

    /// Dataset list honouring `--fast` (journal + wiki only).
    pub fn datasets(&self) -> Vec<Dataset> {
        if self.fast {
            vec![Dataset::Journal, Dataset::Wiki]
        } else {
            paper_datasets()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_partition_floors() {
        assert_eq!(scaled_partition(256 << 10), 4096);
        assert_eq!(scaled_partition(1 << 20), 16 * 1024);
        assert_eq!(scaled_partition(1024), 64);
    }

    #[test]
    fn paper_methods_in_table2_order() {
        let names: Vec<_> = paper_methods().iter().map(|m| m.name()).collect();
        assert_eq!(names, ["HiPa", "p-PR", "v-PR", "GPOP", "Polymer"]);
    }
}
