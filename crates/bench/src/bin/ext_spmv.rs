//! Bonus experiment (paper §6): the HiPa methodology applied to SpMV.
//!
//! Runs repeated `y = Aᵀx` passes on the simulated Skylake under the full
//! HiPa treatment (hierarchical plan, partition-mapped placement, pinned
//! persistent threads) versus the conventional NUMA-oblivious configuration,
//! on two contrasting graphs.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin ext_spmv [--fast] [--csv]
//! ```
//!
//! Expected shape: the same ~1.3–1.5× win and remote-traffic reduction the
//! PageRank evaluation shows — supporting the paper's claim that the
//! optimisations transfer to SpMV.

use hipa_algos::spmv_sim;
use hipa_bench::{scaled_partition, skylake, BinArgs};
use hipa_graph::datasets::Dataset;
use hipa_report::{fmt_pct, fmt_ratio, Table};

fn main() {
    let args = BinArgs::parse();
    let reps = if args.fast { 4 } else { 20 };
    let graphs = if args.fast {
        vec![Dataset::Journal]
    } else {
        vec![Dataset::Journal, Dataset::Wiki, Dataset::Kron]
    };
    let mut table = Table::new(
        &format!("§6 extension: SpMV under HiPa vs NUMA-oblivious ({reps} passes)"),
        &["graph", "HiPa time", "oblivious time", "speedup", "HiPa remote", "obliv remote"],
    );
    for ds in graphs {
        let g = ds.build();
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| 1.0 / (1 + i % 97) as f32).collect();
        let part = scaled_partition(256 << 10);
        let aware = spmv_sim(&g, &x, skylake(), 40, part, true, reps);
        let obliv = spmv_sim(&g, &x, skylake(), 20, part, false, reps);
        let ta = aware.compute_cycles / (aware.report.ghz * 1e9);
        let to = obliv.compute_cycles / (obliv.report.ghz * 1e9);
        table.row(vec![
            ds.name().to_string(),
            format!("{ta:.4}s"),
            format!("{to:.4}s"),
            fmt_ratio(to / ta),
            fmt_pct(aware.report.mem.remote_fraction()),
            fmt_pct(obliv.report.mem.remote_fraction()),
        ]);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
