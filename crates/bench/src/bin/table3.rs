//! Regenerates **Table 3**: execution time across partition sizes
//! {64, 128, 256, 512} KB (paper units) on the Haswell and Skylake machine
//! models, normalised per (machine, method) by the paper's reference column
//! (256 KB on Skylake, 128 KB on Haswell), averaged over the four graphs the
//! paper could fit on the Haswell box (all but kron and mpi).
//!
//! ```text
//! cargo run --release -p hipa-bench --bin table3 [--fast] [--csv]
//! ```
//!
//! Shape target: the optimum lands at 256 KB (= L2/4) on Skylake and at
//! 128 KB (= L2/2) on Haswell; sizes > 256 KB decelerate sharply on both.

use hipa_bench::{haswell, scaled_partition, skylake, BinArgs, Method};
use hipa_graph::datasets::Dataset;
use hipa_numasim::MachineSpec;
use hipa_report::Table;

fn methods() -> Vec<Method> {
    vec![
        Method { engine: Box::new(hipa_core::HiPa), threads: 0, partition_paper_bytes: 0 },
        Method { engine: Box::new(hipa_baselines::Ppr), threads: 0, partition_paper_bytes: 0 },
        Method { engine: Box::new(hipa_baselines::Gpop), threads: 0, partition_paper_bytes: 0 },
    ]
}

fn run_cell(
    m: &Method,
    machine: &MachineSpec,
    graphs: &[Dataset],
    size: usize,
    iters: usize,
) -> f64 {
    // HiPa uses all logical cores; p-PR/GPOP their physical-core best.
    let threads = match m.name() {
        "HiPa" => machine.topology.logical_cpus(),
        _ => machine.topology.physical_cores(),
    };
    let mut total = 0.0;
    for &ds in graphs {
        let g = ds.build();
        let opts = hipa_core::SimOpts::new(machine.clone())
            .with_threads(threads)
            .with_partition_bytes(scaled_partition(size));
        let cfg = hipa_core::PageRankConfig::default().with_iterations(iters);
        total += m.engine.run_sim(&g, &cfg, &opts).compute_seconds();
    }
    total
}

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    // Paper: "all graphs except kron and mpi" fit the Haswell machine.
    let graphs = if args.fast {
        vec![Dataset::Journal, Dataset::Wiki]
    } else {
        vec![Dataset::Journal, Dataset::Pld, Dataset::Wiki, Dataset::Twitter]
    };
    let sizes = [64 << 10, 128 << 10, 256 << 10, 512 << 10];
    let mut table = Table::new(
        &format!("Table 3: normalised execution time by partition size ({iters} iterations)"),
        &[
            "method", "HSW 64K", "HSW 128K", "HSW 256K", "HSW 512K", "SKX 64K", "SKX 128K",
            "SKX 256K", "SKX 512K",
        ],
    );
    let mut col_sums = vec![0.0f64; 8];
    let ms = methods();
    for m in &ms {
        let mut row = vec![m.name().to_string()];
        let mut cells = Vec::new();
        for (mi, machine) in [haswell(), skylake()].iter().enumerate() {
            // Normalisation column: 128 KB on Haswell, 256 KB on Skylake.
            let ref_size = if mi == 0 { 128 << 10 } else { 256 << 10 };
            let reference = run_cell(m, machine, &graphs, ref_size, iters);
            for &s in &sizes {
                let t = run_cell(m, machine, &graphs, s, iters);
                cells.push(t / reference);
            }
        }
        for (i, c) in cells.iter().enumerate() {
            row.push(format!("{c:.2}"));
            col_sums[i] += c;
        }
        table.row(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for s in &col_sums {
        avg_row.push(format!("{:.2}", s / ms.len() as f64));
    }
    table.row(avg_row);
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
