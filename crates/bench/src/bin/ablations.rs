//! Ablation study over HiPa's design choices (DESIGN.md §7) — each row
//! disables exactly one mechanism of §3 and reports the slowdown and the
//! memory-system shift it causes on `journal` and `kron`.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin ablations [--fast] [--csv]
//! ```
//!
//! Expected directions: disabling inter-edge compression inflates MApE and
//! time; disabling thread-data pinning (FCFS + OS placement) and disabling
//! persistent threads (per-region pools + binding migrations) cost time;
//! interleaved placement inflates the remote fraction toward ~50 %.

use hipa_bench::{scaled_partition, skylake, BinArgs};
use hipa_core::hipa::sim::{run_variant, HiPaVariant};
use hipa_core::{PageRankConfig, SimOpts};
use hipa_graph::datasets::Dataset;
use hipa_report::{fmt_pct, fmt_ratio, fmt_secs, Table};

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let variants: Vec<(&str, HiPaVariant)> = vec![
        ("full HiPa", HiPaVariant::default()),
        ("- edge compression", HiPaVariant { compress_inter: false, ..Default::default() }),
        ("- thread pinning", HiPaVariant { thread_pinning: false, ..Default::default() }),
        ("- persistent threads", HiPaVariant { persistent_threads: false, ..Default::default() }),
        ("- NUMA placement", HiPaVariant { partitioned_placement: false, ..Default::default() }),
    ];
    let graphs =
        if args.fast { vec![Dataset::Journal] } else { vec![Dataset::Journal, Dataset::Kron] };
    let mut table = Table::new(
        &format!("Ablations: HiPa minus one design choice ({iters} iterations)"),
        &["graph", "variant", "time", "vs full", "MApE/iter", "remote %", "migrations"],
    );
    for ds in &graphs {
        let g = ds.build();
        let cfg = PageRankConfig::default().with_iterations(iters);
        let mut full_time = 0.0;
        for (name, v) in &variants {
            let opts = SimOpts::new(skylake())
                .with_threads(40)
                .with_partition_bytes(scaled_partition(256 << 10));
            let run = run_variant(&g, &cfg, &opts, v);
            let t = run.compute_seconds();
            if *name == "full HiPa" {
                full_time = t;
            }
            table.row(vec![
                ds.name().to_string(),
                name.to_string(),
                fmt_secs(t),
                fmt_ratio(t / full_time),
                format!("{:.1}", run.report.mape(g.num_edges()) / iters as f64),
                fmt_pct(run.report.mem.remote_fraction()),
                run.report.migrations.to_string(),
            ]);
        }
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
