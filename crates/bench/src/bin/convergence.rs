//! Convergence census: iterations to reach an L1 tolerance, per engine.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin convergence [--fast] [--csv]
//! ```
//!
//! The paper times a fixed 20 iterations (§4.1); this bin instead runs every
//! engine with the shared convergence rule (`hipa_core::convergence`) and
//! reports where each one stops. Because all five engines share one
//! definition of "converged", the stop iteration may differ by at most the
//! low-bit accumulation order — a useful cross-engine consistency check on
//! top of the tests. Entries are `iters*` when the run hit the cap without
//! converging.

use hipa_bench::{paper_methods, skylake, BinArgs};
use hipa_report::Table;

fn main() {
    let args = BinArgs::parse();
    let tol = 1e-5f32;
    let cap = if args.fast { 60 } else { 200 };
    let methods = paper_methods();
    let mut header: Vec<&str> = vec!["graph"];
    header.extend(methods.iter().map(|m| m.name()));
    let mut table = Table::new(
        &format!("Convergence: iterations to L1 delta < {tol:.0e} (cap {cap}; * = hit cap)"),
        &header,
    );
    for ds in args.datasets() {
        let g = ds.build();
        let mut row = vec![ds.name().to_string()];
        for m in &methods {
            let run = m.run_to_tolerance(&g, skylake(), cap, tol);
            let mark = if run.converged { "" } else { "*" };
            row.push(format!("{}{}", run.iterations_run, mark));
        }
        table.row(row);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
