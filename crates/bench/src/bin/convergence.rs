//! Convergence census: iterations to reach an L1 tolerance, per engine,
//! plus the full per-iteration residual trajectory from each run's
//! `RunTrace`.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin convergence [--fast] [--csv]
//! ```
//!
//! The paper times a fixed 20 iterations (§4.1); this bin instead runs every
//! engine with the shared convergence rule (`hipa_core::convergence`) and
//! reports where each one stops. Because all five engines share one
//! definition of "converged", the stop iteration may differ by at most the
//! low-bit accumulation order — a useful cross-engine consistency check on
//! top of the tests. Entries are `iters*` when the run hit the cap without
//! converging.
//!
//! The per-dataset trajectory tables list the L1 residual after every
//! iteration for every engine (`-` once an engine has stopped), so the
//! convergence *path* — not just the stop iteration — is recorded in
//! `results/`.

use hipa_bench::{paper_methods, skylake, BinArgs};
use hipa_obs::RunTrace;
use hipa_report::Table;

fn main() {
    let args = BinArgs::parse();
    let tol = 1e-5f32;
    let cap = if args.fast { 60 } else { 200 };
    let methods = paper_methods();
    let mut header: Vec<&str> = vec!["graph"];
    header.extend(methods.iter().map(|m| m.name()));
    let mut table = Table::new(
        &format!("Convergence: iterations to L1 delta < {tol:.0e} (cap {cap}; * = hit cap)"),
        &header,
    );
    let mut trajectories: Vec<(String, Vec<RunTrace>)> = Vec::new();
    for ds in args.datasets() {
        let g = ds.build();
        let mut row = vec![ds.name().to_string()];
        let mut traces = Vec::new();
        for m in &methods {
            let run = m.run_to_tolerance_traced(&g, skylake(), cap, tol);
            let mark = if run.converged { "" } else { "*" };
            row.push(format!("{}{}", run.iterations_run, mark));
            traces.push(run.trace.expect("tracing was enabled"));
        }
        table.row(row);
        trajectories.push((ds.name().to_string(), traces));
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }

    let mut traj_header: Vec<&str> = vec!["iter"];
    traj_header.extend(methods.iter().map(|m| m.name()));
    for (name, traces) in &trajectories {
        let mut traj = Table::new(
            &format!("{name}: L1 residual per iteration (- = engine already stopped)"),
            &traj_header,
        );
        let longest = traces.iter().map(|t| t.iterations.len()).max().unwrap_or(0);
        for i in 0..longest {
            let mut row = vec![i.to_string()];
            for t in traces {
                let cell = t
                    .iterations
                    .get(i)
                    .and_then(|g| g.residual)
                    .map(|r| format!("{r:.2e}"))
                    .unwrap_or_else(|| "-".into());
                row.push(cell);
            }
            traj.row(row);
        }
        println!();
        traj.print();
        if args.csv {
            print!("{}", traj.to_csv());
        }
    }
}
