//! Regenerates **Table 2**: execution time (simulated seconds) of PageRank
//! for the five methodologies on all six graphs, 20 iterations, with the
//! paper's per-method tuning (§4.1/§4.2).
//!
//! ```text
//! cargo run --release -p hipa-bench --bin table2 [--fast] [--csv]
//! ```
//!
//! Shape targets (not absolute numbers — the substrate is a scaled
//! simulator): HiPa fastest everywhere; partition-centric beats
//! vertex-centric on the same design basis; Polymer slowest.

use hipa_bench::{paper_methods, skylake, BinArgs};
use hipa_report::{fmt_ratio, fmt_secs, Table};

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let methods = paper_methods();
    let mut header = vec!["graph"];
    header.extend(methods.iter().map(|m| m.name()));
    header.push("best-other/HiPa");
    let mut table = Table::new(
        &format!("Table 2: PageRank execution time (simulated seconds, {iters} iterations)"),
        &header,
    );

    for ds in args.datasets() {
        let g = ds.build();
        let mut row = vec![ds.name().to_string()];
        let mut times = Vec::new();
        for m in &methods {
            let run = m.run(&g, skylake(), iters);
            let secs = run.compute_seconds();
            times.push(secs);
            row.push(fmt_secs(secs));
            eprintln!(
                "  [{}] {}: {:.3}s (mape {:.1} B/e, remote {:.1}%)",
                ds.name(),
                m.name(),
                secs,
                run.report.mape(g.num_edges()),
                run.report.mem.remote_fraction() * 100.0
            );
        }
        let best_other = times[1..].iter().cloned().fold(f64::INFINITY, f64::min);
        row.push(fmt_ratio(best_other / times[0]));
        table.row(row);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
