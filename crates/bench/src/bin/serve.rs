//! Serve census: batch amortization proof + seeded open-loop load run.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin serve -- [--fast] [--csv]
//!          [--graph NAME] [--batch K] [--users N] [--requests N] [--seed S]
//!          [--threads N] [--json-out FILE]
//! ```
//!
//! Part 1 (amortization): solves the same `K >= 8` single-seed personalized
//! PageRank queries three ways — the pre-fix shape (`personalized_from_seed`
//! per query, one layout build *each*), a resident [`PprSolver`] advancing
//! all K vectors through one multi-vector sweep per iteration (one layout
//! build total), and the full [`Server`] batch path — timing each and
//! reading the process-wide [`layout_builds_total`] counter before/after, so
//! the "K builds vs exactly 1" claim is a measured counter delta, not an
//! assertion. Batch results are checked bitwise against the naive runs.
//!
//! Part 2 (load): a seeded open-loop load run against a fresh server;
//! throughput, p50/p95/p99 latency per request class, and queue-depth gauges
//! are exported into a `RunTrace` (written with `--json-out`).

use hipa_algos::{personalized_from_seed, teleport_from_seeds, PersonalizedConfig, PprSolver};
use hipa_bench::BinArgs;
use hipa_core::layout_builds_total;
use hipa_graph::datasets::Dataset;
use hipa_obs::{Recorder, RunTrace, TraceMeta, PATH_NATIVE};
use hipa_report::Table;
use hipa_serve::{run_load, LoadConfig, Request, Response, SamplerConfig, ServeConfig, Server};
use std::time::{Duration, Instant};

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .map(|i| argv.get(i + 1).unwrap_or_else(|| panic!("{flag} needs a value")).clone())
}

fn flag_usize(argv: &[String], flag: &str, default: usize) -> usize {
    flag_value(argv, flag)
        .map(|v| v.parse().unwrap_or_else(|e| panic!("{flag}: {e}")))
        .unwrap_or(default)
}

fn top1(ranks: &[f32]) -> u32 {
    let mut best = 0u32;
    for v in 1..ranks.len() as u32 {
        if ranks[v as usize] > ranks[best as usize] {
            best = v;
        }
    }
    best
}

fn ms(ns: u128) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn main() {
    let args = BinArgs::parse();
    let argv: Vec<String> = std::env::args().collect();
    let ds = match flag_value(&argv, "--graph").as_deref() {
        None => {
            if args.fast {
                Dataset::Wiki
            } else {
                Dataset::Journal
            }
        }
        Some(name) => *Dataset::ALL
            .iter()
            .find(|d| d.name() == name)
            .unwrap_or_else(|| panic!("unknown dataset '{name}'")),
    };
    let threads = flag_usize(&argv, "--threads", if args.fast { 2 } else { 4 });
    let k = flag_usize(&argv, "--batch", if args.fast { 8 } else { 16 }).max(8);
    let seed = flag_usize(&argv, "--seed", 42) as u64;
    let vpp = 16 * 1024;

    let g = ds.build();
    let n = g.num_vertices();
    let pcfg = PersonalizedConfig {
        iterations: if args.fast { 20 } else { 50 },
        threads,
        verts_per_partition: vpp,
        ..Default::default()
    };
    // K seed vertices spread across the id range, deterministic in `seed`.
    let seeds: Vec<u32> =
        (0..k).map(|i| ((i * n) / k) as u32 + (seed % (n / k).max(1) as u64) as u32).collect();

    // --- Part 1: amortization census ------------------------------------
    // Naive pre-fix shape: every query pays its own layout build.
    let b0 = layout_builds_total();
    let t0 = Instant::now();
    let naive: Vec<_> = seeds.iter().map(|&s| personalized_from_seed(&g, s, &pcfg)).collect();
    let naive_ns = t0.elapsed().as_nanos();
    let naive_builds = layout_builds_total() - b0;

    // Resident solver: one build, one multi-vector sweep per iteration.
    let teleports: Vec<Vec<f32>> =
        seeds.iter().map(|&s| teleport_from_seeds(n, &[s]).expect("valid seed")).collect();
    let b1 = layout_builds_total();
    let t1 = Instant::now();
    let mut solver = PprSolver::new(&g, &pcfg);
    let batch = solver.solve_batch(&teleports);
    let batch_ns = t1.elapsed().as_nanos();
    let batch_builds = layout_builds_total() - b1;

    for (i, (res, want)) in batch.iter().zip(&naive).enumerate() {
        assert_eq!(
            res.ranks, want.ranks,
            "batch member {i} (seed {}) diverged from its solo solve",
            seeds[i]
        );
        assert_eq!(res.iterations_run, want.iterations_run);
    }

    // Full server path: start (one build + the *global* delta ranks, which
    // the naive path never computes — priced separately) then serve the K
    // queries as one admission batch against the resident state.
    let b2 = layout_builds_total();
    let t2 = Instant::now();
    let server = Server::start(
        ds.edge_list(),
        ServeConfig {
            threads,
            verts_per_partition: vpp,
            batch_max: k,
            ppr: pcfg.clone(),
            ..Default::default()
        },
    );
    // First response proves the resident state (incl. global ranks) is up.
    assert!(matches!(server.call(Request::TopK { k: 1 }), Response::TopK { .. }));
    let start_ns = t2.elapsed().as_nanos();
    let t3 = Instant::now();
    let tickets: Vec<_> =
        seeds.iter().map(|&s| server.submit(Request::Ppr { sources: vec![s], k: 10 })).collect();
    let responses: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
    let serve_ns = t3.elapsed().as_nanos();
    let serve_builds = layout_builds_total() - b2;
    for (i, resp) in responses.iter().enumerate() {
        match resp {
            Response::Ppr { top, iterations, .. } => {
                assert_eq!(top[0].0, top1(&naive[i].ranks), "server top-1 mismatch for seed {i}");
                assert_eq!(*iterations, naive[i].iterations_run);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let batches_run = server.stats().ppr_batches.get();

    let mut census = Table::new(
        &format!(
            "Serve census on {}: {k} single-seed PPR queries ({} iters, {threads} threads)",
            ds.name(),
            pcfg.iterations
        ),
        &["path", "wall ms", "layout builds", "speedup"],
    );
    for (name, ns, builds) in [
        ("naive (k one-shot solves)", naive_ns, Some(naive_builds)),
        ("resident solver, 1 batch", batch_ns, Some(batch_builds)),
        ("server start (global ranks)", start_ns, None),
        ("server k-query batch", serve_ns, Some(serve_builds)),
    ] {
        census.row(vec![
            name.to_string(),
            ms(ns),
            builds.map(|b| b.to_string()).unwrap_or_else(|| "(with below)".into()),
            format!("{:.2}x", naive_ns as f64 / ns as f64),
        ]);
    }
    census.print();
    println!(
        "amortization: {k} sources through {batches_run} batched sweep(s); \
         layout builds {naive_builds} -> {batch_builds} (server start+batch: {serve_builds})"
    );
    assert_eq!(naive_builds, k as u64, "naive path must rebuild per query");
    assert_eq!(batch_builds, 1, "resident solver must build exactly once");
    assert_eq!(serve_builds, 1, "server must build exactly once for start + the whole batch");
    drop(server);

    // --- Part 2: seeded open-loop load ----------------------------------
    let users = flag_usize(&argv, "--users", if args.fast { 4 } else { 8 });
    let requests = flag_usize(&argv, "--requests", if args.fast { 16 } else { 64 });
    let server = Server::start(
        ds.edge_list(),
        ServeConfig {
            threads,
            verts_per_partition: vpp,
            batch_max: 32,
            ppr: pcfg.clone(),
            // Live health sampler: ticks through the load window so the
            // exported trace carries a `sampler.*` trajectory too.
            sampler: Some(SamplerConfig {
                interval: Duration::from_millis(10),
                capacity: 512,
                expo_path: None,
            }),
            ..Default::default()
        },
    );
    let lcfg = LoadConfig {
        users,
        requests_per_user: requests,
        seed,
        mean_gap_ns: if args.fast { 50_000 } else { 200_000 },
        ..Default::default()
    };
    let report = run_load(&server, &lcfg);
    let stats = server.stats();

    let mut load = Table::new(
        &format!(
            "Open-loop load on {}: {users} users x {requests} reqs, seed {seed}, \
             mix {:?}, {:.0} req/s",
            ds.name(),
            lcfg.mix,
            report.throughput_rps
        ),
        &["class", "served", "p50 us", "p95 us", "p99 us", "max us"],
    );
    for (name, served, h) in [
        ("topk", stats.topk_served.get(), &stats.topk_latency),
        ("ppr", stats.ppr_served.get(), &stats.ppr_latency),
        ("edges", stats.edges_served.get(), &stats.edges_latency),
    ] {
        let q = |p: f64| {
            if h.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0}", h.quantile(p) as f64 / 1e3)
            }
        };
        load.row(vec![
            name.to_string(),
            served.to_string(),
            q(0.50),
            q(0.95),
            q(0.99),
            if h.is_empty() { "-".into() } else { format!("{:.0}", h.max() as f64 / 1e3) },
        ]);
    }
    load.print();
    println!(
        "errors: {}  epochs: {}  ppr batches: {} ({} sources)  queue depth max: {}",
        stats.errors.get(),
        stats.epochs.get(),
        stats.ppr_batches.get(),
        stats.ppr_batched_sources.get(),
        stats.queue_depth.max()
    );
    let frames = stats.frames();
    if let Some(last) = frames.last() {
        println!(
            "sampler: {} frame(s); last tick depth {} p99 {:.0}us {} req/s",
            frames.len(),
            last.queue_depth,
            last.latency_p99_ns as f64 / 1e3,
            last.throughput_rps
        );
    }
    if args.csv {
        print!("{}", census.to_csv());
        print!("{}", load.to_csv());
    }

    // Trace export: census counters + the full serve namespace.
    let rec = Recorder::new(true);
    rec.set_counter("serve.census.k", k as u64);
    rec.set_counter("serve.census.naive_ns", naive_ns as u64);
    rec.set_counter("serve.census.batch_ns", batch_ns as u64);
    rec.set_counter("serve.census.server_start_ns", start_ns as u64);
    rec.set_counter("serve.census.server_ns", serve_ns as u64);
    rec.set_counter("serve.census.naive_layout_builds", naive_builds);
    rec.set_counter("serve.census.batch_layout_builds", batch_builds);
    rec.set_counter("serve.census.server_layout_builds", serve_builds);
    stats.export_into(&rec, report.wall);
    let trace = rec
        .finish(TraceMeta {
            engine: "hipa-serve".into(),
            path: PATH_NATIVE,
            machine: None,
            vertices: n as u64,
            edges: g.num_edges() as u64,
            threads: threads as u64,
            partitions: Some(n.div_ceil(vpp) as u64),
            iterations_run: report.completed,
            converged: true,
        })
        .expect("recorder enabled");
    if let Some(path) = flag_value(&argv, "--json-out") {
        let json = RunTrace::array_to_json(std::slice::from_ref(&trace)) + "\n";
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote serve trace to {path}");
    }
}
