//! Bonus experiment (paper §2.1): the effect of vertex ordering on
//! partition-centric PageRank. The paper's background credits reordering /
//! semi-sorting with temporal-locality gains; this harness quantifies the
//! effect under HiPa by relabelling `wiki` (a locality-rich graph) three
//! ways and re-running the simulated engine.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin reordering [--fast] [--csv]
//! ```
//!
//! Expected directions: destroying the order (random) raises inter-edges
//! and time; the greedy locality pass recovers part of both; degree
//! clustering concentrates the hot set.

use hipa_bench::{scaled_partition, skylake, BinArgs};
use hipa_core::{Engine, HiPa, PageRankConfig, SimOpts};
use hipa_graph::reorder::{
    by_cluster_growth, by_degree_desc, by_partition_locality, random_permutation, Permutation,
};
use hipa_graph::stats::partition_census;
use hipa_graph::{Csr, DiGraph};
use hipa_report::{fmt_pct, fmt_secs, Table};

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let el = hipa_graph::datasets::Dataset::Wiki.edge_list();
    let csr = Csr::from_edge_list(&el);
    let vpp = scaled_partition(256 << 10) / 4;

    let orders: Vec<(&str, Permutation)> = vec![
        ("original", Permutation::identity(el.num_vertices())),
        ("random", random_permutation(el.num_vertices(), 77)),
        ("degree-desc", by_degree_desc(&csr)),
        ("greedy-locality", by_partition_locality(&csr, vpp)),
        ("cluster-growth", by_cluster_growth(&csr, vpp)),
    ];

    let mut table = Table::new(
        &format!("Reordering effect on wiki (HiPa, 40 threads, {iters} iterations)"),
        &["ordering", "intra share", "compression", "sim time", "remote %", "MApE/iter"],
    );
    for (name, perm) in &orders {
        let relabelled = perm.apply(&el);
        let g = DiGraph::from_edge_list(&relabelled);
        let census = partition_census(g.out_csr(), vpp);
        let cfg = PageRankConfig::default().with_iterations(iters);
        let opts = SimOpts::new(skylake())
            .with_threads(40)
            .with_partition_bytes(scaled_partition(256 << 10));
        let run = HiPa.run_sim(&g, &cfg, &opts);
        table.row(vec![
            name.to_string(),
            fmt_pct(
                census.intra_total as f64 / (census.intra_total + census.inter_total).max(1) as f64,
            ),
            format!("{:.2}x", census.compression_ratio()),
            fmt_secs(run.compute_seconds()),
            fmt_pct(run.report.mem.remote_fraction()),
            format!("{:.1}", run.report.mape(g.num_edges()) / iters as f64),
        ]);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
