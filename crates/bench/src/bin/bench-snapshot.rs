//! Bench snapshot: run the engine / kernel-variant / serve censuses and
//! distil every trace into one `hipa-bench/v1` document.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin bench-snapshot -- [--fast]
//!          [--label NAME] [--out FILE] [--graph NAME] [--seed S]
//!          [--no-native] [--no-variants] [--no-serve]
//! ```
//!
//! Writes `BENCH_<label>.json` (or `--out FILE`) and prints a per-entry
//! summary. Diff two snapshots with `hipa-perf diff A B`; the deterministic
//! sections are byte-identical across runs of the same config — see
//! DESIGN.md §14 and the CI perf-gate job.

use hipa_bench::snapshot::{collect, SnapshotConfig};
use hipa_bench::BinArgs;
use hipa_graph::datasets::Dataset;
use hipa_perf::MetricValue;
use hipa_report::Table;

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .map(|i| argv.get(i + 1).unwrap_or_else(|| panic!("{flag} needs a value")).clone())
}

fn main() {
    let args = BinArgs::parse();
    let argv: Vec<String> = std::env::args().collect();
    let label = flag_value(&argv, "--label").unwrap_or_else(|| {
        if args.fast {
            "fast".into()
        } else {
            "full".into()
        }
    });
    let mut cfg =
        if args.fast { SnapshotConfig::fast(&label) } else { SnapshotConfig::full(&label) };
    if let Some(name) = flag_value(&argv, "--graph") {
        let ds = *Dataset::ALL
            .iter()
            .find(|d| d.name() == name)
            .unwrap_or_else(|| panic!("unknown dataset '{name}'"));
        cfg.datasets = vec![ds];
    }
    if let Some(seed) = flag_value(&argv, "--seed") {
        cfg.seed = seed.parse().unwrap_or_else(|e| panic!("--seed: {e}"));
    }
    cfg.native = !argv.iter().any(|a| a == "--no-native");
    cfg.variants = !argv.iter().any(|a| a == "--no-variants");
    cfg.serve = !argv.iter().any(|a| a == "--no-serve");

    let snap = collect(&cfg);

    let mut table = Table::new(
        &format!("Bench snapshot '{label}' ({} entries)", snap.entries.len()),
        &["entry", "iters", "deterministic", "advisory", "cycles total", "ranks fnv"],
    );
    for e in &snap.entries {
        let show = |name: &str| {
            e.metric(name)
                .map(|(v, _): (&MetricValue, _)| v.to_string())
                .unwrap_or_else(|| "-".into())
        };
        table.row(vec![
            e.id.clone(),
            show("iterations"),
            e.deterministic.len().to_string(),
            e.advisory.len().to_string(),
            show("cycles.total"),
            show("ranks.fnv1a64"),
        ]);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }

    let out = flag_value(&argv, "--out").unwrap_or_else(|| format!("BENCH_{label}.json"));
    std::fs::write(&out, snap.to_json() + "\n").unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote snapshot ({} entries) to {out}", snap.entries.len());
}
