//! Regenerates the **§4.5 single-node experiment**: HiPa confined to one
//! NUMA node with 20 threads versus 2-node HiPa, p-PR and GPOP at the same
//! thread count, on `journal`.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin single_node [--fast] [--csv]
//! ```
//!
//! Shape target (paper, 20 iterations): single-node HiPa (0.44 s) loses to
//! 2-node HiPa (0.39 s) because every contention concentrates on one node,
//! but stays competitive with 2-node p-PR (0.41 s) and far ahead of 2-node
//! GPOP (1.14 s).

use hipa_bench::{scaled_partition, skylake, BinArgs};
use hipa_core::{Engine, PageRankConfig, SimOpts};
use hipa_report::{fmt_secs, Table};

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let g = hipa_graph::datasets::Dataset::Journal.build();
    let cfg = PageRankConfig::default().with_iterations(iters);
    let part = scaled_partition(256 << 10);
    let part_gpop = scaled_partition(1 << 20);

    let mut table = Table::new(
        &format!("§4.5 single-node vs 2-node at 20 threads on journal ({iters} iterations)"),
        &["configuration", "time", "remote %"],
    );

    let runs: Vec<(&str, hipa_core::SimRun)> = vec![
        (
            "HiPa, 1 node, 20 threads",
            hipa_core::HiPa.run_sim(
                &g,
                &cfg,
                &SimOpts::new(skylake().with_sockets(1))
                    .with_threads(20)
                    .with_partition_bytes(part),
            ),
        ),
        (
            "HiPa, 2 nodes, 20 threads",
            hipa_core::HiPa.run_sim(
                &g,
                &cfg,
                &SimOpts::new(skylake()).with_threads(20).with_partition_bytes(part),
            ),
        ),
        (
            "p-PR, 2 nodes, 20 threads",
            hipa_baselines::Ppr.run_sim(
                &g,
                &cfg,
                &SimOpts::new(skylake()).with_threads(20).with_partition_bytes(part),
            ),
        ),
        (
            "GPOP, 2 nodes, 20 threads",
            hipa_baselines::Gpop.run_sim(
                &g,
                &cfg,
                &SimOpts::new(skylake()).with_threads(20).with_partition_bytes(part_gpop),
            ),
        ),
    ];
    for (name, run) in &runs {
        table.row(vec![
            name.to_string(),
            fmt_secs(run.compute_seconds()),
            format!("{:.1}%", run.report.mem.remote_fraction() * 100.0),
        ]);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
