//! Regenerates **Fig. 5**: memory accesses per edge (MApE, bytes of DRAM
//! traffic per edge per iteration) with the local/remote split, for the five
//! methodologies on all six graphs.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin fig5 [--fast] [--csv]
//! ```
//!
//! As in the paper (§4.1), the memory experiments run 60 iterations so
//! preprocessing effects are amortised. Shape targets: remote fraction
//! ≈ 50 % for the NUMA-oblivious engines vs ≈ 4–25 % for HiPa and Polymer
//! (Polymer lowest); partition-centric total MApE several times below the
//! vertex-centric engines; v-PR highest.

use hipa_bench::{paper_methods, skylake, BinArgs};
use hipa_report::{fmt_pct, Table};

fn main() {
    let args = BinArgs::parse();
    // Paper: memory/cache experiments run longer to amortise preprocessing.
    let iters = if args.fast { 15 } else { 60 };
    let methods = paper_methods();
    let mut table = Table::new(
        &format!("Fig. 5: memory accesses per edge per iteration (B), {iters} iterations"),
        &["graph", "method", "MApE", "remote MApE", "remote %"],
    );
    let mut summary: Vec<(String, f64, f64)> = Vec::new();
    for ds in args.datasets() {
        let g = ds.build();
        for m in &methods {
            let run = m.run(&g, skylake(), iters);
            let mape = run.report.mape(g.num_edges()) / iters as f64;
            let remote = run.report.remote_mape(g.num_edges()) / iters as f64;
            table.row(vec![
                ds.name().to_string(),
                m.name().to_string(),
                format!("{mape:.2}"),
                format!("{remote:.2}"),
                fmt_pct(run.report.mem.remote_fraction()),
            ]);
            summary.push((m.name().to_string(), mape, run.report.mem.remote_fraction()));
        }
    }
    table.print();

    // Per-method averages (the figures the paper quotes in §4.3 prose).
    let mut avg = Table::new(
        "Fig. 5 summary: per-method averages over all graphs",
        &["method", "avg MApE", "avg remote %"],
    );
    for m in &methods {
        let rows: Vec<_> = summary.iter().filter(|(n, _, _)| n == m.name()).collect();
        let mape = rows.iter().map(|(_, x, _)| x).sum::<f64>() / rows.len() as f64;
        let rem = rows.iter().map(|(_, _, r)| r).sum::<f64>() / rows.len() as f64;
        avg.row(vec![m.name().to_string(), format!("{mape:.2}"), fmt_pct(rem)]);
    }
    avg.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
