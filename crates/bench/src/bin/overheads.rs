//! Regenerates the **§4.2 overhead analysis**: preprocessing cost (graph
//! partitioning + NUMA-aware data binding, excluding graph loading) per
//! graph, and the number of PageRank iterations needed to amortise it.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin overheads [--fast] [--csv]
//! ```
//!
//! Shape targets: HiPa's overhead amortises in the low tens of iterations
//! (the paper reports 12.7 on average, vs 9.61 for GPOP and 12.44 for p-PR).

use hipa_bench::{paper_methods, skylake, BinArgs};
use hipa_report::{fmt_secs, Table};

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let methods = paper_methods();
    let mut table = Table::new(
        &format!("§4.2 overheads: preprocessing seconds and amortisation iterations ({iters}-iteration runs)"),
        &["graph", "HiPa pre", "HiPa amort", "p-PR pre", "p-PR amort", "GPOP pre", "GPOP amort"],
    );
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    for ds in args.datasets() {
        let g = ds.build();
        let mut row = vec![ds.name().to_string()];
        for m in &methods {
            if !matches!(m.name(), "HiPa" | "p-PR" | "GPOP") {
                continue;
            }
            let run = m.run(&g, skylake(), iters);
            let amort = run.amortization_iterations(iters);
            row.push(fmt_secs(run.preprocess_seconds()));
            row.push(format!("{amort:.1}"));
            let idx = match m.name() {
                "HiPa" => 0,
                "p-PR" => 1,
                _ => 2,
            };
            sums[idx] += amort;
        }
        count += 1;
        table.row(row);
    }
    let mut avg = vec!["Average".to_string()];
    for s in sums {
        avg.push(String::new());
        avg.push(format!("{:.1}", s / count as f64));
    }
    // Fix the layout of the average row (pre columns left empty).
    table.row(avg);
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
