//! Regenerates the **§4.2 overhead analysis**: preprocessing cost (graph
//! partitioning + NUMA-aware data binding, excluding graph loading) per
//! graph, and the number of PageRank iterations needed to amortise it.
//! A second table measures the *host* preprocessing pipeline sequentially
//! vs on parallel build workers (wall-clock, not simulated).
//!
//! ```text
//! cargo run --release -p hipa-bench --bin overheads [--fast] [--csv]
//! ```
//!
//! Shape targets: HiPa's overhead amortises in the low tens of iterations
//! (the paper reports 12.7 on average, vs 9.61 for GPOP and 12.44 for p-PR).

use hipa_bench::{paper_methods, scaled_partition, skylake, BinArgs};
use hipa_core::{Engine, NativeOpts, PageRankConfig};
use hipa_report::{fmt_secs, Table};

/// Worker count for the parallel host build. Fixed at 4 so runs are
/// comparable across hosts; on a single-core machine this exercises the
/// parallel code path without a wall-clock win.
const PAR_BUILD_THREADS: usize = 4;

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let methods = paper_methods();
    let mut table = Table::new(
        &format!("§4.2 overheads: preprocessing seconds and amortisation iterations ({iters}-iteration runs)"),
        &["graph", "HiPa pre", "HiPa amort", "p-PR pre", "p-PR amort", "GPOP pre", "GPOP amort"],
    );
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    for ds in args.datasets() {
        let g = ds.build();
        let mut row = vec![ds.name().to_string()];
        for m in &methods {
            if !matches!(m.name(), "HiPa" | "p-PR" | "GPOP") {
                continue;
            }
            let run = m.run(&g, skylake(), iters);
            let amort = run.amortization_iterations(iters);
            row.push(fmt_secs(run.preprocess_seconds()));
            row.push(format!("{amort:.1}"));
            let idx = match m.name() {
                "HiPa" => 0,
                "p-PR" => 1,
                _ => 2,
            };
            sums[idx] += amort;
        }
        count += 1;
        table.row(row);
    }
    let mut avg = vec!["Average".to_string()];
    for s in sums {
        avg.push(String::new());
        avg.push(format!("{:.1}", s / count as f64));
    }
    // Fix the layout of the average row (pre columns left empty).
    table.row(avg);
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }

    host_build_table(&args, iters);
}

/// Host wall-clock of the full HiPa preprocessing pipeline (degree prefix +
/// plan + PCPM layout + 1/deg array) with 1 vs [`PAR_BUILD_THREADS`] build
/// workers, and the amortisation iterations each implies.
fn host_build_table(args: &BinArgs, iters: usize) {
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let engine = hipa_core::HiPa;
    let cfg = PageRankConfig::default().with_iterations(iters);
    let mut table = Table::new(
        &format!(
            "host preprocessing: sequential vs {PAR_BUILD_THREADS}-worker build \
             ({host_cores}-core host, {iters}-iteration runs)"
        ),
        &["graph", "seq pre", "par pre", "speedup", "seq amort", "par amort"],
    );
    for ds in args.datasets() {
        let g = ds.build();
        let base = NativeOpts::new(host_cores, scaled_partition(256 << 10));
        let seq = engine.run_native(&g, &cfg, &base.clone().with_build_threads(1));
        let par = engine.run_native(&g, &cfg, &base.with_build_threads(PAR_BUILD_THREADS));
        let seq_pre = seq.preprocess.as_secs_f64();
        let par_pre = par.preprocess.as_secs_f64();
        let per_iter = seq.compute.as_secs_f64() / iters.max(1) as f64;
        let amort = |pre: f64| if per_iter > 0.0 { pre / per_iter } else { 0.0 };
        table.row(vec![
            ds.name().to_string(),
            fmt_secs(seq_pre),
            fmt_secs(par_pre),
            format!("{:.2}x", if par_pre > 0.0 { seq_pre / par_pre } else { 0.0 }),
            format!("{:.1}", amort(seq_pre)),
            format!("{:.1}", amort(par_pre)),
        ]);
    }
    table.print();
    if host_cores == 1 {
        println!(
            "note: single-core container -- the parallel build exercises the \
             multi-worker code path but cannot show a wall-clock speedup; \
             treat the seq/par columns as a correctness check here.\n"
        );
    }
    if args.csv {
        print!("{}", table.to_csv());
    }
}
