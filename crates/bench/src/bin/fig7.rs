//! Regenerates **Fig. 7**: LLC hits (and hit ratio) plus execution time on
//! `journal` as the partition size sweeps 16 KB – 8 MB (paper units), for
//! the three partition-centric methodologies.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin fig7 [--fast] [--csv]
//! ```
//!
//! Shape targets: execution time declines as compression improves up to
//! ≈ 256 KB (= L2/4) and degrades beyond it; LLC hits surge once partitions
//! spill out of the L2 (256 KB → 8 MB).

use hipa_bench::{scaled_partition, skylake, BinArgs, Method};
use hipa_report::{fmt_bytes, fmt_pct, fmt_secs, Table};

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let g = hipa_graph::datasets::Dataset::Journal.build();
    let methods: Vec<Method> = vec![
        Method { engine: Box::new(hipa_core::HiPa), threads: 40, partition_paper_bytes: 0 },
        Method { engine: Box::new(hipa_baselines::Ppr), threads: 20, partition_paper_bytes: 0 },
        Method { engine: Box::new(hipa_baselines::Gpop), threads: 20, partition_paper_bytes: 0 },
    ];
    let sizes: &[usize] = &[
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
    ];
    let mut header = vec!["partition".to_string()];
    for m in &methods {
        header.push(format!("{} time", m.name()));
        header.push(format!("{} LLC hits", m.name()));
        header.push(format!("{} LLC ratio", m.name()));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        &format!(
            "Fig. 7: partition-size sensitivity on journal ({iters} iterations, paper-unit sizes)"
        ),
        &hdr,
    );
    for &size in sizes {
        let mut row = vec![fmt_bytes(size)];
        for m in &methods {
            let opts = hipa_core::SimOpts::new(skylake())
                .with_threads(m.threads)
                .with_partition_bytes(scaled_partition(size));
            let cfg = hipa_core::PageRankConfig::default().with_iterations(iters);
            let run = m.engine.run_sim(&g, &cfg, &opts);
            row.push(fmt_secs(run.compute_seconds()));
            row.push(format!("{:.2e}", run.report.mem.llc_hits as f64));
            row.push(fmt_pct(run.report.mem.llc_hit_ratio()));
        }
        table.row(row);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
