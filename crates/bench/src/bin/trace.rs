//! Trace census: every method on both execution paths, emitting `RunTrace`s.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin trace -- [--fast] [--graph NAME]
//!          [--json-out FILE]
//! cargo run --release -p hipa-bench --bin trace -- --pretty FILE
//! cargo run --release -p hipa-bench --bin trace -- --diff A B
//!          [--wall-tol X] [--deterministic-only]
//! ```
//!
//! The census runs all five methods (paper settings) on one dataset, native
//! and simulated, with the trace recorder enabled, prints a summary table
//! plus the full human rendering of each trace, and optionally serialises
//! the whole set as one JSON array (`--json-out`). `--pretty FILE` instead
//! parses a trace document previously written by `--json-out` or the CLI's
//! `--trace-out` and pretty-prints it. `--diff A B` compares two such
//! documents under the `hipa-perf` noise policy (deterministic metrics must
//! match exactly, wall metrics within `--wall-tol`) and exits nonzero on
//! regression — same contract as `hipa-perf diff`.

use hipa_bench::{paper_methods, scaled_partition, skylake, BinArgs};
use hipa_core::{NativeOpts, PageRankConfig, SimOpts};
use hipa_graph::datasets::Dataset;
use hipa_obs::RunTrace;
use hipa_perf::{diff_trace_docs, DiffOptions};
use hipa_report::Table;

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .map(|i| argv.get(i + 1).unwrap_or_else(|| panic!("{flag} needs a value")).clone())
}

fn pretty_print(path: &str) {
    let doc = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let traces = RunTrace::parse_many(&doc).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
    for t in &traces {
        println!("{}", t.render());
    }
}

fn load_traces(path: &str) -> Vec<RunTrace> {
    let doc = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    RunTrace::parse_many(&doc).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn diff_mode(argv: &[String], at: usize) -> ! {
    let a_path = argv.get(at + 1).unwrap_or_else(|| panic!("--diff needs two files"));
    let b_path = argv.get(at + 2).unwrap_or_else(|| panic!("--diff needs two files"));
    let opts = DiffOptions {
        wall_tol: flag_value(argv, "--wall-tol")
            .map(|v| v.parse().unwrap_or_else(|e| panic!("--wall-tol: {e}")))
            .unwrap_or(DiffOptions::default().wall_tol),
        deterministic_only: argv.iter().any(|a| a == "--deterministic-only"),
    };
    let report = diff_trace_docs(&load_traces(a_path), &load_traces(b_path), &opts);
    print!("{}", report.render());
    std::process::exit(if report.ok() { 0 } else { 1 });
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if let Some(path) = flag_value(&argv, "--pretty") {
        pretty_print(&path);
        return;
    }
    if let Some(i) = argv.iter().position(|a| a == "--diff") {
        diff_mode(&argv, i);
    }

    let args = BinArgs::parse();
    let tol = 1e-5f32;
    let cap = if args.fast { 20 } else { 60 };
    let ds = match flag_value(&argv, "--graph").as_deref() {
        None => Dataset::Journal,
        Some(name) => *Dataset::ALL
            .iter()
            .find(|d| d.name() == name)
            .unwrap_or_else(|| panic!("unknown dataset '{name}'")),
    };
    let g = ds.build();
    let methods = paper_methods();

    let mut traces: Vec<RunTrace> = Vec::new();
    let cfg = PageRankConfig::default().with_iterations(cap).with_tolerance(tol);
    for m in &methods {
        let part = scaled_partition(m.partition_paper_bytes);
        let nat = m.engine.run_native(&g, &cfg, &NativeOpts::new(m.threads, part).with_trace(true));
        traces.push(nat.trace.expect("tracing was enabled"));
        let sopts = SimOpts::new(skylake())
            .with_threads(m.threads)
            .with_partition_bytes(part)
            .with_trace(true);
        let sim = m.engine.run_sim(&g, &cfg, &sopts);
        traces.push(sim.trace.expect("tracing was enabled"));
    }

    let mut table = Table::new(
        &format!("Trace census on {} (tolerance {tol:.0e}, cap {cap}; * = hit cap)", ds.name()),
        &["engine", "path", "iters", "final residual", "spans", "counters", "claims"],
    );
    for t in &traces {
        let iters = format!("{}{}", t.meta.iterations_run, if t.meta.converged { "" } else { "*" });
        let final_residual = t
            .residuals()
            .last()
            .and_then(|r| *r)
            .map(|r| format!("{r:.2e}"))
            .unwrap_or_else(|| "-".into());
        let claims =
            t.counter("partition_claims").map(|c| c.to_string()).unwrap_or_else(|| "-".into());
        table.row(vec![
            t.meta.engine.clone(),
            t.meta.path.to_string(),
            iters,
            final_residual,
            t.spans.len().to_string(),
            t.counters.len().to_string(),
            claims,
        ]);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }

    for t in &traces {
        println!();
        println!("{}", t.render());
    }

    if let Some(path) = flag_value(&argv, "--json-out") {
        let json = RunTrace::array_to_json(&traces) + "\n";
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {} traces to {path}", traces.len());
    }
}
