//! Hot-kernel census (DESIGN.md §12): the trace-driven kernel pass in one
//! binary — software-prefetch A/B, reorder-strategy A/B, the cross-path
//! bitwise-equality matrix, and the GPOP framework-tax model check.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin kernels [--fast] [--csv]
//! ```
//!
//! Expected directions: prefetch hints cut simulated scatter/gather cycles
//! (random DRAM latency is charged at stream rates once hidden) while every
//! rank stays bitwise identical; frequency sub-clustering keeps the
//! partition census fixed but lifts private-cache hit rates; the tax model
//! lands within a factor of two of the measured GPOP − p-PR phase delta.

use hipa_baselines::gpop::{predict_tax, GraphShape};
use hipa_baselines::{Gpop, Polymer, Ppr, Vpr};
use hipa_bench::{scaled_partition, skylake, BinArgs};
use hipa_core::{Engine, HiPa, NativeOpts, PageRankConfig, ReorderStrategy, SimOpts, SimRun};
use hipa_graph::stats::partition_census;
use hipa_obs::RunTrace;
use hipa_report::{fmt_count, fmt_pct, fmt_secs, Table};

/// Sum of a phase's region-level samples (wall cycles of that region).
fn region_cycles(trace: &RunTrace, phase: &str) -> f64 {
    let key = format!("{phase} [region]");
    trace.phase_totals().iter().find(|t| t.phase == key).map(|t| t.total).unwrap_or(0.0)
}

/// Wall cycles of an engine's hot kernels (scatter+gather for the PCPM
/// engines, pull for the vertex-centric ones).
fn kernel_cycles(run: &SimRun, phases: &[&str]) -> f64 {
    let t = run.trace.as_ref().expect("traced run");
    phases.iter().map(|p| region_cycles(t, p)).sum()
}

fn scatter_gather_cycles(run: &SimRun) -> f64 {
    kernel_cycles(run, &["scatter", "gather"])
}

/// One prefetch A/B configuration: engine, paper thread count, partition
/// size (bytes, pre-scaling), and the engine's hot-kernel phase names.
struct AbRow {
    engine: Box<dyn Engine>,
    threads: usize,
    paper_bytes: usize,
    phases: &'static [&'static str],
}

fn ab_rows() -> Vec<AbRow> {
    const PCPM: &[&str] = &["scatter", "gather"];
    const PULL: &[&str] = &["pull"];
    vec![
        // Paper-tuned PCPM configs (§4.1): partitions fit L2, so the
        // adaptive gate keeps hints off and the A/B is exactly 1.00x.
        AbRow { engine: Box::new(HiPa), threads: 40, paper_bytes: 256 << 10, phases: PCPM },
        AbRow { engine: Box::new(Ppr), threads: 20, paper_bytes: 256 << 10, phases: PCPM },
        AbRow { engine: Box::new(Gpop), threads: 20, paper_bytes: 1 << 20, phases: PCPM },
        // Oversized partitions spill L2; the gate arms and hints recover
        // the loss.
        AbRow { engine: Box::new(HiPa), threads: 40, paper_bytes: 4 << 20, phases: PCPM },
        AbRow { engine: Box::new(Ppr), threads: 20, paper_bytes: 4 << 20, phases: PCPM },
        AbRow { engine: Box::new(Gpop), threads: 20, paper_bytes: 8 << 20, phases: PCPM },
        // Vertex-centric pull kernels read ranks at whole-graph span:
        // always armed, largest wins.
        AbRow { engine: Box::new(Vpr), threads: 40, paper_bytes: 256 << 10, phases: PULL },
        AbRow { engine: Box::new(Polymer), threads: 40, paper_bytes: 256 << 10, phases: PULL },
    ]
}

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let mut csv = String::new();

    // ---- 1. Software-prefetch A/B (simulated machine) ----
    let mut t1 = Table::new(
        &format!("Prefetch A/B on the simulated Xeon 4210 ({iters} iterations)"),
        &["dataset", "engine", "partition", "off", "on", "speedup", "kernel speedup", "hints"],
    );
    for ds in args.datasets() {
        let g = ds.build();
        for row in ab_rows() {
            let cfg = PageRankConfig::default().with_iterations(iters);
            let base = SimOpts::new(skylake())
                .with_threads(row.threads)
                .with_partition_bytes(scaled_partition(row.paper_bytes))
                .with_trace(true);
            let off = row.engine.run_sim(&g, &cfg, &base.clone().with_prefetch(false));
            let on = row.engine.run_sim(&g, &cfg, &base);
            assert_eq!(off.ranks, on.ranks, "prefetch must not change ranks");
            let kernels_off = kernel_cycles(&off, row.phases);
            let kernels_on = kernel_cycles(&on, row.phases);
            t1.row(vec![
                ds.name().to_string(),
                row.engine.name().to_string(),
                format!("{}K", row.paper_bytes >> 10),
                fmt_secs(off.compute_seconds()),
                fmt_secs(on.compute_seconds()),
                format!("{:.2}x", off.compute_cycles / on.compute_cycles),
                format!("{:.2}x", kernels_off / kernels_on),
                fmt_count(on.report.mem.prefetches),
            ]);
        }
    }
    t1.print();
    csv.push_str(&t1.to_csv());

    // ---- 2. Reorder strategies under HiPa (simulated machine) ----
    let strategies = [
        ReorderStrategy::None,
        ReorderStrategy::DegreeDesc,
        ReorderStrategy::FrequencyClusters,
        ReorderStrategy::Random(77),
    ];
    let vpp = scaled_partition(256 << 10) / 4;
    let mut t2 = Table::new(
        &format!("Reorder strategies, HiPa sim, 40 threads ({iters} iterations)"),
        &["dataset", "strategy", "intra share", "compression", "sim time", "L1 hit", "remote"],
    );
    for ds in args.datasets() {
        let g = ds.build();
        for strat in strategies {
            let cfg = PageRankConfig::default().with_iterations(iters);
            let opts = SimOpts::new(skylake())
                .with_threads(40)
                .with_partition_bytes(scaled_partition(256 << 10))
                .with_reorder(strat);
            let run = HiPa.run_sim(&g, &cfg, &opts);
            // Census of the order the engine actually computed on.
            let pre = hipa_core::preorder::prepare(&g, strat, scaled_partition(256 << 10));
            let census = partition_census(pre.graph.out_csr(), vpp);
            let m = &run.report.mem;
            t2.row(vec![
                ds.name().to_string(),
                strat.name().to_string(),
                fmt_pct(
                    census.intra_total as f64
                        / (census.intra_total + census.inter_total).max(1) as f64,
                ),
                format!("{:.2}x", census.compression_ratio()),
                fmt_secs(run.compute_seconds()),
                fmt_pct(m.l1_hits as f64 / (m.reads + m.writes).max(1) as f64),
                fmt_pct(m.remote_fraction()),
            ]);
        }
    }
    t2.print();
    csv.push_str(&t2.to_csv());

    // ---- 3. Bitwise-equality matrix: native == sim, prefetch on == off,
    // for every engine × strategy ----
    let engines: Vec<Box<dyn Engine>> =
        vec![Box::new(HiPa), Box::new(Ppr), Box::new(Vpr), Box::new(Gpop), Box::new(Polymer)];
    let eq_strategies: &[ReorderStrategy] = if args.fast {
        &[ReorderStrategy::None, ReorderStrategy::FrequencyClusters]
    } else {
        &strategies
    };
    let g = hipa_graph::datasets::Dataset::Journal.build();
    let eq_iters = 5;
    let mut combos = 0;
    for engine in &engines {
        for &strat in eq_strategies {
            let cfg = PageRankConfig::default().with_iterations(eq_iters);
            let nat = NativeOpts::new(4, scaled_partition(256 << 10)).with_reorder(strat);
            let sim = SimOpts::new(skylake())
                .with_threads(4)
                .with_partition_bytes(scaled_partition(256 << 10))
                .with_reorder(strat);
            let runs = [
                engine.run_native(&g, &cfg, &nat).ranks,
                engine.run_native(&g, &cfg, &nat.clone().with_prefetch(false)).ranks,
                engine.run_sim(&g, &cfg, &sim).ranks,
                engine.run_sim(&g, &cfg, &sim.clone().with_prefetch(false)).ranks,
            ];
            for r in &runs[1..] {
                assert_eq!(
                    &runs[0],
                    r,
                    "bitwise equality broken: {} / {}",
                    engine.name(),
                    strat.name()
                );
            }
            combos += 1;
        }
    }
    println!(
        "equality matrix: {combos} engine x strategy combinations, 4 paths each \
         (native/sim x prefetch on/off) -- all ranks bitwise identical\n"
    );

    // ---- 4. GPOP framework-tax model vs measured phase cycles ----
    let mut t4 = Table::new(
        "GPOP framework tax: shape-model prediction vs measured GPOP - p-PR \
         scatter+gather cycles (20 threads, 1 MB partitions)",
        &["dataset", "predicted/iter", "measured/iter", "ratio", "dispatch", "payload", "meta"],
    );
    for ds in args.datasets() {
        let g = ds.build();
        let part = scaled_partition(1 << 20);
        let cfg = PageRankConfig::default().with_iterations(iters);
        let opts =
            SimOpts::new(skylake()).with_threads(20).with_partition_bytes(part).with_trace(true);
        let gpop = Gpop.run_sim(&g, &cfg, &opts);
        let ppr = Ppr.run_sim(&g, &cfg, &opts);
        let measured = (scatter_gather_cycles(&gpop) - scatter_gather_cycles(&ppr)) / iters as f64;
        let shape = GraphShape::measure(&g, part);
        let tax = predict_tax(&shape, &skylake(), 20);
        t4.row(vec![
            ds.name().to_string(),
            fmt_count(tax.total() as u64),
            fmt_count(measured.max(0.0) as u64),
            format!("{:.2}", tax.total() / measured.max(1.0)),
            fmt_count(tax.dispatch as u64),
            fmt_count(tax.payload as u64),
            fmt_count(tax.metadata as u64),
        ]);
    }
    t4.print();
    csv.push_str(&t4.to_csv());

    if args.csv {
        print!("{csv}");
    }
}
