//! Regenerates **Table 1**: the evaluation graphs with vertex/edge counts
//! and the intra-/inter-edge census per 1 MB (paper-units) partition.
//!
//! ```text
//! cargo run --release -p hipa-bench --bin table1 [--csv]
//! ```
//!
//! The stand-ins are scaled (DESIGN.md §5); the paper sizes are printed
//! alongside so the scale factor is visible. Shape target: wiki and mpi are
//! intra-heavy, journal/kron/twitter inter-heavy, matching the paper's
//! relative Intra/Inter profile.

use hipa_bench::{scaled_partition, BinArgs};
use hipa_graph::datasets::Dataset;
use hipa_graph::stats::{degree_summary, partition_census};
use hipa_report::{fmt_count, Table};

fn main() {
    let args = BinArgs::parse();
    let mut table = Table::new(
        "Table 1: graph descriptions (scaled stand-ins; census per 1MB-equivalent partition)",
        &[
            "graph",
            "|V|",
            "|E|",
            "paper |V|",
            "paper |E|",
            "deg(mean)",
            "deg(max)",
            "top10%",
            "intra/part",
            "inter/part",
            "intra:inter",
        ],
    );
    for ds in Dataset::ALL {
        let el = ds.edge_list();
        let csr = hipa_graph::Csr::from_edge_list(&el);
        let (pv, pe) = ds.paper_size();
        let sum = degree_summary(&csr);
        // 1 MB paper partition, scaled, in vertices.
        let vpp = scaled_partition(1 << 20) / hipa_graph::VERTEX_BYTES;
        let c = partition_census(&csr, vpp);
        table.row(vec![
            ds.name().to_string(),
            fmt_count(el.num_vertices() as u64),
            fmt_count(el.num_edges() as u64),
            fmt_count(pv),
            fmt_count(pe),
            format!("{:.1}", sum.mean),
            fmt_count(sum.max as u64),
            format!("{:.0}%", sum.top10_edge_share * 100.0),
            fmt_count(c.intra_per_part as u64),
            fmt_count(c.inter_per_part as u64),
            format!("{:.3}", c.intra_total as f64 / c.inter_total.max(1) as f64),
        ]);
    }
    table.print();
    if args.csv {
        print!("{}", table.to_csv());
    }
}
