//! Developer diagnostic: MApE decomposition for HiPa on journal across
//! thread counts and partition sizes, sourced entirely from the engine's
//! [`RunTrace`] counters (the same data the `trace` bin serialises). Not
//! part of the paper reproduction.

use hipa_bench::{scaled_partition, skylake};
use hipa_core::{Engine, HiPa, PageRankConfig, SimOpts};
use hipa_graph::datasets::Dataset;
use hipa_obs::RunTrace;

/// Simulator cache-line size; traces record line counts, not bytes.
const LINE_BYTES: f64 = 64.0;

fn main() {
    let g = Dataset::Journal.build();
    let cfg = PageRankConfig::default().with_iterations(3);
    println!("journal: |V|={} |E|={}", g.num_vertices(), g.num_edges());
    let l = hipa_core::PcpmLayout::build(g.out_csr(), scaled_partition(256 << 10) / 4, false);
    println!(
        "parts={} msgs={} intra={} dests={} compression={:.2}",
        l.num_partitions,
        l.total_msgs,
        l.intra_dst.len(),
        l.dest_verts.len(),
        l.compression_ratio()
    );
    for (threads, pbytes) in
        [(40, 256 << 10), (20, 256 << 10), (10, 256 << 10), (20, 64 << 10), (20, 1 << 20)]
    {
        let opts = SimOpts::new(skylake())
            .with_threads(threads)
            .with_partition_bytes(scaled_partition(pbytes))
            .with_trace(true);
        let run = HiPa.run_sim(&g, &cfg, &opts);
        let t: &RunTrace = run.trace.as_ref().expect("tracing was enabled");
        let c = |name: &str| t.counter(name).unwrap_or(0) as f64;
        let demand = c("mem.dram_local") + c("mem.dram_remote");
        let wb = c("mem.wb_local") + c("mem.wb_remote");
        let remote_lines = c("mem.dram_remote") + c("mem.wb_remote");
        let dram_lines = demand + wb;
        let remote = if dram_lines == 0.0 { 0.0 } else { remote_lines / dram_lines };
        let edges = g.num_edges() as f64;
        let e = edges * cfg.iterations as f64;
        println!(
            "t={threads:>2} P={:>4}KB  secs={:.4}  mape={:>6.1}  demand/e={:.1} wb/e={:.1}  l1h/e={:.1} l2h/e={:.1} llch/e={:.1}  remote={:.1}%  bwbound={}/{}",
            pbytes >> 10,
            run.compute_seconds(),
            dram_lines * LINE_BYTES / edges,
            demand * LINE_BYTES / e,
            wb * LINE_BYTES / e,
            c("mem.l1_hits") / e,
            c("mem.l2_hits") / e,
            c("mem.llc_hits") / e,
            remote * 100.0,
            t.counter("bandwidth_bound_phases").unwrap_or(0),
            t.counter("phases").unwrap_or(0),
        );
    }
}
