//! Developer diagnostic: MApE decomposition for HiPa on journal across
//! thread counts and partition sizes. Not part of the paper reproduction.

use hipa_bench::{scaled_partition, skylake};
use hipa_core::{Engine, HiPa, PageRankConfig, SimOpts};
use hipa_graph::datasets::Dataset;

fn main() {
    let g = Dataset::Journal.build();
    let cfg = PageRankConfig::default().with_iterations(3);
    println!("journal: |V|={} |E|={}", g.num_vertices(), g.num_edges());
    let l = hipa_core::PcpmLayout::build(g.out_csr(), scaled_partition(256 << 10) / 4, false);
    println!(
        "parts={} msgs={} intra={} dests={} compression={:.2}",
        l.num_partitions,
        l.total_msgs,
        l.intra_dst.len(),
        l.dest_verts.len(),
        l.compression_ratio()
    );
    for (threads, pbytes) in
        [(40, 256 << 10), (20, 256 << 10), (10, 256 << 10), (20, 64 << 10), (20, 1 << 20)]
    {
        let opts = SimOpts::new(skylake())
            .with_threads(threads)
            .with_partition_bytes(scaled_partition(pbytes));
        let run = HiPa.run_sim(&g, &cfg, &opts);
        let m = &run.report.mem;
        let e = g.num_edges() as f64;
        println!(
            "t={threads:>2} P={:>4}KB  secs={:.4}  mape={:>6.1}  demand/e={:.1} wb/e={:.1}  l1h/e={:.1} l2h/e={:.1} llch/e={:.1}  remote={:.1}%  bwbound={}/{}",
            pbytes >> 10,
            run.compute_seconds(),
            run.report.mape(g.num_edges()),
            (m.dram_local + m.dram_remote) as f64 * 64.0 / e / cfg.iterations as f64,
            (m.wb_local + m.wb_remote) as f64 * 64.0 / e / cfg.iterations as f64,
            m.l1_hits as f64 / e / cfg.iterations as f64,
            m.l2_hits as f64 / e / cfg.iterations as f64,
            m.llc_hits as f64 / e / cfg.iterations as f64,
            m.remote_fraction() * 100.0,
            run.report.bandwidth_bound_phases,
            run.report.phases,
        );
    }
}
