//! Regenerates **Fig. 6**: execution time on `journal` versus thread count,
//! normalised per method by its own 40-thread time (all plots converge to 1
//! at the right edge, as in the paper).
//!
//! ```text
//! cargo run --release -p hipa-bench --bin fig6 [--fast] [--csv]
//! ```
//!
//! Shape targets: HiPa, v-PR and Polymer improve monotonically through 40
//! threads; p-PR and GPOP bottom out around 16–20 threads and degrade
//! (≈ 2× in the paper) when all 40 logical cores are used. Also prints the
//! §3.3 thread-creation/migration ledger (Algorithm 1 vs Algorithm 2).

use hipa_bench::{paper_methods, skylake, BinArgs};
use hipa_graph::datasets::Dataset;
use hipa_report::Table;

fn main() {
    let args = BinArgs::parse();
    let iters = args.iterations();
    let g = Dataset::Journal.build();
    let methods = paper_methods();
    let thread_counts: Vec<usize> = vec![2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40];

    let mut header = vec!["threads".to_string()];
    header.extend(methods.iter().map(|m| m.name().to_string()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        &format!("Fig. 6: normalised execution time vs threads on journal ({iters} iterations)"),
        &hdr,
    );

    // Collect raw seconds per (method, threads).
    let mut raw: Vec<Vec<f64>> = Vec::new();
    for m in &methods {
        let mut times = Vec::new();
        for &t in &thread_counts {
            let run = m.run_with_threads(&g, skylake(), iters, t);
            times.push(run.compute_seconds());
            eprintln!("  {} @ {t} threads: {:.4}s", m.name(), run.compute_seconds());
        }
        raw.push(times);
    }
    for (ti, &t) in thread_counts.iter().enumerate() {
        let mut row = vec![t.to_string()];
        for times in &raw {
            let norm = times[ti] / times.last().unwrap();
            row.push(format!("{norm:.2}"));
        }
        table.row(row);
    }
    table.print();

    // §3.3: the thread ledger at 40 threads.
    let mut ledger = Table::new(
        "Thread management ledger at full thread count (paper §3.3)",
        &["method", "threads created", "migrations"],
    );
    for m in &methods {
        let run = m.run_with_threads(&g, skylake(), iters, 40);
        ledger.row(vec![
            m.name().to_string(),
            run.report.threads_created.to_string(),
            run.report.migrations.to_string(),
        ]);
    }
    ledger.print();

    if args.csv {
        print!("{}", table.to_csv());
    }
}
