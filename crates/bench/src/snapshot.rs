//! Benchmark-snapshot collector: runs the engine / kernel-variant / serve
//! censuses and distils every `RunTrace` into one `hipa-bench/v1`
//! [`Snapshot`] (see `hipa-perf` and DESIGN.md §14).
//!
//! The collector is deliberately a thin pass over machinery that already
//! exists — [`paper_methods`] for the engine matrix, the prefetch toggle
//! for kernel variants, the seeded load generator for serve — so a
//! snapshot measures the same code paths the tables and figures do. Per
//! entry it adds two metrics no trace carries: the bitwise rank
//! fingerprint ([`hipa_perf::ranks_fingerprint`]) and the
//! [`layout_builds_total`] delta, both deterministic and both things a
//! regression gate genuinely wants to pin.

use crate::{paper_methods, scaled_partition, skylake};
use hipa_core::{layout_builds_total, NativeOpts, PageRankConfig, SimOpts};
use hipa_graph::datasets::Dataset;
use hipa_graph::DiGraph;
use hipa_obs::{Recorder, TraceMeta, PATH_NATIVE};
use hipa_perf::{entry_from_trace, ranks_fingerprint, BenchEntry, MetricValue, Snapshot};
use hipa_serve::{edge_list_of, run_load, LoadConfig, SamplerConfig, ServeConfig, Server};
use std::time::Duration;

/// What one snapshot collection covers.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// Snapshot label (not part of the deterministic identity).
    pub label: String,
    pub datasets: Vec<Dataset>,
    /// Iteration cap handed to every engine run.
    pub iterations: usize,
    /// L1 convergence tolerance for every engine run.
    pub tolerance: f32,
    /// Also run the native path per engine (sim always runs).
    pub native: bool,
    /// Also run the prefetch-off kernel variants (HiPa and v-PR, sim path)
    /// so the gate pins the prefetch delta, not just the default kernels.
    pub variants: bool,
    /// Also run the seeded serve load census per dataset.
    pub serve: bool,
    pub serve_users: usize,
    pub serve_requests: usize,
    /// Load-generator seed (serve entries only).
    pub seed: u64,
}

impl SnapshotConfig {
    /// The CI perf-gate corpus: small datasets, every layer switched on.
    pub fn fast(label: &str) -> SnapshotConfig {
        SnapshotConfig {
            label: label.to_string(),
            datasets: vec![Dataset::Wiki, Dataset::Journal],
            iterations: 20,
            tolerance: 1e-5,
            native: true,
            variants: true,
            serve: true,
            serve_users: 4,
            serve_requests: 16,
            seed: 42,
        }
    }

    /// The full corpus at the paper's settings.
    pub fn full(label: &str) -> SnapshotConfig {
        SnapshotConfig {
            datasets: Dataset::ALL.to_vec(),
            iterations: 60,
            serve_users: 8,
            serve_requests: 64,
            ..SnapshotConfig::fast(label)
        }
    }

    /// Configuration fingerprint stored in the snapshot: two snapshots are
    /// only comparable when these pairs agree.
    fn config_pairs(&self) -> Vec<(String, String)> {
        let datasets: Vec<&str> = self.datasets.iter().map(|d| d.name()).collect();
        vec![
            ("machine".into(), "skylake-4210/scale64".into()),
            ("iterations".into(), self.iterations.to_string()),
            ("tolerance".into(), format!("{:e}", self.tolerance)),
            ("datasets".into(), datasets.join(",")),
            ("native".into(), self.native.to_string()),
            ("variants".into(), self.variants.to_string()),
            ("serve".into(), self.serve.to_string()),
            (
                "serve_load".into(),
                format!("{}x{}@{}", self.serve_users, self.serve_requests, self.seed),
            ),
        ]
    }
}

/// Runs the configured censuses and returns the canonicalized snapshot.
pub fn collect(cfg: &SnapshotConfig) -> Snapshot {
    let mut snap = Snapshot::new(&cfg.label);
    snap.config = cfg.config_pairs();
    let prcfg =
        PageRankConfig::default().with_iterations(cfg.iterations).with_tolerance(cfg.tolerance);

    for ds in &cfg.datasets {
        let g = ds.build();
        for m in paper_methods() {
            let part = scaled_partition(m.partition_paper_bytes);

            let b0 = layout_builds_total();
            let run = m.engine.run_sim(
                &g,
                &prcfg,
                &SimOpts::new(skylake())
                    .with_threads(m.threads)
                    .with_partition_bytes(part)
                    .with_trace(true),
            );
            let builds = layout_builds_total() - b0;
            let extras = vec![
                ("ranks.fnv1a64".to_string(), MetricValue::Text(ranks_fingerprint(&run.ranks))),
                ("layout.builds".to_string(), MetricValue::Num(builds as f64)),
                ("cycles.total".to_string(), MetricValue::Num(run.report.cycles)),
            ];
            snap.entries.push(entry_from_trace(
                &run.trace.expect("tracing enabled"),
                ds.name(),
                None,
                &extras,
            ));

            if cfg.native {
                let b0 = layout_builds_total();
                let run = m.engine.run_native(
                    &g,
                    &prcfg,
                    &NativeOpts::new(m.threads, part).with_trace(true),
                );
                let builds = layout_builds_total() - b0;
                let extras = vec![
                    ("ranks.fnv1a64".to_string(), MetricValue::Text(ranks_fingerprint(&run.ranks))),
                    ("layout.builds".to_string(), MetricValue::Num(builds as f64)),
                ];
                snap.entries.push(entry_from_trace(
                    &run.trace.expect("tracing enabled"),
                    ds.name(),
                    None,
                    &extras,
                ));
            }
        }

        if cfg.variants {
            // Prefetch-off kernel variants: pins the modelled prefetch
            // delta for the two engines with gated software prefetch.
            for m in paper_methods().into_iter().filter(|m| matches!(m.name(), "HiPa" | "v-PR")) {
                let part = scaled_partition(m.partition_paper_bytes);
                let run = m.engine.run_sim(
                    &g,
                    &prcfg,
                    &SimOpts::new(skylake())
                        .with_threads(m.threads)
                        .with_partition_bytes(part)
                        .with_prefetch(false)
                        .with_trace(true),
                );
                let extras = vec![
                    ("ranks.fnv1a64".to_string(), MetricValue::Text(ranks_fingerprint(&run.ranks))),
                    ("cycles.total".to_string(), MetricValue::Num(run.report.cycles)),
                ];
                snap.entries.push(entry_from_trace(
                    &run.trace.expect("tracing enabled"),
                    ds.name(),
                    Some("no-prefetch"),
                    &extras,
                ));
            }
        }

        if cfg.serve {
            snap.entries.push(serve_entry(&g, *ds, cfg));
        }
    }
    snap.canonicalize();
    snap
}

/// One seeded serve load census distilled into an entry. The request
/// stream is a pure function of the load config, so per-class served
/// totals and error counts are deterministic; latencies, throughput and
/// the drain-dependent batch/epoch grouping land in the advisory section.
fn serve_entry(g: &DiGraph, ds: Dataset, cfg: &SnapshotConfig) -> BenchEntry {
    let threads = 2;
    let server = Server::start(
        edge_list_of(g),
        ServeConfig {
            threads,
            sampler: Some(SamplerConfig {
                interval: Duration::from_millis(10),
                capacity: 128,
                expo_path: None,
            }),
            ..Default::default()
        },
    );
    let lcfg = LoadConfig {
        users: cfg.serve_users,
        requests_per_user: cfg.serve_requests,
        seed: cfg.seed,
        mean_gap_ns: 20_000,
        ..Default::default()
    };
    let report = run_load(&server, &lcfg);
    let rec = Recorder::new(true);
    server.stats().export_into(&rec, report.wall);
    let trace = rec
        .finish(TraceMeta {
            engine: "hipa-serve".into(),
            path: PATH_NATIVE,
            machine: None,
            vertices: g.num_vertices() as u64,
            edges: g.num_edges() as u64,
            threads: threads as u64,
            partitions: None,
            iterations_run: report.completed,
            converged: true,
        })
        .expect("recorder enabled");
    let extras = [(
        "load.requests".to_string(),
        MetricValue::Num((cfg.serve_users * cfg.serve_requests) as f64),
    )];
    entry_from_trace(&trace, ds.name(), None, &extras)
}
