//! End-to-end determinism contract for the benchmark-snapshot pipeline
//! (DESIGN.md §14): two collections of the same config must agree byte-for-
//! byte on their deterministic sections, self-diff must pass, and the diff
//! engine must catch injected drift with the right exit semantics.
//!
//! Everything lives in one test fn: `collect` runs engines that bump the
//! process-global `layout_builds_total` counter, so concurrent collections
//! in sibling tests would race each other's `layout.builds` deltas.

use hipa_bench::snapshot::{collect, SnapshotConfig};
use hipa_graph::datasets::Dataset;
use hipa_perf::{diff_snapshots, DiffOptions, MetricValue, Snapshot};

fn small_config(label: &str) -> SnapshotConfig {
    let mut cfg = SnapshotConfig::fast(label);
    cfg.datasets = vec![Dataset::Wiki];
    cfg.iterations = 5;
    cfg.serve_users = 2;
    cfg.serve_requests = 4;
    cfg
}

/// Replaces a metric's value in-place, panicking if the entry or metric is
/// missing (the test should fail loudly if the corpus shape changes).
fn poke(snap: &mut Snapshot, entry_id: &str, metric: &str, value: MetricValue) {
    let entry = snap
        .entries
        .iter_mut()
        .find(|e| e.id == entry_id)
        .unwrap_or_else(|| panic!("no entry '{entry_id}'"));
    let slot = entry
        .deterministic
        .iter_mut()
        .chain(entry.advisory.iter_mut())
        .find(|(n, _)| n == metric)
        .unwrap_or_else(|| panic!("no metric '{metric}' in '{entry_id}'"));
    slot.1 = value;
}

#[test]
fn snapshots_are_deterministic_and_diffs_gate_drift() {
    let a = collect(&small_config("det-a"));
    let b = collect(&small_config("det-b"));

    // Two runs of the same config: deterministic sections byte-identical
    // (label differs on purpose — it is excluded from the identity).
    assert_eq!(a.deterministic_json(), b.deterministic_json());

    // Round-trip through JSON preserves the deterministic identity.
    let rt = Snapshot::from_json(&a.to_json()).expect("round-trip parse");
    assert_eq!(rt.deterministic_json(), a.deterministic_json());

    // Cross-run diff passes in deterministic-only mode; self-diff passes
    // outright (advisory metrics equal to themselves never regress).
    let det_only = DiffOptions { deterministic_only: true, ..DiffOptions::default() };
    assert!(diff_snapshots(&a, &b, &det_only).ok());
    let self_diff = diff_snapshots(&a, &a, &DiffOptions::default());
    assert!(self_diff.ok());
    assert!(self_diff.compared > 0);

    // Injected drift in a deterministic metric hard-fails regardless of
    // thresholds — the rank fingerprint is the canary a gate must catch.
    let entry_id = "HiPa/sim/wiki";
    let mut bad = a.clone();
    poke(&mut bad, entry_id, "ranks.fnv1a64", MetricValue::Text("deadbeefdeadbeef".into()));
    let report = diff_snapshots(&a, &bad, &DiffOptions { wall_tol: 1e9, ..det_only });
    assert!(!report.ok());
    assert!(report.failures.iter().any(|f| f.contains("ranks.fnv1a64")));

    // Advisory drift: within tolerance passes, past it fails, and
    // deterministic-only mode ignores it entirely. Wall phases only exist
    // on the native path (sim phases are deterministic cycle counts).
    let entry_id = "HiPa/native/wiki";
    let wall =
        a.entry(entry_id)
            .unwrap()
            .advisory
            .iter()
            .find_map(|(n, v)| {
                if n.starts_with("wall_ns.") {
                    v.as_num().map(|x| (n.clone(), x))
                } else {
                    None
                }
            })
            .expect("sim entry has a wall_ns metric");
    let mut slow = a.clone();
    poke(&mut slow, entry_id, &wall.0, MetricValue::Num(wall.1 * 1.2));
    assert!(diff_snapshots(&a, &slow, &DiffOptions::default()).ok(), "+20% within 50% tol");
    poke(&mut slow, entry_id, &wall.0, MetricValue::Num(wall.1 * 3.0));
    assert!(!diff_snapshots(&a, &slow, &DiffOptions::default()).ok(), "+200% past 50% tol");
    assert!(diff_snapshots(&a, &slow, &det_only).ok(), "deterministic-only ignores wall");

    // Dropping an entry is coverage drift, not a pass.
    let mut short = a.clone();
    short.entries.retain(|e| e.id != entry_id);
    assert!(!diff_snapshots(&a, &short, &DiffOptions::default()).ok());

    // Config mismatch refuses the comparison outright.
    let mut other = a.clone();
    let iters = other.config.iter_mut().find(|(k, _)| k == "iterations").unwrap();
    iters.1 = "999".into();
    let report = diff_snapshots(&a, &other, &DiffOptions::default());
    assert!(!report.ok());
    assert!(report.failures.iter().any(|f| f.contains("not comparable")));
}
