//! Property tests: both I/O formats round-trip arbitrary edge lists, and the
//! readers reject corrupted input rather than mis-parsing it.

use hipa_graph::{io, EdgeList};
use proptest::prelude::*;

fn edge_list_strategy() -> impl Strategy<Value = EdgeList> {
    (1usize..300, prop::collection::vec((0u32..300, 0u32..300), 0..500)).prop_map(|(n, pairs)| {
        let edges = pairs
            .into_iter()
            .map(|(s, d)| hipa_graph::Edge::new(s % n as u32, d % n as u32))
            .collect();
        EdgeList::new(n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_round_trip(el in edge_list_strategy()) {
        let mut buf = Vec::new();
        io::write_text(&mut buf, &el).unwrap();
        let back = io::read_text(&buf[..]).unwrap();
        prop_assert_eq!(back, el);
    }

    #[test]
    fn binary_round_trip(el in edge_list_strategy()) {
        let mut buf = Vec::new();
        io::write_binary(&mut buf, &el).unwrap();
        let back = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(back, el);
    }

    #[test]
    fn truncated_binary_always_errors(el in edge_list_strategy(), cut in 1usize..64) {
        let mut buf = Vec::new();
        io::write_binary(&mut buf, &el).unwrap();
        if cut < buf.len() {
            let truncated = &buf[..buf.len() - cut];
            // Either the header or the payload is short — must error, never
            // silently return a different graph.
            prop_assert!(io::read_binary(truncated).is_err());
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_text_reader(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = io::read_text(&bytes[..]); // may Err, must not panic
    }

    #[test]
    fn arbitrary_bytes_never_panic_binary_reader(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = io::read_binary(&bytes[..]); // may Err, must not panic
    }
}
