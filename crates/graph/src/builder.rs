//! Incremental CSR construction with normalisation options.
//!
//! Generators emit raw pairs with duplicates and self-loops; file readers
//! emit whatever the file holds. `CsrBuilder` funnels both into a clean
//! [`DiGraph`].

use crate::{Csr, DiGraph, Edge, EdgeList, VertexId};

/// Builder accumulating edges before a single O(V + E) CSR construction.
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
    drop_self_loops: bool,
    dedup: bool,
}

impl CsrBuilder {
    /// New builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        CsrBuilder { num_vertices, edges: Vec::new(), drop_self_loops: false, dedup: false }
    }

    /// Drop `v -> v` edges during [`Self::build`].
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Collapse parallel edges during [`Self::build`].
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Pre-allocates room for `n` more edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Adds one edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        self.edges.push(Edge { src, dst });
    }

    /// Adds many edges.
    pub fn extend<I: IntoIterator<Item = (u32, u32)>>(&mut self, pairs: I) {
        for (s, d) in pairs {
            self.add_edge(s, d);
        }
    }

    /// Number of edges currently buffered (before normalisation).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalises into a [`DiGraph`], applying the configured normalisation.
    pub fn build(mut self) -> DiGraph {
        if self.drop_self_loops {
            self.edges.retain(|e| e.src != e.dst);
        }
        if self.dedup {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        let out = Csr::from_edges(self.num_vertices, &self.edges);
        DiGraph::from_out_csr(out)
    }

    /// Finalises into an [`EdgeList`] (normalisation applied).
    pub fn build_edge_list(mut self) -> EdgeList {
        if self.drop_self_loops {
            self.edges.retain(|e| e.src != e.dst);
        }
        if self.dedup {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        EdgeList::new(self.num_vertices, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_normalises() {
        let mut b = CsrBuilder::new(3).drop_self_loops(true).dedup(true);
        b.extend([(0, 1), (0, 1), (1, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_csr().neighbors(0), &[1]);
        assert_eq!(g.out_csr().neighbors(1), &[2]);
    }

    #[test]
    fn builder_keeps_parallel_edges_without_dedup() {
        let mut b = CsrBuilder::new(2);
        b.extend([(0, 1), (0, 1)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_checks_range() {
        let mut b = CsrBuilder::new(1);
        b.add_edge(0, 1);
    }

    #[test]
    fn build_edge_list_matches_build() {
        let mut b = CsrBuilder::new(4).dedup(true);
        b.extend([(2, 3), (0, 1), (2, 3)]);
        let el = b.build_edge_list();
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.num_vertices(), 4);
    }
}
