//! Edge-list file I/O.
//!
//! Two formats:
//! * **text** — one `src dst` pair per line, `#`-prefixed comment lines
//!   ignored (the SNAP dataset convention, so real LiveJournal/Twitter dumps
//!   can be dropped in as replacements for the synthetic stand-ins);
//! * **binary** — a fixed little-endian header (`magic, version, |V|, |E|`)
//!   followed by `|E|` pairs of `u32`, for fast reload of generated graphs.

use crate::{Edge, EdgeList};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x4849_5041; // "HIPA"
const VERSION: u32 = 1;

/// Reads a SNAP-style text edge list. Vertex count is inferred from the
/// maximum endpoint unless a `# Nodes: <n>` comment declares it.
pub fn read_text<R: Read>(r: R) -> io::Result<EdgeList> {
    let reader = BufReader::new(r);
    let mut edges: Vec<Edge> = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("Nodes:") {
                declared_nodes = n.split_whitespace().next().and_then(|t| t.parse().ok());
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing field", lineno + 1),
                )
            })?
            .parse()
            .map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 1))
            })
        };
        let src = parse(it.next())?;
        let dst = parse(it.next())?;
        edges.push(Edge { src, dst });
    }
    let inferred = edges.iter().map(|e| e.src.max(e.dst) as usize + 1).max().unwrap_or(0);
    let n = declared_nodes.map_or(inferred, |d| d.max(inferred));
    Ok(EdgeList::new(n, edges))
}

/// Writes the text format, with a `# Nodes:` header so isolated trailing
/// vertices round-trip.
pub fn write_text<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# Nodes: {} Edges: {}", el.num_vertices(), el.num_edges())?;
    for e in el.edges() {
        writeln!(w, "{}\t{}", e.src, e.dst)?;
    }
    w.flush()
}

/// Reads the binary format written by [`write_binary`].
pub fn read_binary<R: Read>(mut r: R) -> io::Result<EdgeList> {
    let mut head = [0u8; 16];
    r.read_exact(&mut head)?;
    let word = |i: usize| u32::from_le_bytes(head[i * 4..i * 4 + 4].try_into().unwrap());
    if word(0) != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    if word(1) != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {}", word(1)),
        ));
    }
    let n = word(2) as usize;
    let m = word(3) as usize;
    let mut buf = vec![0u8; m * 8];
    r.read_exact(&mut buf)?;
    let mut edges = Vec::with_capacity(m);
    for c in buf.chunks_exact(8) {
        edges.push(Edge {
            src: u32::from_le_bytes(c[0..4].try_into().unwrap()),
            dst: u32::from_le_bytes(c[4..8].try_into().unwrap()),
        });
    }
    Ok(EdgeList::new(n, edges))
}

/// Writes the binary format.
pub fn write_binary<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(el.num_vertices() as u32).to_le_bytes())?;
    w.write_all(&(el.num_edges() as u32).to_le_bytes())?;
    for e in el.edges() {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
    }
    w.flush()
}

/// Loads a graph from a path, picking the format by extension: `.bin` is
/// binary, anything else is text.
pub fn load_path<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    let f = std::fs::File::open(&path)?;
    if path.as_ref().extension().is_some_and(|e| e == "bin") {
        read_binary(f)
    } else {
        read_text(f)
    }
}

/// Saves a graph to a path, picking the format by extension as in
/// [`load_path`].
pub fn save_path<P: AsRef<Path>>(path: P, el: &EdgeList) -> io::Result<()> {
    let f = std::fs::File::create(&path)?;
    if path.as_ref().extension().is_some_and(|e| e == "bin") {
        write_binary(f, el)
    } else {
        write_text(f, el)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(6, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(4, 0)])
    }

    #[test]
    fn text_round_trip() {
        let el = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &el).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn text_parses_comments_and_blank_lines() {
        let input = b"# a comment\n\n0 1\n2 3\n" as &[u8];
        let el = read_text(input).unwrap();
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.num_vertices(), 4);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text(b"0 x\n" as &[u8]).is_err());
        assert!(read_text(b"0\n" as &[u8]).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &el).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = [0u8; 16];
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_truncated() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &el).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn path_round_trip_by_extension() {
        let dir = std::env::temp_dir();
        let tp = dir.join("hipa_io_test.txt");
        let bp = dir.join("hipa_io_test.bin");
        let el = sample();
        save_path(&tp, &el).unwrap();
        save_path(&bp, &el).unwrap();
        assert_eq!(load_path(&tp).unwrap(), el);
        assert_eq!(load_path(&bp).unwrap(), el);
        let _ = std::fs::remove_file(tp);
        let _ = std::fs::remove_file(bp);
    }
}
