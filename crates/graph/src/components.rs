//! Weakly-connected components via union–find, used by dataset sanity
//! checks (a PageRank stand-in should be dominated by one giant component,
//! like the real crawls) and by the BFS extension's tests.

use crate::{Csr, VertexId};

/// Union–find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `v`'s set.
    pub fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            // Path halving.
            let gp = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = gp;
            v = gp;
        }
        v
    }

    /// Merges the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of `v`'s set.
    pub fn component_size(&mut self, v: u32) -> usize {
        let r = self.find(v);
        self.size[r as usize] as usize
    }
}

/// Summary of the weakly-connected components of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSummary {
    pub num_components: usize,
    /// Vertices in the largest component.
    pub largest: usize,
    /// Component id (representative-indexed, compacted to 0..k) per vertex.
    pub label: Vec<u32>,
}

/// Computes weakly-connected components (edge direction ignored).
pub fn weakly_connected_components(csr: &Csr) -> ComponentSummary {
    let n = csr.num_vertices();
    let mut uf = UnionFind::new(n);
    for v in 0..n as VertexId {
        for &t in csr.neighbors(v) {
            uf.union(v, t);
        }
    }
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut sizes: Vec<usize> = Vec::new();
    for v in 0..n as u32 {
        let r = uf.find(v);
        if label[r as usize] == u32::MAX {
            label[r as usize] = next;
            sizes.push(0);
            next += 1;
        }
        label[v as usize] = label[r as usize];
        sizes[label[v as usize] as usize] += 1;
    }
    ComponentSummary {
        num_components: uf.num_components(),
        largest: sizes.iter().copied().max().unwrap_or(0),
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{cycle, path};
    use crate::EdgeList;

    #[test]
    fn single_component_cycle() {
        let csr = Csr::from_edge_list(&cycle(10));
        let c = weakly_connected_components(&csr);
        assert_eq!(c.num_components, 1);
        assert_eq!(c.largest, 10);
        assert!(c.label.iter().all(|&l| l == c.label[0]));
    }

    #[test]
    fn disjoint_paths() {
        // Two paths 0-1-2 and 3-4, plus isolated 5.
        let el = EdgeList::new(6, vec![(0, 1).into(), (1, 2).into(), (3, 4).into()]);
        let c = weakly_connected_components(&Csr::from_edge_list(&el));
        assert_eq!(c.num_components, 3);
        assert_eq!(c.largest, 3);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[1], c.label[2]);
        assert_eq!(c.label[3], c.label[4]);
        assert_ne!(c.label[0], c.label[3]);
        assert_ne!(c.label[3], c.label[5]);
    }

    #[test]
    fn direction_is_ignored() {
        // Directed path is weakly connected regardless of direction.
        let csr = Csr::from_edge_list(&path(20));
        assert_eq!(weakly_connected_components(&csr).num_components, 1);
    }

    #[test]
    fn union_find_invariants() {
        let mut uf = UnionFind::new(8);
        assert_eq!(uf.num_components(), 8);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.num_components(), 5);
        assert_eq!(uf.component_size(2), 4);
        assert_eq!(uf.find(1), uf.find(3));
    }

    #[test]
    fn dataset_standins_have_giant_component() {
        let g = crate::datasets::small_test_graph(55);
        let c = weakly_connected_components(g.out_csr());
        assert!(
            c.largest as f64 > 0.5 * g.num_vertices() as f64,
            "largest component {} of {}",
            c.largest,
            g.num_vertices()
        );
    }
}
