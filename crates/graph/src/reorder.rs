//! Graph reordering — the §2.1 toolbox for *temporal* locality.
//!
//! The paper's background discusses concentrating hot vertices through
//! reordering (its reference [9], "A closer look at lightweight graph
//! reordering"). These utilities produce relabelled graphs so the effect of
//! vertex order on the partition census and on engine performance can be
//! studied (see the `reordering` example and bench):
//!
//! * [`by_degree_desc`] — classic hub clustering: highest-degree vertices
//!   first, which packs the hot working set into the first partitions;
//! * [`random_permutation`] — the adversarial baseline, destroying any
//!   locality present in the input order;
//! * [`by_partition_locality`] — a greedy lightweight pass that keeps each
//!   vertex close to its most-frequent neighbour block (a cheap stand-in for
//!   community-preserving orders).

use crate::{Csr, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A vertex relabelling: `perm[old] = new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<VertexId>,
}

impl Permutation {
    /// Builds from a forward mapping (`perm[old] = new`).
    ///
    /// # Panics
    /// Panics if the mapping is not a bijection on `0..n`.
    pub fn new(forward: Vec<VertexId>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &t in &forward {
            assert!((t as usize) < n && !seen[t as usize], "not a permutation");
            seen[t as usize] = true;
        }
        Permutation { forward }
    }

    pub fn identity(n: usize) -> Self {
        Permutation { forward: (0..n as u32).collect() }
    }

    #[inline]
    pub fn map(&self, v: VertexId) -> VertexId {
        self.forward[v as usize]
    }

    pub fn len(&self) -> usize {
        self.forward.len()
    }

    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The inverse mapping (`inv[new] = old`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as VertexId; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as VertexId;
        }
        Permutation { forward: inv }
    }

    /// Applies the relabelling to an edge list.
    pub fn apply(&self, el: &EdgeList) -> EdgeList {
        assert_eq!(el.num_vertices(), self.forward.len(), "size mismatch");
        EdgeList::new(
            el.num_vertices(),
            el.edges().iter().map(|e| crate::Edge::new(self.map(e.src), self.map(e.dst))).collect(),
        )
    }
}

/// Degree-descending order: hubs get the smallest ids (out-degree by
/// default since the paper partitions by out-edges; ties keep input order,
/// so the result is deterministic).
pub fn by_degree_desc(csr: &Csr) -> Permutation {
    let n = csr.num_vertices();
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(csr.degree(v)), v));
    // order[new] = old  ->  forward[old] = new.
    let mut forward = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        forward[old as usize] = new as VertexId;
    }
    Permutation::new(forward)
}

/// Cagra-style frequency sub-clustering *within* partition boundaries
/// ("Making Caches Work for Graph Analytics", arXiv 1608.01362): inside
/// each block of `verts_per_partition` consecutive vertices, the hottest
/// vertices (highest degree in `csr` — pass the in-CSR so "hot" means
/// "accumulated into most often" for pull/gather kernels) are packed at
/// the block's front, ties keeping input order. Unlike [`by_degree_desc`]
/// this never moves a vertex across a partition boundary, so the partition
/// census (intra/inter split, bin sizes) is *identical* to the input
/// order's — only the access pattern within each partition's working set
/// changes, concentrating the frequently-touched accumulator lines at the
/// front where they stay resident in L1/L2.
pub fn by_frequency_clusters(csr: &Csr, verts_per_partition: usize) -> Permutation {
    let n = csr.num_vertices();
    let vpp = verts_per_partition.max(1);
    let mut forward = vec![0 as VertexId; n];
    let mut block: Vec<VertexId> = Vec::with_capacity(vpp);
    let mut start = 0usize;
    while start < n {
        let end = (start + vpp).min(n);
        block.clear();
        block.extend(start as u32..end as u32);
        block.sort_by_key(|&v| (std::cmp::Reverse(csr.degree(v)), v));
        for (i, &old) in block.iter().enumerate() {
            forward[old as usize] = (start + i) as VertexId;
        }
        start = end;
    }
    Permutation::new(forward)
}

/// Uniformly random relabelling (deterministic in `seed`).
pub fn random_permutation(n: usize, seed: u64) -> Permutation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut forward: Vec<VertexId> = (0..n as u32).collect();
    use rand::seq::SliceRandom;
    forward.shuffle(&mut rng);
    Permutation::new(forward)
}

/// Greedy locality order: vertices are grouped by the block (of
/// `block_size` vertices in the *input* order) where most of their
/// out-neighbours live, then concatenated block-major. Cheap (one pass over
/// the edges), and improves the intra-edge share on graphs with latent
/// community structure.
pub fn by_partition_locality(csr: &Csr, block_size: usize) -> Permutation {
    let n = csr.num_vertices();
    let bs = block_size.max(1);
    let blocks = n.div_ceil(bs).max(1);
    // Dominant neighbour block per vertex.
    let mut counts = vec![0u32; blocks];
    let mut home = vec![0u32; n];
    for v in 0..n as u32 {
        counts.iter_mut().for_each(|c| *c = 0);
        let mut best = (v as usize / bs) as u32; // default: own block
        let mut best_count = 0;
        for &t in csr.neighbors(v) {
            let b = t as usize / bs;
            counts[b] += 1;
            if counts[b] > best_count {
                best_count = counts[b];
                best = b as u32;
            }
        }
        home[v as usize] = best;
    }
    // Stable counting sort by home block.
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    order.sort_by_key(|&v| home[v as usize]);
    let mut forward = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        forward[old as usize] = new as VertexId;
    }
    Permutation::new(forward)
}

/// BFS cluster growth — a lightweight stand-in for the "sophisticated"
/// partitioning preprocessors of the paper's §5 (METIS/KaHIP/PuLP family):
/// grows clusters of at most `cluster_verts` vertices by breadth-first
/// expansion over the *undirected* neighbourhood, then relabels
/// cluster-major. One pass over the edges; recovers community structure far
/// better than the greedy per-vertex pass on graphs with latent locality.
pub fn by_cluster_growth(csr: &Csr, cluster_verts: usize) -> Permutation {
    let n = csr.num_vertices();
    let cap = cluster_verts.max(1);
    // Undirected adjacency for the growth (direction is irrelevant to
    // communication volume).
    let undirected = {
        let mut edges = Vec::with_capacity(2 * csr.num_edges());
        for (s, d) in csr.iter_edges() {
            edges.push(crate::Edge::new(s, d));
            edges.push(crate::Edge::new(d, s));
        }
        Csr::from_edges(n, &edges)
    };
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for seed in 0..n as u32 {
        if visited[seed as usize] {
            continue;
        }
        // Grow one cluster from this seed.
        let mut grown = 0usize;
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            grown += 1;
            if grown >= cap {
                // Cluster is full: anything left in the queue seeds later
                // clusters (keep their visited mark; push to order lazily
                // via a fresh growth from them).
                while let Some(rest) = queue.pop_front() {
                    visited[rest as usize] = false;
                }
                break;
            }
            for &u in undirected.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    let mut forward = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        forward[old as usize] = new as VertexId;
    }
    Permutation::new(forward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::partition_census;
    use crate::DiGraph;

    #[test]
    fn permutation_roundtrip() {
        let p = Permutation::new(vec![2, 0, 1]);
        let inv = p.inverse();
        for v in 0..3u32 {
            assert_eq!(inv.map(p.map(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_bijection() {
        Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn apply_preserves_structure() {
        let el = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let p = Permutation::new(vec![1, 2, 0]);
        let out = p.apply(&el);
        // Same cycle, relabelled.
        let g = DiGraph::from_edge_list(&out);
        for v in 0..3u32 {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn degree_desc_puts_hubs_first() {
        let g = crate::datasets::small_test_graph(44);
        let p = by_degree_desc(g.out_csr());
        let re = DiGraph::from_edge_list(&p.apply(&EdgeList::new(
            g.num_vertices(),
            g.out_csr().iter_edges().map(|(s, d)| crate::Edge::new(s, d)).collect(),
        )));
        // New vertex 0 has the max degree; degrees are non-increasing.
        let degs: Vec<u32> = (0..re.num_vertices() as u32).map(|v| re.out_degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn frequency_clusters_stay_inside_partitions() {
        let g = crate::datasets::small_test_graph(46);
        let n = g.num_vertices();
        for vpp in [1usize, 7, 64, 1024, n + 5] {
            let p = by_frequency_clusters(g.in_csr(), vpp);
            for v in 0..n as u32 {
                assert_eq!(
                    p.map(v) as usize / vpp,
                    v as usize / vpp,
                    "vpp={vpp} moved v{v} across a partition boundary"
                );
            }
            // Within each block, degrees are non-increasing in the new order.
            let inv = p.inverse();
            for b in 0..n.div_ceil(vpp) {
                let lo = b * vpp;
                let hi = ((b + 1) * vpp).min(n);
                let degs: Vec<u32> =
                    (lo..hi).map(|new| g.in_csr().degree(inv.map(new as u32))).collect();
                assert!(degs.windows(2).all(|w| w[0] >= w[1]), "block {b} not sorted: {degs:?}");
            }
        }
    }

    #[test]
    fn frequency_clusters_preserve_partition_census() {
        // The whole point: hub packing without touching the intra/inter
        // split that the partition plan depends on.
        let g = crate::datasets::small_test_graph(47);
        let el = EdgeList::new(
            g.num_vertices(),
            g.out_csr().iter_edges().map(|(s, d)| crate::Edge::new(s, d)).collect(),
        );
        let vpp = 256;
        let p = by_frequency_clusters(g.in_csr(), vpp);
        let before = partition_census(g.out_csr(), vpp);
        let after = partition_census(&Csr::from_edge_list(&p.apply(&el)), vpp);
        assert_eq!(before.num_parts, after.num_parts);
        assert_eq!(before.intra_total, after.intra_total);
        assert_eq!(before.inter_total, after.inter_total);
    }

    #[test]
    fn random_permutation_is_deterministic() {
        assert_eq!(random_permutation(100, 5), random_permutation(100, 5));
        assert_ne!(random_permutation(100, 5), random_permutation(100, 6));
    }

    #[test]
    fn cluster_growth_covers_every_vertex_once() {
        let g = crate::datasets::small_test_graph(45);
        let p = by_cluster_growth(g.out_csr(), 64);
        assert_eq!(p.len(), g.num_vertices());
        // Permutation::new already validated bijectivity; also smoke-apply.
        let el = EdgeList::new(
            g.num_vertices(),
            g.out_csr().iter_edges().map(|(s, d)| crate::Edge::new(s, d)).collect(),
        );
        assert_eq!(p.apply(&el).num_edges(), g.num_edges());
    }

    #[test]
    fn cluster_growth_beats_greedy_on_shuffled_communities() {
        use crate::gen::{zipf_graph, ZipfParams};
        let el = zipf_graph(
            &ZipfParams {
                num_vertices: 4096,
                mean_degree: 8.0,
                locality: 0.9,
                block_size: 256,
                target_exponent: 0.0,
                ..Default::default()
            },
            7,
        );
        let shuffled = random_permutation(el.num_vertices(), 13).apply(&el);
        let csr = Csr::from_edge_list(&shuffled);
        let intra = |p: &Permutation| {
            let c = partition_census(&Csr::from_edge_list(&p.apply(&shuffled)), 256);
            c.intra_total
        };
        let base = partition_census(&csr, 256).intra_total;
        let greedy = intra(&by_partition_locality(&csr, 256));
        let cluster = intra(&by_cluster_growth(&csr, 256));
        assert!(cluster > base, "cluster {cluster} vs shuffled {base}");
        assert!(cluster > greedy, "cluster {cluster} vs greedy {greedy}");
    }

    #[test]
    fn locality_order_improves_intra_share_on_shuffled_communities() {
        // Build a block-local graph, destroy its order, then recover
        // locality with the greedy pass.
        use crate::gen::{zipf_graph, ZipfParams};
        let el = zipf_graph(
            &ZipfParams {
                num_vertices: 4096,
                mean_degree: 8.0,
                locality: 0.9,
                block_size: 256,
                target_exponent: 0.0,
                ..Default::default()
            },
            3,
        );
        let shuffled = random_permutation(el.num_vertices(), 9).apply(&el);
        let csr_shuffled = Csr::from_edge_list(&shuffled);
        let before = partition_census(&csr_shuffled, 256).intra_total;

        let p = by_partition_locality(&csr_shuffled, 256);
        let recovered = Csr::from_edge_list(&p.apply(&shuffled));
        let after = partition_census(&recovered, 256).intra_total;
        assert!(after > before, "locality pass should increase intra edges: {before} -> {after}");
    }
}
