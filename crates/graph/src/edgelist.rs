//! Flat directed edge lists — the interchange format between generators,
//! file I/O and the CSR builder.

use crate::VertexId;

/// A directed edge `src -> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
}

impl Edge {
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// The edge with source and destination swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge { src: self.dst, dst: self.src }
    }
}

impl From<(u32, u32)> for Edge {
    fn from((src, dst): (u32, u32)) -> Self {
        Edge { src, dst }
    }
}

/// A directed graph as a flat list of edges plus a vertex count.
///
/// The vertex count is carried explicitly so graphs with trailing isolated
/// vertices round-trip through files and builders without losing them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an edge list over `num_vertices` vertices.
    ///
    /// # Panics
    /// Panics if any edge endpoint is out of range.
    pub fn new(num_vertices: usize, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(
                (e.src as usize) < num_vertices && (e.dst as usize) < num_vertices,
                "edge ({}, {}) out of range for {} vertices",
                e.src,
                e.dst,
                num_vertices
            );
        }
        EdgeList { num_vertices, edges }
    }

    /// Creates an edge list from `(src, dst)` pairs, inferring the vertex
    /// count as `max endpoint + 1` (0 for an empty list).
    pub fn from_pairs<I: IntoIterator<Item = (u32, u32)>>(pairs: I) -> Self {
        let edges: Vec<Edge> = pairs.into_iter().map(Edge::from).collect();
        let num_vertices = edges.iter().map(|e| e.src.max(e.dst) as usize + 1).max().unwrap_or(0);
        EdgeList { num_vertices, edges }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends an edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        self.edges.push(Edge { src, dst });
    }

    /// Returns the same graph with every edge reversed (the transpose).
    pub fn transposed(&self) -> EdgeList {
        EdgeList {
            num_vertices: self.num_vertices,
            edges: self.edges.iter().map(|e| e.reversed()).collect(),
        }
    }

    /// Sorts edges by `(src, dst)` and removes duplicates and self-loops.
    ///
    /// Generators over-sample, so deduplication is how they land near their
    /// target edge count deterministically.
    pub fn dedup_simplify(&mut self) {
        self.edges.retain(|e| e.src != e.dst);
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Consumes the list, returning its edges.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_infers_vertex_count() {
        let el = EdgeList::from_pairs([(0, 1), (1, 4)]);
        assert_eq!(el.num_vertices(), 5);
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn from_pairs_empty() {
        let el = EdgeList::from_pairs(std::iter::empty());
        assert_eq!(el.num_vertices(), 0);
        assert_eq!(el.num_edges(), 0);
        assert!(el.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        EdgeList::new(2, vec![Edge::new(0, 2)]);
    }

    #[test]
    fn transpose_reverses_each_edge() {
        let el = EdgeList::from_pairs([(0, 1), (2, 1)]);
        let t = el.transposed();
        assert_eq!(t.edges(), &[Edge::new(1, 0), Edge::new(1, 2)]);
        assert_eq!(t.num_vertices(), el.num_vertices());
    }

    #[test]
    fn dedup_removes_loops_and_duplicates() {
        let mut el = EdgeList::from_pairs([(0, 1), (1, 1), (0, 1), (1, 0)]);
        el.dedup_simplify();
        assert_eq!(el.edges(), &[Edge::new(0, 1), Edge::new(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        let mut el = EdgeList::new(2, vec![]);
        el.push(0, 5);
    }
}
