//! Graph substrate for the HiPa reproduction.
//!
//! This crate provides everything the engines need from a graph:
//!
//! * [`EdgeList`] — a flat list of directed edges, the interchange format
//!   produced by the generators and the I/O readers.
//! * [`Csr`] — compressed sparse row adjacency, the canonical in-memory
//!   representation. A [`DiGraph`] bundles the out-CSR with its transpose
//!   (the in-CSR) since pull-based engines traverse in-edges while push-based
//!   engines traverse out-edges.
//! * [`gen`] — deterministic graph generators (RMAT/Kronecker, Zipf
//!   power-law, Erdős–Rényi, and small structured graphs for tests).
//! * [`datasets`] — scaled synthetic stand-ins for the six graphs of the
//!   paper's Table 1 (journal, pld, wiki, kron, twitter, mpi).
//! * [`stats`] — degree statistics and the intra-/inter-edge census that
//!   Table 1 reports per cache-sized partition.
//! * [`reorder`] — vertex relabelling (degree clustering, random, greedy
//!   locality) for the §2.1 temporal-locality experiments.
//! * [`components`] — weakly-connected components (dataset sanity checks).
//! * [`io`] — plain-text and binary edge-list readers/writers.
//!
//! Per the paper's experimental setup (§4.1), vertex ids and rank values are
//! 4 bytes wide: [`VertexId`] is `u32` and [`Rank`] is `f32`.
#![forbid(unsafe_code)]

pub mod builder;
pub mod components;
pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod gen;
pub mod io;
pub mod reorder;
pub mod stats;
pub mod weighted;

pub use builder::CsrBuilder;
pub use csr::{Csr, DiGraph};
pub use edgelist::{Edge, EdgeList};
pub use weighted::{WeightedCsr, WeightedEdge};

/// Vertex identifier. The paper fixes vertex ids to 4 bytes (§4.1).
pub type VertexId = u32;

/// PageRank value. The paper fixes rank values to 4 bytes (§4.1).
pub type Rank = f32;

/// Number of bytes a single vertex-attribute entry occupies. Used when a
/// byte-sized cache partition is converted into a vertex count
/// (|P| = partition bytes / VERTEX_BYTES, paper §3.1).
pub const VERTEX_BYTES: usize = 4;
