//! Deterministic graph generators.
//!
//! Every generator takes an explicit seed and uses `StdRng`, so a given
//! (parameters, seed) pair always yields the same graph. The paper's
//! stand-in datasets in [`crate::datasets`] are built from these.

pub mod ba;
pub mod er;
pub mod rmat;
pub mod structured;
pub mod ws;
pub mod zipf;

pub use ba::barabasi_albert;
pub use er::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use structured::{complete, cycle, grid, path, star};
pub use ws::watts_strogatz;
pub use zipf::{zipf_graph, ZipfParams};
