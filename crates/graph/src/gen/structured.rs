//! Small structured graphs with closed-form PageRank behaviour, used by unit
//! and property tests across the workspace.

use crate::EdgeList;

/// Directed path `0 -> 1 -> ... -> n-1`.
pub fn path(n: usize) -> EdgeList {
    EdgeList::new(n, (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1).into()).collect())
}

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
///
/// Every vertex has in- and out-degree 1, so PageRank is exactly uniform —
/// the sharpest closed-form check available.
pub fn cycle(n: usize) -> EdgeList {
    assert!(n >= 1);
    EdgeList::new(n, (0..n).map(|i| (i as u32, ((i + 1) % n) as u32).into()).collect())
}

/// Star: spokes `1..n` all point at the hub `0`, and the hub points back at
/// every spoke (so there are no dangling vertices).
pub fn star(n: usize) -> EdgeList {
    assert!(n >= 2);
    let mut edges = Vec::with_capacity(2 * (n - 1));
    for i in 1..n as u32 {
        edges.push((i, 0).into());
        edges.push((0, i).into());
    }
    EdgeList::new(n, edges)
}

/// Complete directed graph (all ordered pairs, no loops). PageRank is
/// uniform by symmetry.
pub fn complete(n: usize) -> EdgeList {
    let mut edges = Vec::with_capacity(n * (n - 1));
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s != d {
                edges.push((s, d).into());
            }
        }
    }
    EdgeList::new(n, edges)
}

/// 2-D grid with edges to the right and downward neighbour — a high-locality
/// graph (nearly all edges are intra-partition under any contiguous split).
pub fn grid(rows: usize, cols: usize) -> EdgeList {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as u32;
            if c + 1 < cols {
                edges.push((v, v + 1).into());
            }
            if r + 1 < rows {
                edges.push((v, v + cols as u32).into());
            }
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    #[test]
    fn cycle_degrees_all_one() {
        let g = DiGraph::from_edge_list(&cycle(10));
        for v in 0..10u32 {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn path_has_one_dangling() {
        let g = DiGraph::from_edge_list(&path(5));
        assert_eq!(g.dangling_vertices(), vec![4]);
    }

    #[test]
    fn star_hub_degrees() {
        let g = DiGraph::from_edge_list(&star(6));
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(g.in_degree(0), 5);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn complete_counts() {
        let g = DiGraph::from_edge_list(&complete(5));
        assert_eq!(g.num_edges(), 20);
        for v in 0..5u32 {
            assert_eq!(g.out_degree(v), 4);
            assert_eq!(g.in_degree(v), 4);
        }
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        // right edges: 3 rows * 3, down edges: 2 * 4
        assert_eq!(g.num_edges(), 9 + 8);
        assert_eq!(g.num_vertices(), 12);
    }
}
