//! Zipf / power-law generator with optional target locality.
//!
//! Models crawl-style graphs (the paper's `pld`, `wiki`, `mpi` stand-ins):
//! out-degrees follow a truncated Zipf distribution, and each edge's target
//! is drawn either uniformly, from a Zipf popularity ranking (producing
//! in-degree skew — "celebrity" vertices), or from the source's own
//! community block (producing the high intra-edge counts the paper reports
//! for `wiki` and `mpi` in Table 1).

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the Zipf graph generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfParams {
    pub num_vertices: usize,
    /// Target mean out-degree; total sampled edges ≈ `num_vertices * mean_degree`.
    pub mean_degree: f64,
    /// Zipf exponent for the out-degree distribution (larger = more skew).
    pub degree_exponent: f64,
    /// Maximum out-degree (truncation), as a fraction of `num_vertices`.
    pub max_degree_frac: f64,
    /// Zipf exponent on the target popularity *ranking* (rank r drawn with
    /// probability ∝ r^-target_exponent); 0.0 = uniform targets. Web-scale
    /// in-degree distributions correspond to values around 0.8–1.0.
    pub target_exponent: f64,
    /// Probability that an edge stays inside the source's community block.
    pub locality: f64,
    /// Community block size in vertices (ignored if `locality == 0`).
    pub block_size: usize,
    /// Remove duplicate edges and self-loops.
    pub simplify: bool,
}

impl Default for ZipfParams {
    fn default() -> Self {
        ZipfParams {
            num_vertices: 1 << 12,
            mean_degree: 12.0,
            degree_exponent: 2.2,
            max_degree_frac: 0.05,
            target_exponent: 0.8,
            locality: 0.0,
            block_size: 1024,
            simplify: true,
        }
    }
}

/// Draws one value from a truncated discrete Zipf distribution over
/// `1..=max` with exponent `s`, via inverse-CDF rejection (Devroye).
/// Deterministic given the rng state.
fn zipf_sample(rng: &mut StdRng, s: f64, max: f64) -> f64 {
    // Rejection sampler for the Zipf(s) distribution, valid for s > 1.
    // For s <= 1 fall back to a bounded power-law inverse transform.
    if s > 1.0 {
        loop {
            let u: f64 = rng.gen();
            let v: f64 = rng.gen();
            let x = (1.0 - u).powf(-1.0 / (s - 1.0));
            if x > max {
                continue;
            }
            let t = (1.0 + 1.0 / x).powf(s - 1.0);
            if v * x * (t - 1.0) / (2.0f64.powf(s - 1.0) - 1.0) <= t / 2.0f64.powf(s - 1.0) {
                return x.floor();
            }
        }
    } else {
        // s <= 1: inverse transform of the continuous density x^-s on
        // [1, max+1): CDF(x) ∝ x^(1-s) - 1. Degenerates to uniform as s -> 0.
        let t = (1.0 - s).max(1e-3);
        let u: f64 = rng.gen();
        let x = (1.0 + u * ((max + 1.0).powf(t) - 1.0)).powf(1.0 / t);
        x.floor().min(max)
    }
}

/// Generates a Zipf power-law graph. Deterministic for `(params, seed)`.
pub fn zipf_graph(params: &ZipfParams, seed: u64) -> EdgeList {
    let n = params.num_vertices;
    assert!(n > 1, "need at least two vertices");
    let max_deg = ((n as f64 * params.max_degree_frac).max(1.0)).min((n - 1) as f64);
    let mut rng = StdRng::seed_from_u64(seed);

    // Sample raw out-degrees, then rescale to hit the requested mean.
    let mut degs: Vec<f64> =
        (0..n).map(|_| zipf_sample(&mut rng, params.degree_exponent, max_deg)).collect();
    let raw_mean = degs.iter().sum::<f64>() / n as f64;
    let scale = params.mean_degree / raw_mean;
    for d in &mut degs {
        *d = (*d * scale).round().min(max_deg);
    }

    let total: usize = degs.iter().map(|&d| d as usize).sum();
    let mut edges = Vec::with_capacity(total);
    let nb = params.block_size.max(1);
    // Popularity ranking decoupled from vertex ids: rank r maps to vertex
    // perm[r]. Real crawls assign ids in discovery order, which is largely
    // uncorrelated with popularity — without this, every hub lands in the
    // first few cache partitions and creates an artificial gather hotspot.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    for (src, &d) in degs.iter().enumerate() {
        let block_lo = (src / nb) * nb;
        let block_hi = (block_lo + nb).min(n);
        for _ in 0..d as usize {
            let dst = if params.locality > 0.0 && rng.gen::<f64>() < params.locality {
                rng.gen_range(block_lo..block_hi)
            } else if params.target_exponent > 0.0 {
                let r = (zipf_sample(&mut rng, params.target_exponent, n as f64) as usize - 1)
                    .min(n - 1);
                perm[r] as usize
            } else {
                rng.gen_range(0..n)
            };
            edges.push((src as u32, dst as u32));
        }
    }
    let mut el = EdgeList::new(n, edges.into_iter().map(Into::into).collect());
    if params.simplify {
        el.dedup_simplify();
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    #[test]
    fn zipf_is_deterministic() {
        let p = ZipfParams { num_vertices: 500, ..Default::default() };
        assert_eq!(zipf_graph(&p, 9), zipf_graph(&p, 9));
        assert_ne!(zipf_graph(&p, 9), zipf_graph(&p, 10));
    }

    #[test]
    fn zipf_mean_degree_roughly_met() {
        let p = ZipfParams {
            num_vertices: 4000,
            mean_degree: 10.0,
            simplify: false,
            ..Default::default()
        };
        let g = zipf_graph(&p, 1);
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((5.0..20.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn zipf_targets_are_skewed_when_exponent_positive() {
        let p = ZipfParams { num_vertices: 2000, target_exponent: 1.0, ..Default::default() };
        let g = zipf_graph(&p, 5);
        let in_csr = Csr::from_edge_list(&g).transposed();
        // A few hub vertices should collect far more in-edges than average.
        let n = in_csr.num_vertices();
        let mut degs: Vec<u32> = (0..n as u32).map(|v| in_csr.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = degs[..20].iter().map(|&d| d as u64).sum();
        let total: u64 = degs.iter().map(|&d| d as u64).sum();
        assert!(top as f64 > 0.08 * total as f64, "top20 {top} of {total}");
        // ...and the hubs must be spread over the id space, not clustered at
        // low ids (popularity is decoupled from id).
        let lo: usize = (0..100).map(|v| in_csr.degree(v) as usize).sum();
        let hi: usize = (1900..2000).map(|v| in_csr.degree(v) as usize).sum();
        assert!(lo < 10 * (hi + 1), "hubs still clustered: lo={lo} hi={hi}");
    }

    #[test]
    fn zipf_locality_keeps_edges_in_blocks() {
        let p = ZipfParams {
            num_vertices: 2048,
            locality: 1.0,
            block_size: 256,
            target_exponent: 0.0,
            ..Default::default()
        };
        let g = zipf_graph(&p, 2);
        for e in g.edges() {
            assert_eq!(e.src / 256, e.dst / 256, "edge left its block");
        }
    }

    #[test]
    fn zipf_sample_within_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..2000 {
            let x = zipf_sample(&mut rng, 2.0, 50.0);
            assert!((1.0..=50.0).contains(&x));
        }
        for _ in 0..2000 {
            let x = zipf_sample(&mut rng, 0.8, 50.0);
            assert!((1.0..=50.0).contains(&x));
        }
    }
}
