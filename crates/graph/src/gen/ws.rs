//! Watts–Strogatz small-world rewiring — a high-locality control graph.
//!
//! Starts from a ring lattice where every vertex links to its `k` nearest
//! clockwise neighbours (extreme spatial locality: under any contiguous
//! partitioning nearly all edges are intra) and rewires each edge with
//! probability `beta` to a uniform target. Sweeping `beta` from 0 to 1
//! interpolates between the best and worst case for partition-centric
//! engines — useful for locality-sensitivity studies.

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Watts–Strogatz graph: `n` vertices, `k` clockwise lattice
/// links each, rewiring probability `beta`. Deterministic for the full
/// parameter set.
///
/// # Panics
/// Panics if `k == 0`, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> EdgeList {
    assert!(k >= 1 && k < n, "need 1 <= k < n");
    assert!((0.0..=1.0).contains(&beta), "beta in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * k);
    for v in 0..n {
        for j in 1..=k {
            let lattice = ((v + j) % n) as u32;
            let dst = if rng.gen::<f64>() < beta {
                // Rewire anywhere except a self-loop.
                let mut t = rng.gen_range(0..n as u32);
                while t == v as u32 {
                    t = rng.gen_range(0..n as u32);
                }
                t
            } else {
                lattice
            };
            edges.push((v as u32, dst));
        }
    }
    let mut el = EdgeList::new(n, edges.into_iter().map(Into::into).collect());
    el.dedup_simplify();
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::partition_census;
    use crate::Csr;

    #[test]
    fn beta_zero_is_pure_lattice() {
        let g = watts_strogatz(100, 3, 0.0, 1);
        assert_eq!(g.num_edges(), 300);
        let csr = Csr::from_edge_list(&g);
        for v in 0..100u32 {
            let want: Vec<u32> = {
                let mut w: Vec<u32> = (1..=3).map(|j| (v + j) % 100).collect();
                w.sort_unstable();
                w
            };
            assert_eq!(csr.neighbors(v), &want[..]);
        }
    }

    #[test]
    fn locality_degrades_with_beta() {
        let intra = |beta: f64| {
            let g = watts_strogatz(4096, 4, beta, 5);
            let csr = Csr::from_edge_list(&g);
            let c = partition_census(&csr, 256);
            c.intra_total as f64 / (c.intra_total + c.inter_total) as f64
        };
        let lattice = intra(0.0);
        let half = intra(0.5);
        let random = intra(1.0);
        assert!(lattice > 0.9, "lattice intra {lattice}");
        assert!(lattice > half && half > random, "{lattice} > {half} > {random}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(200, 2, 0.3, 9), watts_strogatz(200, 2, 0.3, 9));
        assert_ne!(watts_strogatz(200, 2, 0.3, 9), watts_strogatz(200, 2, 0.3, 10));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        watts_strogatz(10, 2, 1.5, 0);
    }
}
