//! Barabási–Albert preferential attachment — the classic generative model
//! for the power-law degree distributions the paper's introduction
//! motivates ("a celebrity has massive social influence…").
//!
//! Each new vertex attaches `m` out-edges to existing vertices picked with
//! probability proportional to their current degree, via the standard
//! repeated-endpoint trick (sampling a uniform position in the running edge
//! list is exactly degree-proportional sampling).

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Barabási–Albert graph with `n` vertices and `m` attachments
/// per new vertex. Deterministic for `(n, m, seed)`.
///
/// The first `m + 1` vertices form a seed clique-ish core (vertex `i` links
/// to all earlier vertices), after which preferential attachment takes over.
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(m >= 1, "need at least one attachment per vertex");
    assert!(n > m, "need more vertices than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    // Flat endpoint list: every edge contributes both endpoints, so a
    // uniform draw from it is degree-proportional.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);

    // Seed core.
    for v in 1..=m as u32 {
        for t in 0..v {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    // Growth.
    for v in (m + 1) as u32..n as u32 {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    EdgeList::new(n, edges.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_summary;
    use crate::{Csr, DiGraph};

    #[test]
    fn ba_size_and_determinism() {
        let g = barabasi_albert(500, 3, 7);
        assert_eq!(g.num_vertices(), 500);
        // Seed core: 1+2+3 = 6 edges; growth vertices 4..499 contribute 3 each.
        assert_eq!(g.num_edges(), 6 + 496 * 3);
        assert_eq!(g, barabasi_albert(500, 3, 7));
        assert_ne!(g, barabasi_albert(500, 3, 8));
    }

    #[test]
    fn ba_in_degrees_are_skewed() {
        let g = barabasi_albert(2000, 4, 1);
        let in_csr = Csr::from_edge_list(&g).transposed();
        let s = degree_summary(&in_csr);
        assert!(s.max as f64 > 10.0 * s.mean, "max {} mean {}", s.max, s.mean);
        // Early vertices should be hubs (rich get richer).
        let early: u32 = (0..10).map(|v| in_csr.degree(v)).sum();
        let late: u32 = (1990..2000).map(|v| in_csr.degree(v)).sum();
        assert!(early > 5 * (late + 1));
    }

    #[test]
    fn ba_no_self_loops_or_multi_edges_per_vertex() {
        let g = barabasi_albert(300, 5, 3);
        let csr = Csr::from_edge_list(&g);
        for v in 0..300u32 {
            let nbrs = csr.neighbors(v);
            assert!(nbrs.iter().all(|&t| t != v), "self loop at {v}");
            assert!(nbrs.windows(2).all(|w| w[0] != w[1]), "parallel edge at {v}");
        }
    }

    #[test]
    fn ba_is_weakly_connected() {
        let g = barabasi_albert(400, 2, 11);
        let c = crate::components::weakly_connected_components(&Csr::from_edge_list(&g));
        assert_eq!(c.num_components, 1);
        let _ = DiGraph::from_edge_list(&g);
    }
}
