//! Erdős–Rényi G(n, m) generator — the unskewed control used by tests and
//! ablations (the paper's motivation hinges on skew, so an ER graph is the
//! natural "no skew" baseline).

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a simple directed G(n, m) graph: `m` distinct non-loop edges
/// sampled uniformly. Deterministic for `(n, m, seed)`.
///
/// # Panics
/// Panics if `m` exceeds the number of possible non-loop edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 1, "need at least one vertex");
    let possible = n.saturating_mul(n - 1);
    assert!(m <= possible, "m = {m} exceeds possible edge count {possible}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let s = rng.gen_range(0..n) as u32;
        let d = rng.gen_range(0..n) as u32;
        if s != d && seen.insert((s, d)) {
            edges.push((s, d));
        }
    }
    EdgeList::new(n, edges.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_exact_edge_count_no_dups() {
        let g = erdos_renyi(100, 500, 3);
        assert_eq!(g.num_edges(), 500);
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert_ne!(e.src, e.dst);
            assert!(seen.insert((e.src, e.dst)));
        }
    }

    #[test]
    fn er_deterministic() {
        assert_eq!(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 7));
        assert_ne!(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 8));
    }

    #[test]
    #[should_panic(expected = "exceeds possible")]
    fn er_rejects_impossible_density() {
        erdos_renyi(3, 7, 0);
    }
}
