//! R-MAT / Graph500 Kronecker generator.
//!
//! The paper's `kron` dataset is produced by the Graph500 Kronecker
//! generator (scale 23); `journal` and `twitter` stand-ins also use R-MAT
//! with skew tuned per graph. This is the classic recursive quadrant
//! sampler: each edge picks one of four quadrants per scale level with
//! probabilities `(a, b, c, d)`.

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the R-MAT recursive matrix generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Edges to *sample* (duplicates/self-loops removed afterwards if
    /// `simplify` is set, so the realised count is slightly lower).
    pub edges: usize,
    /// Quadrant probabilities; `d` is implied as `1 - a - b - c`.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Remove duplicate edges and self-loops after sampling.
    pub simplify: bool,
    /// Randomly permute vertex ids afterwards to break the id-degree
    /// correlation R-MAT otherwise exhibits. Graph500 does this; natural
    /// datasets (journal/twitter crawls) keep crawl order, so stand-ins for
    /// those set it to `false`.
    pub shuffle_ids: bool,
}

impl RmatParams {
    /// Graph500 reference parameters (a=0.57, b=c=0.19).
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatParams {
            scale,
            edges: (1usize << scale) * edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            simplify: true,
            shuffle_ids: true,
        }
    }
}

/// Generates an R-MAT graph. Deterministic for a given `(params, seed)`.
pub fn rmat(params: &RmatParams, seed: u64) -> EdgeList {
    assert!(params.scale <= 31, "scale {} too large", params.scale);
    let d = 1.0 - params.a - params.b - params.c;
    assert!(
        params.a >= 0.0 && params.b >= 0.0 && params.c >= 0.0 && d >= 0.0,
        "quadrant probabilities must be non-negative and sum to <= 1"
    );
    let n = 1usize << params.scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(params.edges);
    // Per-level probability noise (+-10%) as in the Graph500 reference code,
    // which smooths the otherwise blocky degree distribution.
    for _ in 0..params.edges {
        let (mut lo_s, mut lo_d) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let ab = params.a + params.b;
            let noise = |p: f64, rng: &mut StdRng| p * (0.9 + 0.2 * rng.gen::<f64>());
            let a_ = noise(params.a, &mut rng);
            let b_ = noise(params.b, &mut rng);
            let c_ = noise(params.c, &mut rng);
            let d_ = noise(d, &mut rng);
            let norm = a_ + b_ + c_ + d_;
            let r: f64 = rng.gen::<f64>() * norm;
            let _ = ab;
            if r < a_ {
                // top-left: neither bit set
            } else if r < a_ + b_ {
                lo_d += half;
            } else if r < a_ + b_ + c_ {
                lo_s += half;
            } else {
                lo_s += half;
                lo_d += half;
            }
            half >>= 1;
        }
        edges.push((lo_s as u32, lo_d as u32));
    }
    if params.shuffle_ids {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        // Fisher–Yates with the same rng keeps the whole pipeline one-seed.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for e in &mut edges {
            e.0 = perm[e.0 as usize];
            e.1 = perm[e.1 as usize];
        }
    }
    let mut el = EdgeList::new(n, edges.into_iter().map(Into::into).collect());
    if params.simplify {
        el.dedup_simplify();
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let p = RmatParams::graph500(8, 8);
        let g1 = rmat(&p, 42);
        let g2 = rmat(&p, 42);
        assert_eq!(g1, g2);
    }

    #[test]
    fn rmat_seed_changes_output() {
        let p = RmatParams::graph500(8, 8);
        assert_ne!(rmat(&p, 1), rmat(&p, 2));
    }

    #[test]
    fn rmat_respects_vertex_bound() {
        let p = RmatParams::graph500(6, 4);
        let g = rmat(&p, 7);
        assert_eq!(g.num_vertices(), 64);
        for e in g.edges() {
            assert!(e.src < 64 && e.dst < 64);
        }
    }

    #[test]
    fn rmat_simplify_removes_loops_and_dups() {
        let p = RmatParams { simplify: true, ..RmatParams::graph500(7, 16) };
        let g = rmat(&p, 3);
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert_ne!(e.src, e.dst, "self-loop survived");
            assert!(seen.insert((e.src, e.dst)), "duplicate survived");
        }
    }

    #[test]
    fn rmat_is_skewed() {
        // With Graph500 parameters the max degree should far exceed the mean.
        let p = RmatParams::graph500(10, 16);
        let g = rmat(&p, 11);
        let csr = crate::Csr::from_edge_list(&g);
        let n = csr.num_vertices();
        let mean = csr.num_edges() as f64 / n as f64;
        let max = (0..n).map(|v| csr.degree(v as u32)).max().unwrap();
        assert!((max as f64) > 6.0 * mean, "expected skew: max degree {max} vs mean {mean:.1}");
    }
}
