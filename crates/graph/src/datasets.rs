//! Scaled synthetic stand-ins for the six graphs in the paper's Table 1.
//!
//! The originals (LiveJournal, Pay-Level-Domain, Wiki Links, Graph500
//! Kronecker scale-23, Twitter follower, Twitter influence) range from
//! 68 M to 2.1 B edges — far beyond what a per-access machine simulation can
//! chew through. Each stand-in keeps the original's *character* (mean
//! degree, degree skew, id ordering, and the intra-/inter-edge balance that
//! drives the paper's partition-size results) at 64–1000× reduced scale.
//! All are deterministic: fixed generator parameters, fixed seed.
//!
//! The substitution is documented in `DESIGN.md` §2/§5; the realised sizes
//! are printed by the Table 1 harness (`cargo run -p hipa-bench --bin table1`).

use crate::gen::{rmat, zipf_graph, RmatParams, ZipfParams};
use crate::{DiGraph, EdgeList};

/// The six evaluation graphs of the paper, as scaled stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// LiveJournal social network (paper: 4.8 M vertices, 68.5 M edges).
    Journal,
    /// Pay-Level-Domain web hyperlinks (paper: 42.9 M / 0.6 B).
    Pld,
    /// Wikipedia links (paper: 18.3 M / 0.2 B).
    Wiki,
    /// Graph500 Kronecker scale-23 (paper: 67 M / 2.1 B).
    Kron,
    /// Twitter follower network (paper: 41.7 M / 1.5 B).
    Twitter,
    /// Twitter influence / MPI crawl (paper: 52.6 M / 2.0 B).
    Mpi,
}

impl Dataset {
    /// All six, in the paper's Table 1 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Journal,
        Dataset::Pld,
        Dataset::Wiki,
        Dataset::Kron,
        Dataset::Twitter,
        Dataset::Mpi,
    ];

    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Journal => "journal",
            Dataset::Pld => "pld",
            Dataset::Wiki => "wiki",
            Dataset::Kron => "kron",
            Dataset::Twitter => "twitter",
            Dataset::Mpi => "mpi",
        }
    }

    /// Original (paper) vertex and edge counts, for the scale column the
    /// EXPERIMENTS.md report prints next to the realised stand-in sizes.
    pub fn paper_size(self) -> (u64, u64) {
        match self {
            Dataset::Journal => (4_800_000, 68_500_000),
            Dataset::Pld => (42_900_000, 600_000_000),
            Dataset::Wiki => (18_300_000, 200_000_000),
            Dataset::Kron => (67_000_000, 2_100_000_000),
            Dataset::Twitter => (41_700_000, 1_500_000_000),
            Dataset::Mpi => (52_600_000, 2_000_000_000),
        }
    }

    /// Generates the stand-in edge list. Deterministic.
    pub fn edge_list(self) -> EdgeList {
        match self {
            // Social network, community id ordering destroyed by crawl →
            // inter-heavy under contiguous splits: shuffled R-MAT.
            Dataset::Journal => rmat(
                &RmatParams {
                    scale: 16,
                    edges: 1_070_000,
                    a: 0.57,
                    b: 0.19,
                    c: 0.19,
                    simplify: true,
                    shuffle_ids: true,
                },
                0xC0FF_EE01,
            ),
            // Web PLD graph: strong hub skew (popular domains), mild crawl
            // locality.
            Dataset::Pld => zipf_graph(
                &ZipfParams {
                    num_vertices: 160_000,
                    mean_degree: 15.5,
                    degree_exponent: 1.7,
                    max_degree_frac: 0.02,
                    target_exponent: 0.85,
                    locality: 0.15,
                    block_size: 4096,
                    simplify: true,
                },
                0xC0FF_EE02,
            ),
            // Wiki links: article ids cluster by topic → intra-heavy.
            Dataset::Wiki => zipf_graph(
                &ZipfParams {
                    num_vertices: 143_000,
                    mean_degree: 12.5,
                    degree_exponent: 1.8,
                    max_degree_frac: 0.02,
                    target_exponent: 0.75,
                    locality: 0.5,
                    block_size: 4096,
                    simplify: true,
                },
                0xC0FF_EE03,
            ),
            // Graph500 Kronecker, reference parameters and id shuffle.
            Dataset::Kron => rmat(
                &RmatParams {
                    scale: 16,
                    edges: 2_030_000,
                    a: 0.57,
                    b: 0.19,
                    c: 0.19,
                    simplify: true,
                    shuffle_ids: true,
                },
                0xC0FF_EE04,
            ),
            // Twitter follower: extreme skew; crawl ids are uncorrelated
            // with degree (Table 1 shows twitter is as intra-poor as
            // journal), so ids are shuffled.
            Dataset::Twitter => rmat(
                &RmatParams {
                    scale: 16,
                    edges: 2_300_000,
                    a: 0.57,
                    b: 0.19,
                    c: 0.19,
                    simplify: true,
                    shuffle_ids: true,
                },
                0xC0FF_EE05,
            ),
            // Twitter influence (MPI crawl): densest, highest intra count in
            // Table 1 → strong community locality.
            Dataset::Mpi => zipf_graph(
                &ZipfParams {
                    num_vertices: 64_000,
                    mean_degree: 42.0,
                    degree_exponent: 1.7,
                    max_degree_frac: 0.03,
                    target_exponent: 0.8,
                    locality: 0.6,
                    block_size: 8192,
                    simplify: true,
                },
                0xC0FF_EE06,
            ),
        }
    }

    /// Generates the stand-in as a [`DiGraph`] (both directions built).
    pub fn build(self) -> DiGraph {
        DiGraph::from_edge_list(&self.edge_list())
    }
}

/// A small (~1 K vertex) skewed graph for unit/integration tests that need a
/// "realistic" shape without dataset-scale build times.
pub fn small_test_graph(seed: u64) -> DiGraph {
    DiGraph::from_edge_list(&rmat(
        &RmatParams {
            scale: 10,
            edges: 12_000,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            simplify: true,
            shuffle_ids: true,
        },
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_deterministic() {
        // Only the two cheapest; full determinism of generators is covered in
        // the generator tests.
        assert_eq!(Dataset::Journal.edge_list(), Dataset::Journal.edge_list());
    }

    #[test]
    fn journal_standin_size_in_band() {
        let el = Dataset::Journal.edge_list();
        assert_eq!(el.num_vertices(), 65_536);
        assert!(
            (800_000..1_100_000).contains(&el.num_edges()),
            "journal edges = {}",
            el.num_edges()
        );
    }

    #[test]
    fn small_test_graph_usable() {
        let g = small_test_graph(1);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 5_000);
    }

    #[test]
    fn names_match_paper_order() {
        let names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["journal", "pld", "wiki", "kron", "twitter", "mpi"]);
    }
}
