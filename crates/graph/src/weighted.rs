//! Edge-weighted graphs.
//!
//! The paper's PageRank is unweighted, but its §1 frames the computation as
//! SpMV over the adjacency matrix — and a general sparse matrix has values.
//! [`WeightedCsr`] pairs a [`Csr`] with one `f32` per edge, stored in CSR
//! order (so `weights[k]` belongs to the k-th entry of the targets array),
//! which is exactly what the weighted SpMV and personalized-PageRank
//! extensions consume.

use crate::{Csr, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed edge with a weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    pub src: VertexId,
    pub dst: VertexId,
    pub weight: f32,
}

/// CSR adjacency plus per-edge weights in CSR order.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedCsr {
    csr: Csr,
    weights: Vec<f32>,
}

impl WeightedCsr {
    /// Builds from weighted edges. Parallel edges are kept (their weights
    /// both apply, as in a general sparse matrix); entries are ordered by
    /// `(src, dst)` with ties keeping input order.
    pub fn from_weighted_edges(num_vertices: usize, edges: &[WeightedEdge]) -> Self {
        // Stable sort by (src, dst) mirrors Csr::from_edges' canonical order
        // while keeping weights attached.
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by_key(|&i| (edges[i].src, edges[i].dst));
        let plain: Vec<crate::Edge> =
            order.iter().map(|&i| crate::Edge::new(edges[i].src, edges[i].dst)).collect();
        // The plain edges are already sorted; Csr::from_edges re-sorts runs
        // stably (they are already in order), so weight k matches target k.
        let csr = Csr::from_edges(num_vertices, &plain);
        let weights = order.iter().map(|&i| edges[i].weight).collect();
        WeightedCsr { csr, weights }
    }

    /// Attaches uniform weight 1.0 to every edge of an existing graph —
    /// the embedding of the unweighted case.
    pub fn unit_weights(csr: Csr) -> Self {
        let weights = vec![1.0; csr.num_edges()];
        WeightedCsr { csr, weights }
    }

    /// Attaches deterministic pseudo-random weights in `(lo, hi]` to an
    /// edge list's graph.
    pub fn random_weights(el: &EdgeList, lo: f32, hi: f32, seed: u64) -> Self {
        assert!(hi > lo, "empty weight range");
        let csr = Csr::from_edge_list(el);
        let mut rng = StdRng::seed_from_u64(seed);
        let weights =
            (0..csr.num_edges()).map(|_| rng.gen_range(lo..=hi).max(lo + f32::EPSILON)).collect();
        WeightedCsr { csr, weights }
    }

    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Neighbours of `v` with their weights.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let lo = self.csr.offset(v) as usize;
        let hi = self.csr.offset(v + 1) as usize;
        self.csr.neighbors(v).iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// The raw weight array, parallel to `csr().targets_raw()`.
    #[inline]
    pub fn weights_raw(&self) -> &[f32] {
        &self.weights
    }

    /// Sum of outgoing weights per vertex (the weighted out-degree that a
    /// weighted PageRank divides by).
    pub fn out_weight_sums(&self) -> Vec<f32> {
        (0..self.num_vertices() as u32).map(|v| self.neighbors(v).map(|(_, w)| w).sum()).collect()
    }

    /// The transpose with weights carried along: entry `(v, u, w)` for every
    /// `(u, v, w)` here.
    pub fn transposed(&self) -> WeightedCsr {
        let mut edges = Vec::with_capacity(self.num_edges());
        for v in 0..self.num_vertices() as u32 {
            for (t, w) in self.neighbors(v) {
                edges.push(WeightedEdge { src: t, dst: v, weight: w });
            }
        }
        WeightedCsr::from_weighted_edges(self.num_vertices(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedCsr {
        WeightedCsr::from_weighted_edges(
            4,
            &[
                WeightedEdge { src: 0, dst: 2, weight: 2.0 },
                WeightedEdge { src: 0, dst: 1, weight: 1.0 },
                WeightedEdge { src: 1, dst: 3, weight: 4.0 },
                WeightedEdge { src: 3, dst: 0, weight: 8.0 },
            ],
        )
    }

    #[test]
    fn weights_follow_sorted_targets() {
        let w = sample();
        let n0: Vec<_> = w.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 1.0), (2, 2.0)]);
        assert_eq!(w.neighbors(1).collect::<Vec<_>>(), vec![(3, 4.0)]);
    }

    #[test]
    fn out_weight_sums() {
        let w = sample();
        assert_eq!(w.out_weight_sums(), vec![3.0, 4.0, 0.0, 8.0]);
    }

    #[test]
    fn unit_weights_embed_unweighted() {
        let el = EdgeList::from_pairs([(0, 1), (1, 2)]);
        let w = WeightedCsr::unit_weights(Csr::from_edge_list(&el));
        assert!(w.weights_raw().iter().all(|&x| x == 1.0));
        assert_eq!(w.out_weight_sums(), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn transpose_preserves_weights() {
        let w = sample();
        let t = w.transposed();
        assert_eq!(t.neighbors(2).collect::<Vec<_>>(), vec![(0, 2.0)]);
        assert_eq!(t.neighbors(0).collect::<Vec<_>>(), vec![(3, 8.0)]);
        // Double transpose is the identity.
        assert_eq!(t.transposed(), w);
    }

    #[test]
    fn random_weights_deterministic_and_in_range() {
        let el = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let a = WeightedCsr::random_weights(&el, 0.5, 2.0, 9);
        let b = WeightedCsr::random_weights(&el, 0.5, 2.0, 9);
        assert_eq!(a, b);
        assert!(a.weights_raw().iter().all(|&w| (0.5..=2.0).contains(&w)));
    }

    #[test]
    fn parallel_edges_keep_both_weights() {
        let w = WeightedCsr::from_weighted_edges(
            2,
            &[
                WeightedEdge { src: 0, dst: 1, weight: 1.0 },
                WeightedEdge { src: 0, dst: 1, weight: 3.0 },
            ],
        );
        let ws: Vec<f32> = w.neighbors(0).map(|(_, x)| x).collect();
        assert_eq!(ws, vec![1.0, 3.0]);
    }
}
