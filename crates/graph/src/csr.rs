//! Compressed sparse row adjacency.
//!
//! [`Csr`] stores one direction of adjacency (out-edges when built from an
//! edge list directly, in-edges when built from its transpose). [`DiGraph`]
//! bundles both directions plus the degree arrays every PageRank variant
//! needs: push/scatter engines walk out-edges, pull/gather engines walk
//! in-edges but divide by *out*-degree.

use crate::{EdgeList, VertexId};

/// Compressed sparse row adjacency structure.
///
/// `offsets` has `num_vertices + 1` entries; the neighbours of vertex `v`
/// are `targets[offsets[v] .. offsets[v + 1]]`, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from unsorted `(src, dst)` pairs using counting sort —
    /// O(V + E), no comparison sort of the edge array.
    pub fn from_edges(num_vertices: usize, edges: &[crate::Edge]) -> Self {
        let mut offsets = vec![0u64; num_vertices + 1];
        for e in edges {
            offsets[e.src as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut cursor = offsets.clone();
        for e in edges {
            let c = &mut cursor[e.src as usize];
            targets[*c as usize] = e.dst;
            *c += 1;
        }
        // Sort each adjacency run so neighbour order is canonical.
        for v in 0..num_vertices {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Builds from an [`EdgeList`].
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Self::from_edges(el.num_vertices(), el.edges())
    }

    /// Parallel variant of [`Self::from_edges`]: the counting sort is
    /// sequential (O(V + E) and memory-bound) but the per-vertex adjacency
    /// sorting — the dominant cost on skewed graphs — fans out over a rayon
    /// pool. Produces exactly the same CSR as the sequential builder.
    pub fn from_edges_parallel(num_vertices: usize, edges: &[crate::Edge]) -> Self {
        use rayon::prelude::*;
        let mut offsets = vec![0u64; num_vertices + 1];
        for e in edges {
            offsets[e.src as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut cursor = offsets.clone();
        for e in edges {
            let c = &mut cursor[e.src as usize];
            targets[c.to_owned() as usize] = e.dst;
            *c += 1;
        }
        // Split the target array into disjoint per-vertex runs, then sort
        // them in parallel.
        let mut runs: Vec<&mut [VertexId]> = Vec::with_capacity(num_vertices);
        let mut rest: &mut [VertexId] = &mut targets;
        for v in 0..num_vertices {
            let len = (offsets[v + 1] - offsets[v]) as usize;
            let (run, tail) = rest.split_at_mut(len);
            runs.push(run);
            rest = tail;
        }
        runs.par_iter_mut().for_each(|r| r.sort_unstable());
        Csr { offsets, targets }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v` in the stored direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Neighbours of `v` in the stored direction, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Index into [`Self::targets_raw`] where `v`'s adjacency run begins.
    #[inline]
    pub fn offset(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// The raw offsets array (`num_vertices + 1` entries).
    #[inline]
    pub fn offsets_raw(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated targets array.
    #[inline]
    pub fn targets_raw(&self) -> &[VertexId] {
        &self.targets
    }

    /// Returns the transpose (edge direction reversed).
    pub fn transposed(&self) -> Csr {
        let n = self.num_vertices();
        let mut offsets = vec![0u64; n + 1];
        for &t in &self.targets {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut cursor = offsets.clone();
        for v in 0..n {
            // Source vertices visited ascending, so each adjacency run in the
            // transpose is filled in ascending order — already sorted.
            for &t in self.neighbors(v as VertexId) {
                let c = &mut cursor[t as usize];
                targets[*c as usize] = v as VertexId;
                *c += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// Iterates all edges `(src, dst)` in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.neighbors(v as VertexId).iter().map(move |&t| (v as VertexId, t))
        })
    }
}

/// A directed graph holding both adjacency directions and degree arrays.
///
/// * `out` — out-edge CSR (scatter/push traversal);
/// * `in_` — in-edge CSR (gather/pull traversal);
/// * `out_degree[v]` — what PageRank divides `v`'s rank by.
#[derive(Debug, Clone)]
pub struct DiGraph {
    out: Csr,
    in_: Csr,
    out_degree: Vec<u32>,
}

impl DiGraph {
    /// Builds both directions from an edge list.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let out = Csr::from_edge_list(el);
        Self::from_out_csr(out)
    }

    /// Builds from an out-CSR, deriving the transpose and degrees.
    pub fn from_out_csr(out: Csr) -> Self {
        let in_ = out.transposed();
        let out_degree = (0..out.num_vertices()).map(|v| out.degree(v as VertexId)).collect();
        DiGraph { out, in_, out_degree }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Out-edge CSR.
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// In-edge CSR.
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.in_
    }

    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out_degree[v as usize]
    }

    #[inline]
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degree
    }

    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.in_.degree(v)
    }

    /// Vertices with no outgoing edges (PageRank "dangling" vertices).
    pub fn dangling_vertices(&self) -> Vec<VertexId> {
        (0..self.num_vertices() as u32).filter(|&v| self.out_degree[v as usize] == 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn diamond() -> EdgeList {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        EdgeList::from_pairs([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_basic_structure() {
        let csr = Csr::from_edge_list(&diamond());
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[3]);
        assert_eq!(csr.neighbors(3), &[] as &[u32]);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(3), 0);
    }

    #[test]
    fn csr_sorts_adjacency_runs() {
        let el = EdgeList::from_pairs([(0, 3), (0, 1), (0, 2)]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn transpose_is_involution() {
        let csr = Csr::from_edge_list(&diamond());
        assert_eq!(csr.transposed().transposed(), csr);
    }

    #[test]
    fn transpose_reverses_edges() {
        let csr = Csr::from_edge_list(&diamond());
        let t = csr.transposed();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
    }

    #[test]
    fn iter_edges_yields_all_in_order() {
        let csr = Csr::from_edge_list(&diamond());
        let edges: Vec<_> = csr.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn digraph_degrees_and_dangling() {
        let g = DiGraph::from_edge_list(&diamond());
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.dangling_vertices(), vec![3]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edge_list(&EdgeList::new(0, vec![]));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn parallel_builder_matches_sequential() {
        let el = crate::datasets::small_test_graph(99);
        let edges: Vec<crate::Edge> =
            el.out_csr().iter_edges().map(|(s, d)| crate::Edge::new(s, d)).collect();
        let seq = Csr::from_edges(el.num_vertices(), &edges);
        let par = Csr::from_edges_parallel(el.num_vertices(), &edges);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_builder_empty_and_tiny() {
        assert_eq!(Csr::from_edges_parallel(0, &[]), Csr::from_edges(0, &[]));
        let e = [crate::Edge::new(0, 2), crate::Edge::new(0, 1)];
        assert_eq!(Csr::from_edges_parallel(3, &e).neighbors(0), &[1, 2]);
    }

    #[test]
    fn isolated_vertices_preserved() {
        let g = DiGraph::from_edge_list(&EdgeList::new(10, vec![crate::Edge::new(0, 1)]));
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.dangling_vertices().len(), 9);
    }
}
