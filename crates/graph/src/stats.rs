//! Graph statistics: degree summaries and the intra-/inter-edge census of
//! the paper's Table 1.
//!
//! A *partition* here is a contiguous vertex-id range holding `verts_per_part`
//! vertices (the paper's |P| = partition bytes / 4). An edge whose endpoints
//! fall in the same partition is an **intra-edge**; one that crosses is an
//! **inter-edge**. The paper's edge-compression (§3.4) collapses all
//! inter-edges sharing a source vertex and a destination partition into one
//! message, so the census also reports the compressed inter count.

use crate::{Csr, VertexId};

/// Summary of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSummary {
    pub min: u32,
    pub max: u32,
    pub mean: f64,
    pub p50: u32,
    pub p90: u32,
    pub p99: u32,
    /// Fraction of all edges owned by the top 10 % highest-degree vertices —
    /// the paper's "10 % of vertices hold 90 % of edges" skew measure.
    pub top10_edge_share: f64,
}

/// Computes a [`DegreeSummary`] for the stored direction of `csr`.
pub fn degree_summary(csr: &Csr) -> DegreeSummary {
    let n = csr.num_vertices();
    assert!(n > 0, "empty graph has no degree distribution");
    let mut degs: Vec<u32> = (0..n).map(|v| csr.degree(v as VertexId)).collect();
    degs.sort_unstable();
    let total: u64 = degs.iter().map(|&d| d as u64).sum();
    let pct = |p: f64| degs[((n - 1) as f64 * p) as usize];
    let top10_cut = n - (n / 10).max(1);
    let top10: u64 = degs[top10_cut..].iter().map(|&d| d as u64).sum();
    DegreeSummary {
        min: degs[0],
        max: degs[n - 1],
        mean: total as f64 / n as f64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        top10_edge_share: if total == 0 { 0.0 } else { top10 as f64 / total as f64 },
    }
}

/// Result of the per-partition intra/inter edge census (Table 1 columns).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionCensus {
    pub verts_per_part: usize,
    pub num_parts: usize,
    /// Total edges whose endpoints share a partition.
    pub intra_total: u64,
    /// Total edges crossing partitions, uncompressed.
    pub inter_total: u64,
    /// Total inter-edges after source-vertex × destination-partition
    /// compression (paper §3.4 / Fig. 4).
    pub inter_compressed_total: u64,
    /// Mean intra-edges per partition (Table 1 "Intra").
    pub intra_per_part: f64,
    /// Mean uncompressed inter-edges per partition (Table 1 "Inter").
    pub inter_per_part: f64,
}

impl PartitionCensus {
    /// Compression ratio achieved on inter-edges (≥ 1.0; 1.0 = nothing to
    /// compress).
    pub fn compression_ratio(&self) -> f64 {
        if self.inter_compressed_total == 0 {
            1.0
        } else {
            self.inter_total as f64 / self.inter_compressed_total as f64
        }
    }
}

/// Log-binned degree histogram: bucket `i` counts vertices with degree in
/// `[2^i, 2^(i+1))` (bucket 0 additionally holds degree-0 vertices at index
/// 0 via the returned `zeros` field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    pub zeros: usize,
    /// `buckets[i]` = vertices with degree in `[2^i, 2^(i+1))`.
    pub buckets: Vec<usize>,
}

/// Builds the log-binned degree histogram for the stored direction.
pub fn degree_histogram(csr: &Csr) -> DegreeHistogram {
    let mut zeros = 0usize;
    let mut buckets: Vec<usize> = Vec::new();
    for v in 0..csr.num_vertices() as u32 {
        let d = csr.degree(v);
        if d == 0 {
            zeros += 1;
            continue;
        }
        let b = (u32::BITS - 1 - d.leading_zeros()) as usize;
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    DegreeHistogram { zeros, buckets }
}

/// Hill estimator of the power-law exponent alpha of the degree
/// distribution's tail (`p(k) ~ k^-alpha`), using all degrees `>= k_min`.
/// Returns `None` if fewer than 10 vertices reach `k_min`. Natural graphs
/// land around 2–3; the paper's skew narrative assumes this regime.
pub fn powerlaw_exponent(csr: &Csr, k_min: u32) -> Option<f64> {
    assert!(k_min >= 1);
    let mut sum_log = 0.0f64;
    let mut count = 0usize;
    for v in 0..csr.num_vertices() as u32 {
        let d = csr.degree(v);
        if d >= k_min {
            sum_log += (d as f64 / k_min as f64).ln();
            count += 1;
        }
    }
    if count < 10 || sum_log <= 0.0 {
        return None;
    }
    Some(1.0 + count as f64 / sum_log)
}

/// Runs the census on an out-CSR for contiguous partitions of
/// `verts_per_part` vertices (the last partition may be short).
pub fn partition_census(csr: &Csr, verts_per_part: usize) -> PartitionCensus {
    assert!(verts_per_part > 0, "partition must hold at least one vertex");
    let n = csr.num_vertices();
    let num_parts = n.div_ceil(verts_per_part).max(1);
    let part_of = |v: VertexId| v as usize / verts_per_part;
    let mut intra = 0u64;
    let mut inter = 0u64;
    let mut inter_compressed = 0u64;
    for v in 0..n as u32 {
        let pv = part_of(v);
        // Neighbours are sorted, so destination partitions appear in runs;
        // one compressed message per distinct destination partition.
        let mut last_part = usize::MAX;
        for &t in csr.neighbors(v) {
            let pt = part_of(t);
            if pt == pv {
                intra += 1;
            } else {
                inter += 1;
                if pt != last_part {
                    inter_compressed += 1;
                }
            }
            last_part = pt;
        }
    }
    PartitionCensus {
        verts_per_part,
        num_parts,
        intra_total: intra,
        inter_total: inter,
        inter_compressed_total: inter_compressed,
        intra_per_part: intra as f64 / num_parts as f64,
        inter_per_part: inter as f64 / num_parts as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{cycle, grid};
    use crate::{Csr, EdgeList};

    #[test]
    fn census_counts_toy_graph() {
        // Vertices 0..4, parts of 2: {0,1}, {2,3}.
        let el = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (0, 3)]);
        let csr = Csr::from_edge_list(&el);
        let c = partition_census(&csr, 2);
        assert_eq!(c.num_parts, 2);
        assert_eq!(c.intra_total, 2); // (0,1), (2,3)
        assert_eq!(c.inter_total, 4); // (1,2), (3,0), (0,2), (0,3)
                                      // Vertex 0 sends two inter-edges into partition 1 -> compressed to 1.
        assert_eq!(c.inter_compressed_total, 3);
        assert!((c.compression_ratio() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn grid_is_intra_heavy_under_row_partitions() {
        // Rows of the grid land in the same partition, so only the downward
        // edges cross.
        let el = grid(8, 16);
        let csr = Csr::from_edge_list(&el);
        let c = partition_census(&csr, 16);
        assert!(c.intra_total > c.inter_total);
    }

    #[test]
    fn cycle_census_single_partition() {
        let csr = Csr::from_edge_list(&cycle(10));
        let c = partition_census(&csr, 100);
        assert_eq!(c.num_parts, 1);
        assert_eq!(c.inter_total, 0);
        assert_eq!(c.intra_total, 10);
    }

    #[test]
    fn degree_summary_cycle_uniform() {
        let csr = Csr::from_edge_list(&cycle(100));
        let s = degree_summary(&csr);
        assert_eq!((s.min, s.max, s.p50), (1, 1, 1));
        assert!((s.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_summary_detects_skew() {
        let g = crate::datasets::small_test_graph(3);
        let s = degree_summary(g.out_csr());
        assert!(s.max as f64 > 5.0 * s.mean);
        assert!(s.top10_edge_share > 0.3);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        // Degrees: 0, 1, 2, 3, 4, 8.
        let el = EdgeList::new(
            6,
            [
                (1u32, 0u32),
                (2, 0),
                (2, 1),
                (3, 0),
                (3, 1),
                (3, 2),
                (4, 0),
                (4, 1),
                (4, 2),
                (4, 3),
                (5, 0),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
                (5, 4),
                (5, 4),
                (5, 4),
            ]
            .into_iter()
            .map(Into::into)
            .collect(),
        );
        let h = degree_histogram(&Csr::from_edge_list(&el));
        assert_eq!(h.zeros, 1);
        assert_eq!(h.buckets, vec![1, 2, 1, 1]); // [1], [2,3], [4], [8]
    }

    #[test]
    fn powerlaw_exponent_detects_heavy_tail() {
        // In-degree tail of a preferential-attachment graph: alpha ~ 2-3.5.
        let g = crate::gen::barabasi_albert(5000, 4, 2);
        let in_csr = Csr::from_edge_list(&g).transposed();
        let alpha = powerlaw_exponent(&in_csr, 8).expect("enough tail");
        assert!((1.8..4.0).contains(&alpha), "alpha {alpha}");
        // An ER graph's tail is much steeper (no heavy tail).
        let er = crate::gen::erdos_renyi(5000, 40_000, 2);
        let er_csr = Csr::from_edge_list(&er);
        let alpha_er = powerlaw_exponent(&er_csr, 8).expect("enough mass");
        assert!(alpha_er > alpha, "ER {alpha_er} should exceed BA {alpha}");
    }

    #[test]
    fn powerlaw_exponent_none_when_tail_too_small() {
        let csr = Csr::from_edge_list(&cycle(20));
        assert_eq!(powerlaw_exponent(&csr, 5), None);
    }

    #[test]
    fn smaller_partitions_mean_more_inter_edges() {
        let g = crate::datasets::small_test_graph(4);
        let c_small = partition_census(g.out_csr(), 32);
        let c_large = partition_census(g.out_csr(), 512);
        assert!(c_small.inter_total > c_large.inter_total);
        assert_eq!(
            c_small.inter_total + c_small.intra_total,
            c_large.inter_total + c_large.intra_total
        );
    }
}
