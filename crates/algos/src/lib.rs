//! Extensions of the HiPa methodology beyond PageRank — the paper's §6
//! future-work list: SpMV, PageRank-Delta, and BFS.
//!
//! Each algorithm comes with a plain sequential reference and a
//! partition-centric implementation built on the same [`hipa_core::PcpmLayout`]
//! scatter/gather machinery (compressed inter-edges, cache-sized partitions,
//! disjoint per-thread ownership), demonstrating that the hierarchical
//! partitioning generalises exactly as the paper claims.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bfs;
pub mod cc;
pub mod ppr;
pub mod prdelta;
pub mod spmv;
pub mod spmv_sim;
pub mod wspmv;

pub use bfs::{bfs_levels, bfs_partition_centric};
pub use cc::{label_propagation, wcc_by_propagation, LabelPropagation};
pub use ppr::{
    personalized_from_seed, personalized_pagerank, teleport_from_seeds, PersonalizedConfig,
    PersonalizedResult, PprSolver,
};
pub use prdelta::{pagerank_delta, PrDeltaConfig, PrDeltaResult};
pub use spmv::{spmv_partition_centric, spmv_reference, SpmvWorkspace};
pub use spmv_sim::{spmv_sim, SpmvSimRun};
pub use wspmv::{wspmv_partition_centric, wspmv_reference, WeightedPcpm};
