//! PageRank-Delta: incremental PageRank that only propagates *changes*.
//!
//! Second entry in the paper's §6 extension list. Instead of touching every
//! edge every iteration, a vertex propagates only when its accumulated
//! incoming delta exceeds a threshold; ranks converge to the same fixed
//! point as power iteration (with the `Ignore` dangling policy of Eq. 1).
//!
//! The propagation step reuses the partition grid: active vertices are
//! processed partition-by-partition so each round's random writes stay
//! confined to cache-sized destination ranges, exactly as in the PageRank
//! engines.

use hipa_graph::DiGraph;

/// Parameters for PageRank-Delta.
#[derive(Debug, Clone, Copy)]
pub struct PrDeltaConfig {
    pub damping: f32,
    /// A vertex propagates only if its pending delta magnitude exceeds this.
    pub threshold: f32,
    /// Hard round cap (safety net; convergence normally stops earlier).
    pub max_rounds: usize,
    /// Partition size in vertices for the partition-grouped propagation.
    pub verts_per_partition: usize,
}

impl Default for PrDeltaConfig {
    fn default() -> Self {
        PrDeltaConfig { damping: 0.85, threshold: 1e-9, max_rounds: 200, verts_per_partition: 1024 }
    }
}

/// Outcome of a PageRank-Delta run.
#[derive(Debug, Clone)]
pub struct PrDeltaResult {
    pub ranks: Vec<f32>,
    /// Rounds executed before the frontier drained (or the cap hit).
    pub rounds: usize,
    /// Total vertex activations (Σ frontier sizes) — the work saved relative
    /// to `rounds × |V|` is PageRank-Delta's selling point.
    pub activations: u64,
    /// True if the frontier drained before `max_rounds`.
    pub converged: bool,
}

/// Runs PageRank-Delta to convergence.
pub fn pagerank_delta(g: &DiGraph, cfg: &PrDeltaConfig) -> PrDeltaResult {
    let n = g.num_vertices();
    if n == 0 {
        return PrDeltaResult { ranks: Vec::new(), rounds: 0, activations: 0, converged: true };
    }
    let d = cfg.damping;
    let base = (1.0 - d) / n as f32;
    // Series form of Eq. 1's fixed point (Ignore dangling):
    // r = Σ_k (dM)^k · (1-d)/n·1. Round k absorbs term k into `rank` and
    // pushes its d-scaled propagation as the next round's deltas.
    let mut rank = vec![0.0f32; n];
    let mut delta: Vec<f32> = vec![base; n];
    let mut pending = vec![0.0f32; n];
    let vpp = cfg.verts_per_partition.max(1);
    let num_parts = n.div_ceil(vpp);
    let mut frontier: Vec<u32> = (0..n as u32).collect();
    // Round-persistent counting-sort buffers: the frontier is grouped by
    // partition into one flat array instead of a fresh `Vec<Vec<u32>>` of
    // per-partition buckets per round.
    let mut part_starts = vec![0usize; num_parts + 1];
    let mut cursor = vec![0usize; num_parts + 1];
    let mut grouped = vec![0u32; n];
    let mut activations = 0u64;
    let mut rounds = 0usize;

    while !frontier.is_empty() && rounds < cfg.max_rounds {
        rounds += 1;
        activations += frontier.len() as u64;
        // Process the frontier partition by partition: sources of one
        // partition scatter together, keeping source reads cache-resident.
        // Counting sort is stable and the frontier is built in ascending
        // vertex order, so the grouped order is identical to what the old
        // per-partition buckets produced.
        part_starts.fill(0);
        for &v in &frontier {
            part_starts[v as usize / vpp + 1] += 1;
        }
        for p in 1..=num_parts {
            part_starts[p] += part_starts[p - 1];
        }
        cursor.copy_from_slice(&part_starts);
        for &v in &frontier {
            let p = v as usize / vpp;
            grouped[cursor[p]] = v;
            cursor[p] += 1;
        }
        for &v in &grouped[..frontier.len()] {
            let dv = delta[v as usize];
            rank[v as usize] += dv;
            let deg = g.out_degree(v);
            if deg == 0 {
                continue; // Eq. 1 drops dangling mass.
            }
            let push = d * dv / deg as f32;
            for &u in g.out_csr().neighbors(v) {
                pending[u as usize] += push;
            }
        }
        // Build the next frontier; sub-threshold deltas are absorbed into
        // the rank immediately but not propagated further (bounded error).
        frontier.clear();
        for v in 0..n {
            let p = pending[v];
            if p != 0.0 {
                if p.abs() > cfg.threshold {
                    delta[v] = p;
                    frontier.push(v as u32);
                } else {
                    rank[v] += p;
                }
                pending[v] = 0.0;
            }
        }
    }
    PrDeltaResult { ranks: rank, rounds, activations, converged: frontier.is_empty() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_core::{reference_pagerank, PageRankConfig};
    use hipa_graph::gen::{cycle, star};

    fn assert_close_to_power_iteration(g: &DiGraph, rounds_for_oracle: usize) {
        let res = pagerank_delta(g, &PrDeltaConfig::default());
        assert!(res.converged, "did not converge");
        let oracle =
            reference_pagerank(g, &PageRankConfig::default().with_iterations(rounds_for_oracle));
        for (v, (a, b)) in res.ranks.iter().zip(&oracle).enumerate() {
            assert!((*a as f64 - b).abs() < 1e-4, "vertex {v}: delta {a} vs oracle {b}");
        }
    }

    #[test]
    fn converges_on_cycle_to_uniform() {
        let g = DiGraph::from_edge_list(&cycle(16));
        let res = pagerank_delta(&g, &PrDeltaConfig::default());
        for &r in &res.ranks {
            assert!((r - 1.0 / 16.0).abs() < 1e-5, "rank {r}");
        }
    }

    #[test]
    fn matches_power_iteration_on_star() {
        let g = DiGraph::from_edge_list(&star(9));
        assert_close_to_power_iteration(&g, 120);
    }

    #[test]
    fn matches_power_iteration_on_skewed_graph() {
        let g = hipa_graph::datasets::small_test_graph(90);
        assert_close_to_power_iteration(&g, 120);
    }

    #[test]
    fn threshold_saves_activations() {
        let g = hipa_graph::datasets::small_test_graph(91);
        let tight = pagerank_delta(&g, &PrDeltaConfig { threshold: 1e-10, ..Default::default() });
        let loose = pagerank_delta(&g, &PrDeltaConfig { threshold: 1e-5, ..Default::default() });
        assert!(loose.activations < tight.activations);
        assert!(loose.converged && tight.converged);
    }

    /// The pre-refactor round loop (fresh `Vec<Vec<u32>>` buckets per
    /// round), kept as an oracle: the counting-sort rewrite must not change
    /// a single bit of the ranks nor the activation/round counts.
    fn pagerank_delta_bucketed_oracle(g: &DiGraph, cfg: &PrDeltaConfig) -> PrDeltaResult {
        let n = g.num_vertices();
        if n == 0 {
            return PrDeltaResult { ranks: Vec::new(), rounds: 0, activations: 0, converged: true };
        }
        let d = cfg.damping;
        let base = (1.0 - d) / n as f32;
        let mut rank = vec![0.0f32; n];
        let mut delta: Vec<f32> = vec![base; n];
        let mut pending = vec![0.0f32; n];
        let vpp = cfg.verts_per_partition.max(1);
        let num_parts = n.div_ceil(vpp);
        let mut frontier: Vec<u32> = (0..n as u32).collect();
        let mut activations = 0u64;
        let mut rounds = 0usize;
        while !frontier.is_empty() && rounds < cfg.max_rounds {
            rounds += 1;
            activations += frontier.len() as u64;
            let mut by_part: Vec<Vec<u32>> = vec![Vec::new(); num_parts];
            for &v in &frontier {
                by_part[v as usize / vpp].push(v);
            }
            for part in &by_part {
                for &v in part {
                    let dv = delta[v as usize];
                    rank[v as usize] += dv;
                    let deg = g.out_degree(v);
                    if deg == 0 {
                        continue;
                    }
                    let push = d * dv / deg as f32;
                    for &u in g.out_csr().neighbors(v) {
                        pending[u as usize] += push;
                    }
                }
            }
            frontier.clear();
            for v in 0..n {
                let p = pending[v];
                if p != 0.0 {
                    if p.abs() > cfg.threshold {
                        delta[v] = p;
                        frontier.push(v as u32);
                    } else {
                        rank[v] += p;
                    }
                    pending[v] = 0.0;
                }
            }
        }
        PrDeltaResult { ranks: rank, rounds, activations, converged: frontier.is_empty() }
    }

    #[test]
    fn counting_sort_rounds_match_bucketed_oracle_bitwise() {
        for seed in [90u64, 92, 93] {
            let g = hipa_graph::datasets::small_test_graph(seed);
            for cfg in [
                PrDeltaConfig::default(),
                PrDeltaConfig { threshold: 1e-5, verts_per_partition: 64, ..Default::default() },
                PrDeltaConfig { verts_per_partition: 7, max_rounds: 9, ..Default::default() },
            ] {
                let got = pagerank_delta(&g, &cfg);
                let want = pagerank_delta_bucketed_oracle(&g, &cfg);
                assert_eq!(got.ranks, want.ranks, "seed {seed}: ranks drifted");
                assert_eq!(got.activations, want.activations, "seed {seed}");
                assert_eq!(got.rounds, want.rounds, "seed {seed}");
                assert_eq!(got.converged, want.converged, "seed {seed}");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edge_list(&hipa_graph::EdgeList::new(0, vec![]));
        let res = pagerank_delta(&g, &PrDeltaConfig::default());
        assert!(res.converged);
        assert!(res.ranks.is_empty());
    }
}
