//! Simulated SpMV: the §6 claim "our discussions and optimizations
//! proposed for PageRank can also be applied to SpMV" made measurable.
//!
//! Runs repeated `y = Aᵀx` passes on the NUMA machine model under two
//! configurations sharing the same compressed scatter/gather layout:
//!
//! * **HiPa-style** — hierarchical plan, partition-mapped placement, pinned
//!   persistent threads;
//! * **NUMA-oblivious** — interleaved placement, OS-placed per-pass pools,
//!   FCFS-dealt partitions.
//!
//! The `ext_spmv` bench binary reports the speedup and remote-traffic
//! reduction, mirroring the shape of the PageRank results.

use hipa_core::hipa::placement::{blocked_by_index, vertex_ends};
use hipa_core::PcpmLayout;
use hipa_graph::{DiGraph, VERTEX_BYTES};
use hipa_numasim::{PhaseBalance, Placement, SimMachine, SimReport, ThreadPlacement};
use hipa_partition::hipa_plan;

/// Result of a simulated SpMV run.
#[derive(Debug, Clone)]
pub struct SpmvSimRun {
    /// The product vector of the final pass.
    pub y: Vec<f32>,
    pub report: SimReport,
    /// Cycles spent in the repeated passes (excludes layout construction).
    pub compute_cycles: f64,
}

/// Runs `reps` SpMV passes on the machine model.
pub fn spmv_sim(
    g: &DiGraph,
    x: &[f32],
    machine: hipa_numasim::MachineSpec,
    threads: usize,
    partition_bytes: usize,
    numa_aware: bool,
    reps: usize,
) -> SpmvSimRun {
    let n = g.num_vertices();
    assert_eq!(x.len(), n);
    let mut m = SimMachine::new(machine);
    if n == 0 {
        return SpmvSimRun { y: Vec::new(), report: m.report("spmv"), compute_cycles: 0.0 };
    }
    let topo = m.spec().topology;
    let sockets = topo.sockets;
    let threads = threads.clamp(sockets, topo.logical_cpus());
    let vpp = (partition_bytes / VERTEX_BYTES).max(1);
    let tpn = (threads / sockets).max(1);
    let plan = hipa_plan(g.out_degrees(), sockets, tpn, vpp);
    let layout = PcpmLayout::build(g.out_csr(), vpp, false);
    let msgs = layout.total_msgs as usize;

    // Regions.
    let place4 = |ends: &[u64], elem: usize| {
        if numa_aware {
            blocked_by_index(ends, elem)
        } else {
            Placement::Interleaved
        }
    };
    let v_ends = vertex_ends(&plan);
    let x_r = m.alloc("x", 4 * n, place4(&v_ends, 4));
    let y_r = m.alloc("y", 4 * n, place4(&v_ends, 4));
    let intra_ends: Vec<u64> = v_ends.iter().map(|&v| layout.intra_offsets[v as usize]).collect();
    // Offsets arrays have n + 1 entries; extend the last node's coverage.
    let mut v_ends_plus = v_ends.clone();
    if let Some(l) = v_ends_plus.last_mut() {
        *l += 1;
    }
    let intra_off_r = m.alloc("intra_offsets", 4 * (n + 1), place4(&v_ends_plus, 4));
    let intra_dst_r = m.alloc("intra_dst", 4 * layout.intra_dst.len(), place4(&intra_ends, 4));
    let msg_ends: Vec<u64> = v_ends.iter().map(|&v| layout.msg_offsets[v as usize]).collect();
    let png_src_r = m.alloc("png_src", 4 * msgs, place4(&msg_ends, 4));
    let slot_ends: Vec<u64> = plan
        .nodes
        .iter()
        .map(|nd| {
            if nd.part_range.end == 0 {
                0
            } else {
                layout.part_slot_ranges[nd.part_range.end - 1].end
            }
        })
        .collect();
    let vals_r = m.alloc("vals", 4 * msgs, place4(&slot_ends, 4));
    let dest_ends: Vec<u64> = slot_ends.iter().map(|&s| layout.dest_offsets[s as usize]).collect();
    let dest_verts_r = m.alloc("dest_verts", 4 * layout.dest_verts.len(), place4(&dest_ends, 4));
    let preprocess = m.cycles();

    // Thread model.
    let placement = if numa_aware {
        let mut cpus = Vec::with_capacity(threads);
        for node in 0..sockets {
            cpus.extend_from_slice(&topo.logicals_on_socket(node)[..tpn]);
        }
        ThreadPlacement::Pinned(cpus)
    } else {
        ThreadPlacement::OsRandom
    };
    let balance = if numa_aware { PhaseBalance::Static } else { PhaseBalance::Dynamic };
    let thread_parts: Vec<Vec<usize>> = if numa_aware {
        plan.threads().map(|(_, _, t)| t.part_range.clone().collect()).collect()
    } else {
        (0..threads).map(|j| (j..layout.num_partitions).step_by(threads).collect()).collect()
    };
    let persistent = if numa_aware { Some(m.create_pool(threads, &placement)) } else { None };

    let mut y = vec![0.0f32; n];
    let mut vals = vec![0.0f32; msgs];
    for _rep in 0..reps {
        y.iter_mut().for_each(|v| *v = 0.0);
        let pool = persistent.unwrap_or_else(|| m.create_pool(threads, &placement));
        {
            let y = &mut y;
            let vals = &mut vals;
            let layout = &layout;
            let thread_parts = &thread_parts;
            m.phase_balanced(pool, balance, |j, ctx| {
                for &p in &thread_parts[j] {
                    let vr = layout.partition_vertices(p);
                    let (lo, hi) = (vr.start as usize, vr.end as usize);
                    if lo == hi {
                        continue;
                    }
                    let ilo = layout.intra_offsets[lo] as usize;
                    let ihi = layout.intra_offsets[hi] as usize;
                    if ihi > ilo {
                        ctx.stream_read(intra_off_r, 4 * lo, 4 * (hi - lo + 1));
                        ctx.stream_read(intra_dst_r, 4 * ilo, 4 * (ihi - ilo));
                        for v in lo..hi {
                            let intra = layout.intra_of(v as u32);
                            if intra.is_empty() {
                                continue;
                            }
                            ctx.read(x_r, 4 * v, 4);
                            for &dst in intra {
                                y[dst as usize] += x[v];
                                ctx.write(y_r, 4 * dst as usize, 4);
                            }
                            ctx.compute(intra.len() as u64);
                        }
                    }
                    for pair in layout.png_of(p) {
                        let srcs = layout.png_sources(pair);
                        ctx.stream_read(png_src_r, 4 * pair.src_start as usize, 4 * srcs.len());
                        ctx.stream_write(vals_r, 4 * pair.slot_start as usize, 4 * srcs.len());
                        for (k, &src) in srcs.iter().enumerate() {
                            ctx.read(x_r, 4 * src as usize, 4);
                            vals[pair.slot_start as usize + k] = x[src as usize];
                        }
                        ctx.compute(srcs.len() as u64);
                    }
                }
            });
        }
        let pool = persistent.unwrap_or_else(|| m.create_pool(threads, &placement));
        {
            let y = &mut y;
            let vals = &vals;
            let layout = &layout;
            let thread_parts = &thread_parts;
            m.phase_balanced(pool, balance, |j, ctx| {
                for &q in &thread_parts[j] {
                    let sr = layout.part_slot_ranges[q].clone();
                    let (slo, shi) = (sr.start as usize, sr.end as usize);
                    if shi == slo {
                        continue;
                    }
                    ctx.stream_read(vals_r, 4 * slo, 4 * (shi - slo));
                    let dlo = layout.dest_offsets[slo] as usize;
                    let dhi = layout.dest_offsets[shi] as usize;
                    if dhi > dlo {
                        ctx.stream_read(dest_verts_r, 4 * dlo, 4 * (dhi - dlo));
                    }
                    for k in slo..shi {
                        let val = vals[k];
                        let dests = layout.dests_of(k as u64);
                        for &dst in dests {
                            y[dst as usize] += val;
                            ctx.write(y_r, 4 * dst as usize, 4);
                        }
                        ctx.compute(dests.len() as u64);
                    }
                }
            });
        }
    }
    let compute_cycles = m.cycles() - preprocess;
    SpmvSimRun {
        y,
        report: m.report(if numa_aware { "spmv-hipa" } else { "spmv-oblivious" }),
        compute_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv_reference;
    use hipa_numasim::MachineSpec;

    #[test]
    fn sim_spmv_is_correct_in_both_modes() {
        let g = hipa_graph::datasets::small_test_graph(140);
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| ((i % 5) + 1) as f32).collect();
        let want = spmv_reference(&g, &x);
        for aware in [true, false] {
            let run = spmv_sim(&g, &x, MachineSpec::tiny_test(), 4, 512, aware, 2);
            assert_eq!(run.y.len(), want.len());
            for (v, (a, b)) in run.y.iter().zip(&want).enumerate() {
                assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0), "aware={aware} v{v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn hipa_mode_is_faster_and_more_local() {
        let g = hipa_graph::datasets::small_test_graph(141);
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| 1.0 / (1 + i) as f32).collect();
        let aware = spmv_sim(&g, &x, MachineSpec::tiny_test(), 8, 512, true, 4);
        let obliv = spmv_sim(&g, &x, MachineSpec::tiny_test(), 8, 512, false, 4);
        assert!(aware.report.mem.remote_fraction() < obliv.report.mem.remote_fraction());
        assert!(aware.compute_cycles < obliv.compute_cycles);
    }
}
