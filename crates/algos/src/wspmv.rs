//! Weighted SpMV under the partition-centric layout.
//!
//! The unweighted layout compresses all inter-edges from one source into a
//! single message because they carry the same value. With weights, the
//! *value* is still shared (`x[src]`); the per-edge weight is applied at the
//! destination, where the weight array is stored permuted into the same
//! order as the destination lists — so gather still streams two parallel
//! arrays sequentially. This is how a weighted PCPM keeps the compression
//! benefit.

use hipa_core::PcpmLayout;
use hipa_graph::WeightedCsr;

/// Weighted SpMV layout: the PCPM structure plus weights permuted into
/// intra-edge order and destination-list (slot) order.
#[derive(Debug, Clone)]
pub struct WeightedPcpm {
    pub layout: PcpmLayout,
    /// Weight of `layout.intra_dst[i]`.
    pub intra_weights: Vec<f32>,
    /// Weight of `layout.dest_verts[i]`.
    pub dest_weights: Vec<f32>,
}

impl WeightedPcpm {
    /// Builds the weighted layout from a weighted CSR.
    pub fn build(w: &WeightedCsr, verts_per_partition: usize) -> Self {
        let layout = PcpmLayout::build(w.csr(), verts_per_partition, false);
        // Replay the layout's construction order to permute weights: for
        // each source vertex, its sorted adjacency splits into intra entries
        // (in order) and message runs; the k-th destination of each message
        // lands at dest_offsets[slot] + k.
        let mut intra_weights = vec![0.0f32; layout.intra_dst.len()];
        let mut dest_weights = vec![0.0f32; layout.dest_verts.len()];
        let mut intra_cur = 0usize;
        let mut msg_cur = 0usize;
        let mut fill: Vec<u64> = layout.dest_offsets[..layout.total_msgs as usize].to_vec();
        let vpp = layout.verts_per_partition;
        for v in 0..w.num_vertices() as u32 {
            let pv = v as usize / vpp;
            let mut run_part = usize::MAX;
            let mut run_slot = 0u64;
            for (t, weight) in w.neighbors(v) {
                let pt = t as usize / vpp;
                if pt == pv {
                    debug_assert_eq!(layout.intra_dst[intra_cur], t);
                    intra_weights[intra_cur] = weight;
                    intra_cur += 1;
                    continue;
                }
                if pt != run_part {
                    run_part = pt;
                    run_slot = layout.msg_slot[msg_cur];
                    msg_cur += 1;
                }
                let f = &mut fill[run_slot as usize];
                debug_assert_eq!(layout.dest_verts[*f as usize], t);
                dest_weights[*f as usize] = weight;
                *f += 1;
            }
        }
        WeightedPcpm { layout, intra_weights, dest_weights }
    }
}

/// Sequential weighted SpMV reference: `y[v] = Σ_{(u,v,w)} w · x[u]`.
pub fn wspmv_reference(w: &WeightedCsr, x: &[f32]) -> Vec<f32> {
    let n = w.num_vertices();
    assert_eq!(x.len(), n);
    let mut y = vec![0.0f32; n];
    for u in 0..n as u32 {
        let xu = x[u as usize];
        for (v, weight) in w.neighbors(u) {
            y[v as usize] += weight * xu;
        }
    }
    y
}

/// Partition-centric weighted SpMV (single-threaded scatter/gather over the
/// weighted layout — the cache-locality structure is the point; the
/// multithreaded variant follows `spmv_partition_centric` exactly).
pub fn wspmv_partition_centric(w: &WeightedCsr, x: &[f32], verts_per_partition: usize) -> Vec<f32> {
    let n = w.num_vertices();
    assert_eq!(x.len(), n);
    if n == 0 {
        return Vec::new();
    }
    let wl = WeightedPcpm::build(w, verts_per_partition.max(1));
    let l = &wl.layout;
    let mut y = vec![0.0f32; n];
    let mut vals = vec![0.0f32; l.total_msgs as usize];
    // Scatter: intra edges apply weight immediately; messages carry x[src].
    for p in 0..l.num_partitions {
        let vr = l.partition_vertices(p);
        for v in vr.start..vr.end {
            let lo = l.intra_offsets[v as usize] as usize;
            let hi = l.intra_offsets[v as usize + 1] as usize;
            for k in lo..hi {
                y[l.intra_dst[k] as usize] += wl.intra_weights[k] * x[v as usize];
            }
        }
        for pair in l.png_of(p) {
            for (k, &src) in l.png_sources(pair).iter().enumerate() {
                vals[pair.slot_start as usize + k] = x[src as usize];
            }
        }
    }
    // Gather: weights applied from the permuted per-destination array.
    for q in 0..l.num_partitions {
        for slot in l.part_slot_ranges[q].clone() {
            let val = vals[slot as usize];
            let lo = l.dest_offsets[slot as usize] as usize;
            let hi = l.dest_offsets[slot as usize + 1] as usize;
            for k in lo..hi {
                y[l.dest_verts[k] as usize] += wl.dest_weights[k] * val;
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_graph::{EdgeList, WeightedEdge};

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-4 * y.abs().max(1.0))
    }

    #[test]
    fn tiny_weighted_case() {
        let w = WeightedCsr::from_weighted_edges(
            3,
            &[
                WeightedEdge { src: 0, dst: 1, weight: 2.0 },
                WeightedEdge { src: 0, dst: 2, weight: 3.0 },
                WeightedEdge { src: 1, dst: 2, weight: 5.0 },
            ],
        );
        let x = vec![1.0, 10.0, 100.0];
        let y = wspmv_reference(&w, &x);
        assert_eq!(y, vec![0.0, 2.0, 53.0]);
        assert_eq!(wspmv_partition_centric(&w, &x, 1), y);
    }

    #[test]
    fn matches_reference_on_random_weighted_graph() {
        let g = hipa_graph::datasets::small_test_graph(120);
        let el = EdgeList::new(
            g.num_vertices(),
            g.out_csr().iter_edges().map(|(s, d)| hipa_graph::Edge::new(s, d)).collect(),
        );
        let w = WeightedCsr::random_weights(&el, 0.1, 2.0, 4);
        let x: Vec<f32> = (0..w.num_vertices()).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let want = wspmv_reference(&w, &x);
        for vpp in [16usize, 100, 4096] {
            let got = wspmv_partition_centric(&w, &x, vpp);
            assert!(close(&got, &want), "vpp {vpp}");
        }
    }

    #[test]
    fn unit_weights_reduce_to_unweighted_spmv() {
        let g = hipa_graph::datasets::small_test_graph(121);
        let w = WeightedCsr::unit_weights(g.out_csr().clone());
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| 1.0 / (1 + i % 9) as f32).collect();
        let weighted = wspmv_partition_centric(&w, &x, 64);
        let unweighted = crate::spmv::spmv_partition_centric(&g, &x, 1, 64);
        assert_eq!(weighted, unweighted);
    }

    #[test]
    fn weight_permutation_is_exact() {
        // Every (edge, weight) pair must survive the permutation: recover the
        // multiset of (dst, weight) per source partition.
        let g = hipa_graph::datasets::small_test_graph(122);
        let el = EdgeList::new(
            g.num_vertices(),
            g.out_csr().iter_edges().map(|(s, d)| hipa_graph::Edge::new(s, d)).collect(),
        );
        let w = WeightedCsr::random_weights(&el, 1.0, 9.0, 8);
        let wl = WeightedPcpm::build(&w, 64);
        let total_carried = wl.intra_weights.len() + wl.dest_weights.len();
        assert_eq!(total_carried, w.num_edges());
        let sum_src: f64 = w.weights_raw().iter().map(|&x| x as f64).sum();
        let sum_dst: f64 =
            wl.intra_weights.iter().chain(wl.dest_weights.iter()).map(|&x| x as f64).sum();
        assert!((sum_src - sum_dst).abs() < 1e-3);
    }
}
