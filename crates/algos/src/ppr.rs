//! Personalized PageRank: rank mass teleports to a *preference
//! distribution* instead of uniformly — the standard tool for
//! seed-relative importance (e.g. "importance as seen from this user").
//!
//! Implemented as power iteration over the same partition-centric SpMV the
//! other extensions use: `r ← (1-d)·p + d·Aᵀ(r ⊘ outdeg)`, with dangling
//! mass optionally redirected to the preference vector.
//!
//! [`PprSolver`] is the resident form: it owns one [`SpmvWorkspace`]
//! (layout/plan/pool built once) plus the precomputed inverse-degree and
//! dangling-vertex tables, and solves many preference vectors against them —
//! one at a time ([`solve`](PprSolver::solve)) or as a batch
//! ([`solve_batch`](PprSolver::solve_batch)) where every power iteration
//! advances the whole batch through **one** multi-vector graph sweep.
//! Vectors freeze individually at their own convergence iteration, so each
//! batch member's result is bitwise identical to a solo run.

use crate::spmv::SpmvWorkspace;
use hipa_core::PcpmPrepared;
use hipa_graph::DiGraph;
use std::sync::Arc;

/// Configuration for personalized PageRank.
#[derive(Debug, Clone)]
pub struct PersonalizedConfig {
    pub damping: f32,
    pub iterations: usize,
    /// Stop early when the L1 delta drops below this.
    pub tolerance: Option<f32>,
    /// Send dangling mass to the preference vector (keeps `Σr = 1`).
    pub redistribute_dangling: bool,
    /// Partition size (vertices) for the SpMV layout.
    pub verts_per_partition: usize,
    /// Worker threads for the SpMV.
    pub threads: usize,
}

impl Default for PersonalizedConfig {
    fn default() -> Self {
        PersonalizedConfig {
            damping: 0.85,
            iterations: 100,
            tolerance: Some(1e-7),
            redistribute_dangling: true,
            verts_per_partition: 64 * 1024 / 4,
            threads: 4,
        }
    }
}

/// Result of a personalized PageRank run.
#[derive(Debug, Clone)]
pub struct PersonalizedResult {
    pub ranks: Vec<f32>,
    pub iterations_run: usize,
    pub converged: bool,
}

/// Panics unless `teleport` is a valid unnormalised preference vector for an
/// `n`-vertex graph: right length, non-negative, positive total mass.
fn validate_teleport(teleport: &[f32], n: usize) {
    assert_eq!(teleport.len(), n, "teleport length mismatch");
    let mass: f64 = teleport
        .iter()
        .map(|&x| {
            assert!(x >= 0.0, "teleport entries must be non-negative");
            x as f64
        })
        .sum();
    assert!(mass > 0.0, "teleport distribution must have positive mass");
}

/// Uniform preference vector over a seed set. Non-panicking validation for
/// request paths taking user-supplied seeds (the serve layer): `Err` on an
/// empty set or any out-of-range seed.
pub fn teleport_from_seeds(num_vertices: usize, seeds: &[u32]) -> Result<Vec<f32>, String> {
    if seeds.is_empty() {
        return Err("empty personalization seed set".to_string());
    }
    let mut p = vec![0.0f32; num_vertices];
    for &s in seeds {
        if (s as usize) >= num_vertices {
            return Err(format!("seed vertex {s} out of range: graph has {num_vertices} vertices"));
        }
        p[s as usize] += 1.0;
    }
    Ok(p)
}

/// A resident personalized-PageRank engine over one graph snapshot: the
/// expensive preprocessing (PCPM layout, `hipa_plan`, worker pool, inverse
/// degrees, dangling list) happens once in [`new`](Self::new) and is reused
/// by every subsequent solve — the one-shot path used to redo all of it on
/// **every power iteration**.
pub struct PprSolver {
    ws: SpmvWorkspace,
    cfg: PersonalizedConfig,
}

impl PprSolver {
    /// Preprocesses `g` per `cfg` (threads, partition size). The expensive
    /// call; solves after it cost only the iterations themselves.
    pub fn new(g: &DiGraph, cfg: &PersonalizedConfig) -> Self {
        PprSolver {
            ws: SpmvWorkspace::new(g, cfg.threads, cfg.verts_per_partition),
            cfg: cfg.clone(),
        }
    }

    /// Wraps an existing shared preprocessed state (threads / partition size
    /// come from the state, the iteration schedule from `cfg`).
    pub fn from_prepared(prepared: Arc<PcpmPrepared>, cfg: &PersonalizedConfig) -> Self {
        let mut cfg = cfg.clone();
        cfg.threads = prepared.threads;
        cfg.verts_per_partition = prepared.verts_per_partition;
        PprSolver { ws: SpmvWorkspace::from_prepared(prepared), cfg }
    }

    pub fn prepared(&self) -> &Arc<PcpmPrepared> {
        self.ws.prepared()
    }

    /// Solves one preference vector. Equivalent to a batch of one.
    pub fn solve(&mut self, teleport: &[f32]) -> PersonalizedResult {
        self.solve_slices(&[teleport]).pop().expect("batch of one")
    }

    /// Personalization concentrated on one seed vertex (panics on an
    /// out-of-range seed, like [`personalized_from_seed`]).
    pub fn solve_seed(&mut self, seed: u32) -> PersonalizedResult {
        let n = self.ws.num_vertices();
        assert!(
            (seed as usize) < n,
            "personalization seed {seed} out of range: graph has {n} vertices"
        );
        let mut p = vec![0.0f32; n];
        p[seed as usize] = 1.0;
        self.solve(&p)
    }

    /// Solves a batch of preference vectors through shared multi-vector
    /// sweeps: each power iteration makes **one** pass over the graph for
    /// the whole batch, amortizing the scatter/gather traffic across all
    /// still-active vectors. A vector that converges freezes (its slot is
    /// skipped from then on), so `results[b]` is bitwise identical to
    /// `solve(&teleports[b])`.
    pub fn solve_batch(&mut self, teleports: &[Vec<f32>]) -> Vec<PersonalizedResult> {
        let slices: Vec<&[f32]> = teleports.iter().map(|t| t.as_slice()).collect();
        self.solve_slices(&slices)
    }

    fn solve_slices(&mut self, teleports: &[&[f32]]) -> Vec<PersonalizedResult> {
        let prep = Arc::clone(self.ws.prepared());
        let n = prep.num_vertices;
        let k = teleports.len();
        if k == 0 {
            return Vec::new();
        }
        // Normalise every preference vector (f64 mass, as the one-shot path
        // always did).
        let mut p = vec![0.0f32; k * n];
        for (b, t) in teleports.iter().enumerate() {
            validate_teleport(t, n);
            let mass: f64 = t.iter().map(|&x| x as f64).sum();
            for v in 0..n {
                p[b * n + v] = (t[v] as f64 / mass) as f32;
            }
        }

        let d = self.cfg.damping;
        let mut rank = p.clone();
        let mut x = vec![0.0f32; k * n];
        let mut y = vec![0.0f32; k * n];
        let mut active = vec![true; k];
        let mut iters = vec![0usize; k];
        let mut conv = vec![false; k];
        for _ in 0..self.cfg.iterations {
            if !active.iter().any(|&a| a) {
                break;
            }
            for b in 0..k {
                if active[b] {
                    let base = b * n;
                    for v in 0..n {
                        x[base + v] = rank[base + v] * prep.inv_deg[v];
                    }
                }
            }
            self.ws.run_batch_into(&x, &mut y, &active);
            for b in 0..k {
                if !active[b] {
                    continue;
                }
                let base = b * n;
                // Dangling mass from the precomputed list — ascending, so
                // the f64 summation order matches the full-scan it replaces.
                let dangling: f64 = if self.cfg.redistribute_dangling {
                    prep.dangling.iter().map(|&v| rank[base + v as usize] as f64).sum()
                } else {
                    0.0
                };
                let mut delta = 0.0f64;
                for v in 0..n {
                    let nv = (1.0 - d) * p[base + v]
                        + d * (y[base + v] + (dangling as f32) * p[base + v]);
                    delta += (nv - rank[base + v]).abs() as f64;
                    rank[base + v] = nv;
                }
                iters[b] += 1;
                if let Some(tol) = self.cfg.tolerance {
                    if delta < tol as f64 {
                        conv[b] = true;
                        active[b] = false;
                    }
                }
            }
        }
        (0..k)
            .map(|b| PersonalizedResult {
                ranks: rank[b * n..(b + 1) * n].to_vec(),
                iterations_run: iters[b],
                converged: conv[b],
            })
            .collect()
    }
}

/// Runs personalized PageRank with an explicit preference distribution
/// (`teleport` must be non-negative; it is normalised internally).
///
/// One-shot wrapper over [`PprSolver`]: preprocesses once for the whole run
/// (not once per iteration, as this path historically did), solves, drops.
///
/// # Panics
/// Panics if `teleport` has the wrong length or sums to zero.
pub fn personalized_pagerank(
    g: &DiGraph,
    teleport: &[f32],
    cfg: &PersonalizedConfig,
) -> PersonalizedResult {
    validate_teleport(teleport, g.num_vertices());
    PprSolver::new(g, cfg).solve(teleport)
}

/// Convenience: personalization concentrated on a single seed vertex.
///
/// # Panics
/// Panics if `seed >= g.num_vertices()` — the seed is user input on the
/// serving path, which pre-validates via [`teleport_from_seeds`] instead.
pub fn personalized_from_seed(
    g: &DiGraph,
    seed: u32,
    cfg: &PersonalizedConfig,
) -> PersonalizedResult {
    let n = g.num_vertices();
    assert!(
        (seed as usize) < n,
        "personalization seed {seed} out of range: graph has {n} vertices"
    );
    let mut p = vec![0.0f32; n];
    p[seed as usize] = 1.0;
    personalized_pagerank(g, &p, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_core::{reference_pagerank, DanglingPolicy, PageRankConfig};
    use hipa_graph::gen::{cycle, star};

    #[test]
    fn uniform_teleport_reduces_to_global_pagerank() {
        let g = hipa_graph::datasets::small_test_graph(130);
        let n = g.num_vertices();
        let uniform = vec![1.0f32; n];
        let res = personalized_pagerank(&g, &uniform, &PersonalizedConfig::default());
        assert!(res.converged);
        let oracle = reference_pagerank(
            &g,
            &PageRankConfig::default()
                .with_iterations(150)
                .with_dangling(DanglingPolicy::Redistribute),
        );
        for (v, (a, b)) in res.ranks.iter().zip(&oracle).enumerate() {
            assert!((*a as f64 - b).abs() < 1e-4, "v{v}: {a} vs {b}");
        }
    }

    #[test]
    fn mass_is_preserved() {
        let g = hipa_graph::datasets::small_test_graph(131);
        let res = personalized_from_seed(&g, 5, &PersonalizedConfig::default());
        let sum: f64 = res.ranks.iter().map(|&r| r as f64).sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }

    #[test]
    fn seed_vertex_dominates_nearby() {
        // On a cycle, rank decays geometrically with distance from the seed.
        // Convergence rate is d^k, so give it headroom beyond 100 rounds.
        let g = DiGraph::from_edge_list(&cycle(32));
        let cfg = PersonalizedConfig { iterations: 300, ..Default::default() };
        let res = personalized_from_seed(&g, 0, &cfg);
        assert!(res.converged);
        assert!(res.ranks[0] > res.ranks[1]);
        assert!(res.ranks[1] > res.ranks[2]);
        assert!(res.ranks[2] > res.ranks[16]);
    }

    #[test]
    fn hub_seed_on_star() {
        let g = DiGraph::from_edge_list(&star(9));
        let res = personalized_from_seed(&g, 0, &PersonalizedConfig::default());
        // Seeding the hub: hub keeps the most mass; spokes all equal.
        assert!(res.ranks[0] > res.ranks[1]);
        for s in 2..9 {
            assert!((res.ranks[s] - res.ranks[1]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn rejects_zero_teleport() {
        let g = DiGraph::from_edge_list(&cycle(4));
        personalized_pagerank(&g, &[0.0; 4], &PersonalizedConfig::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_seed() {
        let g = DiGraph::from_edge_list(&cycle(4));
        personalized_from_seed(&g, 4, &PersonalizedConfig::default());
    }

    #[test]
    fn teleport_from_seeds_validates() {
        assert!(teleport_from_seeds(4, &[]).is_err());
        assert!(teleport_from_seeds(4, &[0, 4]).unwrap_err().contains("out of range"));
        let p = teleport_from_seeds(4, &[1, 3, 3]).unwrap();
        assert_eq!(p, vec![0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn solver_reuse_is_bitwise_stable() {
        let g = hipa_graph::datasets::small_test_graph(132);
        let mut solver = PprSolver::new(&g, &PersonalizedConfig::default());
        let a = solver.solve_seed(3);
        let b = solver.solve_seed(3);
        assert_eq!(a.ranks, b.ranks, "repeat solves on one solver must be bitwise equal");
        let one_shot = personalized_from_seed(&g, 3, &PersonalizedConfig::default());
        assert_eq!(a.ranks, one_shot.ranks, "solver equals the one-shot path");
        assert_eq!(a.iterations_run, one_shot.iterations_run);
    }

    #[test]
    fn batch_members_freeze_independently() {
        // A cycle seed converges slowly, the uniform vector fast; batching
        // them must not perturb either (bitwise vs solo).
        let g = hipa_graph::datasets::small_test_graph(133);
        let n = g.num_vertices();
        let cfg = PersonalizedConfig { iterations: 80, ..Default::default() };
        let mut solver = PprSolver::new(&g, &cfg);
        let teleports: Vec<Vec<f32>> = vec![
            teleport_from_seeds(n, &[0]).unwrap(),
            vec![1.0; n],
            teleport_from_seeds(n, &[1, 2, 3]).unwrap(),
        ];
        let batch = solver.solve_batch(&teleports);
        for (b, t) in teleports.iter().enumerate() {
            let solo = solver.solve(t);
            assert_eq!(batch[b].ranks, solo.ranks, "batch slot {b}");
            assert_eq!(batch[b].iterations_run, solo.iterations_run, "batch slot {b}");
            assert_eq!(batch[b].converged, solo.converged, "batch slot {b}");
        }
    }
}
