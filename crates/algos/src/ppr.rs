//! Personalized PageRank: rank mass teleports to a *preference
//! distribution* instead of uniformly — the standard tool for
//! seed-relative importance (e.g. "importance as seen from this user").
//!
//! Implemented as power iteration over the same partition-centric SpMV the
//! other extensions use: `r ← (1-d)·p + d·Aᵀ(r ⊘ outdeg)`, with dangling
//! mass optionally redirected to the preference vector.

use crate::spmv::spmv_partition_centric;
use hipa_graph::DiGraph;

/// Configuration for personalized PageRank.
#[derive(Debug, Clone)]
pub struct PersonalizedConfig {
    pub damping: f32,
    pub iterations: usize,
    /// Stop early when the L1 delta drops below this.
    pub tolerance: Option<f32>,
    /// Send dangling mass to the preference vector (keeps `Σr = 1`).
    pub redistribute_dangling: bool,
    /// Partition size (vertices) for the SpMV layout.
    pub verts_per_partition: usize,
    /// Worker threads for the SpMV.
    pub threads: usize,
}

impl Default for PersonalizedConfig {
    fn default() -> Self {
        PersonalizedConfig {
            damping: 0.85,
            iterations: 100,
            tolerance: Some(1e-7),
            redistribute_dangling: true,
            verts_per_partition: 64 * 1024 / 4,
            threads: 4,
        }
    }
}

/// Result of a personalized PageRank run.
#[derive(Debug, Clone)]
pub struct PersonalizedResult {
    pub ranks: Vec<f32>,
    pub iterations_run: usize,
    pub converged: bool,
}

/// Runs personalized PageRank with an explicit preference distribution
/// (`teleport` must be non-negative; it is normalised internally).
///
/// # Panics
/// Panics if `teleport` has the wrong length or sums to zero.
pub fn personalized_pagerank(
    g: &DiGraph,
    teleport: &[f32],
    cfg: &PersonalizedConfig,
) -> PersonalizedResult {
    let n = g.num_vertices();
    assert_eq!(teleport.len(), n, "teleport length mismatch");
    let mass: f64 = teleport
        .iter()
        .map(|&x| {
            assert!(x >= 0.0, "teleport entries must be non-negative");
            x as f64
        })
        .sum();
    assert!(mass > 0.0, "teleport distribution must have positive mass");
    if n == 0 {
        return PersonalizedResult { ranks: Vec::new(), iterations_run: 0, converged: true };
    }
    let p: Vec<f32> = teleport.iter().map(|&x| (x as f64 / mass) as f32).collect();
    let d = cfg.damping;
    let inv_deg: Vec<f32> = (0..n)
        .map(|v| {
            let deg = g.out_degree(v as u32);
            if deg == 0 {
                0.0
            } else {
                1.0 / deg as f32
            }
        })
        .collect();

    let mut rank = p.clone();
    let mut iterations_run = 0usize;
    let mut converged = false;
    for _ in 0..cfg.iterations {
        let x: Vec<f32> = (0..n).map(|v| rank[v] * inv_deg[v]).collect();
        let y = spmv_partition_centric(g, &x, cfg.threads, cfg.verts_per_partition);
        let dangling: f64 = if cfg.redistribute_dangling {
            (0..n).filter(|&v| g.out_degree(v as u32) == 0).map(|v| rank[v] as f64).sum()
        } else {
            0.0
        };
        let mut delta = 0.0f64;
        let mut next = vec![0.0f32; n];
        for v in 0..n {
            let nv = (1.0 - d) * p[v] + d * (y[v] + (dangling as f32) * p[v]);
            delta += (nv - rank[v]).abs() as f64;
            next[v] = nv;
        }
        rank = next;
        iterations_run += 1;
        if let Some(tol) = cfg.tolerance {
            if delta < tol as f64 {
                converged = true;
                break;
            }
        }
    }
    PersonalizedResult { ranks: rank, iterations_run, converged }
}

/// Convenience: personalization concentrated on a single seed vertex.
pub fn personalized_from_seed(
    g: &DiGraph,
    seed: u32,
    cfg: &PersonalizedConfig,
) -> PersonalizedResult {
    let mut p = vec![0.0f32; g.num_vertices()];
    p[seed as usize] = 1.0;
    personalized_pagerank(g, &p, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_core::{reference_pagerank, DanglingPolicy, PageRankConfig};
    use hipa_graph::gen::{cycle, star};

    #[test]
    fn uniform_teleport_reduces_to_global_pagerank() {
        let g = hipa_graph::datasets::small_test_graph(130);
        let n = g.num_vertices();
        let uniform = vec![1.0f32; n];
        let res = personalized_pagerank(&g, &uniform, &PersonalizedConfig::default());
        assert!(res.converged);
        let oracle = reference_pagerank(
            &g,
            &PageRankConfig::default()
                .with_iterations(150)
                .with_dangling(DanglingPolicy::Redistribute),
        );
        for (v, (a, b)) in res.ranks.iter().zip(&oracle).enumerate() {
            assert!((*a as f64 - b).abs() < 1e-4, "v{v}: {a} vs {b}");
        }
    }

    #[test]
    fn mass_is_preserved() {
        let g = hipa_graph::datasets::small_test_graph(131);
        let res = personalized_from_seed(&g, 5, &PersonalizedConfig::default());
        let sum: f64 = res.ranks.iter().map(|&r| r as f64).sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }

    #[test]
    fn seed_vertex_dominates_nearby() {
        // On a cycle, rank decays geometrically with distance from the seed.
        // Convergence rate is d^k, so give it headroom beyond 100 rounds.
        let g = DiGraph::from_edge_list(&cycle(32));
        let cfg = PersonalizedConfig { iterations: 300, ..Default::default() };
        let res = personalized_from_seed(&g, 0, &cfg);
        assert!(res.converged);
        assert!(res.ranks[0] > res.ranks[1]);
        assert!(res.ranks[1] > res.ranks[2]);
        assert!(res.ranks[2] > res.ranks[16]);
    }

    #[test]
    fn hub_seed_on_star() {
        let g = DiGraph::from_edge_list(&star(9));
        let res = personalized_from_seed(&g, 0, &PersonalizedConfig::default());
        // Seeding the hub: hub keeps the most mass; spokes all equal.
        assert!(res.ranks[0] > res.ranks[1]);
        for s in 2..9 {
            assert!((res.ranks[s] - res.ranks[1]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn rejects_zero_teleport() {
        let g = DiGraph::from_edge_list(&cycle(4));
        personalized_pagerank(&g, &[0.0; 4], &PersonalizedConfig::default());
    }
}
