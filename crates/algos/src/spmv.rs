//! Sparse matrix–vector multiplication over the adjacency structure.
//!
//! The paper frames PageRank as iterated SpMV (§1) and names SpMV first in
//! its extension list. Here `y = Aᵀx` with `A` the (unweighted) adjacency
//! matrix: `y[v] = Σ_{u→v} x[u]` — exactly PageRank's propagation step
//! without damping — computed either directly from the in-CSR (reference)
//! or with the partition-centric compressed scatter/gather layout plus
//! per-thread partition ownership (HiPa methodology).
//!
//! [`SpmvWorkspace`] is the resident form: it builds the layout, the
//! `hipa_plan` ownership map and the worker pool **once** and runs many
//! sweeps (`run`), including multi-vector batches (`run_batch_into`) that
//! amortize one graph pass across a batch of input vectors. The historical
//! one-shot entry point [`spmv_partition_centric`] is a thin wrapper that
//! builds a workspace, runs once, and drops it — bitwise-identical output.
//!
//! disjointness: HiPa plan (`hipa_plan`) — each scatter job writes the PNG
//! message slots sourced from its own partitions plus the `y` entries of its
//! own partitions (intra-edges stay inside the source partition), and each
//! gather job writes the `y` entries of its own partitions; the two phases
//! are separated by a pool-scope join and each phase wraps its outputs in a
//! fresh `SharedSlice`, so every element has a single writer job (= thread)
//! per slice lifetime.

use hipa_core::disjoint::SharedSlice;
use hipa_core::PcpmPrepared;
use hipa_graph::DiGraph;
use std::ops::Range;
use std::sync::Arc;

/// Sequential reference: `y[v] = Σ_{u -> v} x[u]` via the in-CSR.
pub fn spmv_reference(g: &DiGraph, x: &[f32]) -> Vec<f32> {
    let n = g.num_vertices();
    assert_eq!(x.len(), n, "vector length mismatch");
    let mut y = vec![0.0f32; n];
    for v in 0..n as u32 {
        let mut acc = 0.0f32;
        for &u in g.in_csr().neighbors(v) {
            acc += x[u as usize];
        }
        y[v as usize] = acc;
    }
    y
}

/// A resident partition-centric SpMV engine: one preprocessed state
/// ([`PcpmPrepared`]: layout + plan + degree tables), one persistent worker
/// pool, and a reusable message-slot scratch buffer. Build once, run many
/// times — each [`run`](Self::run) costs only the sweep itself, none of the
/// preprocessing the one-shot path used to repeat per call.
///
/// Accumulation order per element matches the PageRank engines (intra
/// contributions in source order during scatter, then inbox messages in
/// ascending slot order during gather), per input vector independently, so
/// every entry is bitwise-deterministic for any thread count, any batch
/// width, and identical between the one-shot and resident paths.
pub struct SpmvWorkspace {
    prepared: Arc<PcpmPrepared>,
    /// Resident workers (`None` when a single worker runs the sweep inline).
    pool: Option<rayon::ThreadPool>,
    /// Message-slot values, `batch_width × total_msgs`, reused across runs.
    vals: Vec<f32>,
}

impl SpmvWorkspace {
    /// Preprocesses `g` and spins up the resident pool. The expensive call —
    /// everything after it is sweep-only.
    pub fn new(g: &DiGraph, threads: usize, verts_per_partition: usize) -> Self {
        Self::from_prepared(Arc::new(PcpmPrepared::build(g, threads, verts_per_partition)))
    }

    /// Wraps an existing shared preprocessed state (the serve layer shares
    /// one `Arc<PcpmPrepared>` between the solver and its bookkeeping).
    pub fn from_prepared(prepared: Arc<PcpmPrepared>) -> Self {
        let pool = (prepared.threads > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(prepared.threads)
                .build()
                .expect("pool build cannot fail")
        });
        SpmvWorkspace { prepared, pool, vals: Vec::new() }
    }

    /// The shared preprocessed state this workspace sweeps against.
    pub fn prepared(&self) -> &Arc<PcpmPrepared> {
        &self.prepared
    }

    pub fn num_vertices(&self) -> usize {
        self.prepared.num_vertices
    }

    /// One SpMV: `y = Aᵀx`.
    pub fn run(&mut self, x: &[f32]) -> Vec<f32> {
        let n = self.prepared.num_vertices;
        assert_eq!(x.len(), n, "vector length mismatch");
        let mut y = vec![0.0f32; n];
        self.run_batch_into(x, &mut y, &[true]);
        y
    }

    /// Batched SpMV over `k` stacked vectors: `xs`/`ys` hold vector `b` at
    /// `b*n..(b+1)*n`, `k = active.len()`. One graph pass serves the whole
    /// batch; vectors with `active[b] == false` are skipped (their `ys`
    /// range is left untouched), which lets an iterative caller freeze
    /// converged batch members. Each active vector's output is bitwise
    /// identical to a solo [`run`](Self::run) on the same input.
    pub fn run_batch_into(&mut self, xs: &[f32], ys: &mut [f32], active: &[bool]) {
        let n = self.prepared.num_vertices;
        let k = active.len();
        assert_eq!(xs.len(), k * n, "input batch length mismatch");
        assert_eq!(ys.len(), k * n, "output batch length mismatch");
        if n == 0 || !active.iter().any(|&a| a) {
            return;
        }
        for b in 0..k {
            if active[b] {
                ys[b * n..(b + 1) * n].fill(0.0);
            }
        }

        let prep = &*self.prepared;
        let layout = &prep.layout;
        let tm = layout.total_msgs as usize;
        self.vals.resize(k * tm, 0.0);

        // Phase 1 — scatter: intra-edges apply directly into the owner's own
        // partitions of `ys`; inter-edges write their compressed message
        // slots. The pool-scope join is the barrier.
        {
            let y_s = SharedSlice::new(ys);
            let vals_s = SharedSlice::new(&mut self.vals);
            let scatter_part = |my: Range<usize>| {
                for p in my {
                    let vr = layout.partition_vertices(p);
                    for v in vr.start as usize..vr.end as usize {
                        for &dst in layout.intra_of(v as u32) {
                            for b in 0..k {
                                if active[b] {
                                    // SAFETY: intra destinations stay in
                                    // this job's own partitions.
                                    unsafe {
                                        y_s.update(b * n + dst as usize, |a| *a += xs[b * n + v])
                                    };
                                }
                            }
                        }
                    }
                    for pair in layout.png_of(p) {
                        for (i, &src) in layout.png_sources(pair).iter().enumerate() {
                            let slot = pair.slot_start as usize + i;
                            for b in 0..k {
                                if active[b] {
                                    // SAFETY: one writer per slot — slots
                                    // are sourced from exactly one
                                    // partition.
                                    unsafe {
                                        vals_s.write(b * tm + slot, xs[b * n + src as usize])
                                    };
                                }
                            }
                        }
                    }
                }
            };
            match &self.pool {
                Some(pool) => pool.scope(|s| {
                    for my in prep.thread_parts.iter().cloned() {
                        let f = &scatter_part;
                        s.spawn(move |_| f(my));
                    }
                }),
                None => {
                    for my in prep.thread_parts.iter().cloned() {
                        scatter_part(my);
                    }
                }
            }
        }

        // Phase 2 — gather: each owner streams its partitions' inboxes
        // (read-only now) and accumulates into its own `ys` entries.
        {
            let y_s = SharedSlice::new(ys);
            let vals: &[f32] = &self.vals;
            let gather_part = |my: Range<usize>| {
                for q in my {
                    for slot in layout.part_slot_ranges[q].clone() {
                        let base = slot as usize;
                        for &dst in layout.dests_of(slot) {
                            for b in 0..k {
                                if active[b] {
                                    // SAFETY: destinations lie in q, owned
                                    // by this job alone.
                                    unsafe {
                                        y_s.update(b * n + dst as usize, |a| {
                                            *a += vals[b * tm + base]
                                        })
                                    };
                                }
                            }
                        }
                    }
                }
            };
            match &self.pool {
                Some(pool) => pool.scope(|s| {
                    for my in prep.thread_parts.iter().cloned() {
                        let f = &gather_part;
                        s.spawn(move |_| f(my));
                    }
                }),
                None => {
                    for my in prep.thread_parts.iter().cloned() {
                        gather_part(my);
                    }
                }
            }
        }
    }

    /// Convenience batch form: one input vector per element, outputs in the
    /// same order.
    pub fn run_batch(&mut self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let n = self.prepared.num_vertices;
        let k = xs.len();
        let mut flat_x = vec![0.0f32; k * n];
        for (b, x) in xs.iter().enumerate() {
            assert_eq!(x.len(), n, "vector length mismatch in batch slot {b}");
            flat_x[b * n..(b + 1) * n].copy_from_slice(x);
        }
        let mut flat_y = vec![0.0f32; k * n];
        self.run_batch_into(&flat_x, &mut flat_y, &vec![true; k]);
        (0..k).map(|b| flat_y[b * n..(b + 1) * n].to_vec()).collect()
    }
}

/// Partition-centric SpMV: scatter `x` through the compressed message bins,
/// gather per destination partition, with `threads` workers owning disjoint
/// partition groups (one-to-many, as in HiPa §3.2).
///
/// One-shot wrapper over [`SpmvWorkspace`]: builds the full preprocessed
/// state, sweeps once, drops it. Prefer a workspace for anything iterative.
pub fn spmv_partition_centric(
    g: &DiGraph,
    x: &[f32],
    threads: usize,
    verts_per_partition: usize,
) -> Vec<f32> {
    let n = g.num_vertices();
    assert_eq!(x.len(), n, "vector length mismatch");
    if n == 0 {
        return Vec::new();
    }
    SpmvWorkspace::new(g, threads, verts_per_partition).run(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_graph::gen::{cycle, star};
    use hipa_graph::EdgeList;

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-5 * x.abs().max(1.0))
    }

    #[test]
    fn spmv_cycle_rotates() {
        let g = DiGraph::from_edge_list(&cycle(5));
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        // y[v] = x[v-1 mod 5]
        let y = spmv_reference(&g, &x);
        assert_eq!(y, vec![5.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn spmv_star_sums_spokes() {
        let g = DiGraph::from_edge_list(&star(4));
        let x = vec![10.0, 1.0, 2.0, 3.0];
        let y = spmv_reference(&g, &x);
        assert_eq!(y[0], 6.0);
        assert_eq!(&y[1..], &[10.0, 10.0, 10.0]);
    }

    #[test]
    fn partition_centric_matches_reference() {
        let g = hipa_graph::datasets::small_test_graph(80);
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| (i % 7) as f32 * 0.25 + 0.1).collect();
        let want = spmv_reference(&g, &x);
        for (threads, vpp) in [(1, 64), (3, 64), (4, 301), (8, 4096)] {
            let got = spmv_partition_centric(&g, &x, threads, vpp);
            assert!(close(&got, &want), "threads={threads} vpp={vpp}");
        }
    }

    #[test]
    fn partition_centric_deterministic_across_threads() {
        let g = hipa_graph::datasets::small_test_graph(81);
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| 1.0 / (i + 1) as f32).collect();
        let a = spmv_partition_centric(&g, &x, 1, 128);
        let b = spmv_partition_centric(&g, &x, 6, 128);
        assert_eq!(a, b, "bitwise determinism across thread counts");
    }

    #[test]
    fn workspace_reuse_is_bitwise_stable() {
        let g = hipa_graph::datasets::small_test_graph(82);
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| ((i * 13) % 11) as f32 * 0.5).collect();
        let one_shot = spmv_partition_centric(&g, &x, 4, 128);
        let mut ws = SpmvWorkspace::new(&g, 4, 128);
        for round in 0..3 {
            assert_eq!(ws.run(&x), one_shot, "round {round}");
        }
    }

    #[test]
    fn batch_matches_solo_runs_bitwise() {
        let g = hipa_graph::datasets::small_test_graph(83);
        let n = g.num_vertices();
        let xs: Vec<Vec<f32>> = (0..5)
            .map(|b| (0..n).map(|i| ((i * (b + 2) + b) % 9) as f32 * 0.125).collect())
            .collect();
        let mut ws = SpmvWorkspace::new(&g, 3, 256);
        let batch = ws.run_batch(&xs);
        for (b, x) in xs.iter().enumerate() {
            assert_eq!(batch[b], ws.run(x), "batch slot {b}");
        }
    }

    #[test]
    fn inactive_batch_slots_are_untouched() {
        let g = hipa_graph::datasets::small_test_graph(84);
        let n = g.num_vertices();
        let xs = vec![0.5f32; 3 * n];
        let mut ys = vec![-1.0f32; 3 * n];
        let mut ws = SpmvWorkspace::new(&g, 2, 128);
        ws.run_batch_into(&xs, &mut ys, &[true, false, true]);
        assert!(ys[n..2 * n].iter().all(|&v| v == -1.0), "frozen slot must stay untouched");
        assert_eq!(&ys[..n], &ws.run(&xs[..n])[..]);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = DiGraph::from_edge_list(&EdgeList::new(0, vec![]));
        assert!(spmv_partition_centric(&g, &[], 4, 16).is_empty());
        let g = DiGraph::from_edge_list(&EdgeList::new(3, vec![]));
        assert_eq!(spmv_partition_centric(&g, &[1.0, 2.0, 3.0], 2, 16), vec![0.0; 3]);
    }
}
