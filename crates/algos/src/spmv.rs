//! Sparse matrix–vector multiplication over the adjacency structure.
//!
//! The paper frames PageRank as iterated SpMV (§1) and names SpMV first in
//! its extension list. Here `y = Aᵀx` with `A` the (unweighted) adjacency
//! matrix: `y[v] = Σ_{u→v} x[u]` — exactly PageRank's propagation step
//! without damping — computed either directly from the in-CSR (reference)
//! or with the partition-centric compressed scatter/gather layout plus
//! per-thread partition ownership (HiPa methodology).
//!
//! disjointness: HiPa plan (`hipa_plan`) — each worker writes the PNG
//! message slots sourced from its own partitions (scatter) and the `y`
//! entries of its own partitions (gather); the phases are barrier-separated
//! and each element keeps a single writer thread across both.

use hipa_core::disjoint::SharedSlice;
use hipa_core::PcpmLayout;
use hipa_graph::DiGraph;
use hipa_partition::hipa_plan;

/// Sequential reference: `y[v] = Σ_{u -> v} x[u]` via the in-CSR.
pub fn spmv_reference(g: &DiGraph, x: &[f32]) -> Vec<f32> {
    let n = g.num_vertices();
    assert_eq!(x.len(), n, "vector length mismatch");
    let mut y = vec![0.0f32; n];
    for v in 0..n as u32 {
        let mut acc = 0.0f32;
        for &u in g.in_csr().neighbors(v) {
            acc += x[u as usize];
        }
        y[v as usize] = acc;
    }
    y
}

/// Partition-centric SpMV: scatter `x` through the compressed message bins,
/// gather per destination partition, with `threads` workers owning disjoint
/// partition groups (one-to-many, as in HiPa §3.2).
///
/// Accumulation order per element matches the PageRank engines (intra
/// contributions in source order, then inbox messages in slot order), so the
/// result is deterministic for any thread count.
pub fn spmv_partition_centric(
    g: &DiGraph,
    x: &[f32],
    threads: usize,
    verts_per_partition: usize,
) -> Vec<f32> {
    let n = g.num_vertices();
    assert_eq!(x.len(), n, "vector length mismatch");
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1);
    let layout = PcpmLayout::build(g.out_csr(), verts_per_partition.max(1), false);
    let plan = hipa_plan(g.out_degrees(), 1, threads, verts_per_partition.max(1));
    let parts: Vec<std::ops::Range<usize>> =
        plan.threads().map(|(_, _, t)| t.part_range.clone()).collect();

    let mut y = vec![0.0f32; n];
    let mut vals = vec![0.0f32; layout.total_msgs as usize];
    {
        let y_s = SharedSlice::new(&mut y);
        let vals_s = SharedSlice::new(&mut vals);
        let barrier = std::sync::Barrier::new(threads);
        std::thread::scope(|scope| {
            for j in 0..threads {
                let y_s = &y_s;
                let vals_s = &vals_s;
                let barrier = &barrier;
                let layout = &layout;
                let my = parts[j].clone();
                scope.spawn(move || {
                    // Scatter: intra applies + message bins.
                    for p in my.clone() {
                        let vr = layout.partition_vertices(p);
                        for v in vr.start as usize..vr.end as usize {
                            let xv = x[v];
                            for &dst in layout.intra_of(v as u32) {
                                // SAFETY: intra stays in this thread's own
                                // partitions.
                                unsafe { y_s.update(dst as usize, |a| *a += xv) };
                            }
                        }
                        for pair in layout.png_of(p) {
                            for (k, &src) in layout.png_sources(pair).iter().enumerate() {
                                // SAFETY: one writer per slot.
                                unsafe {
                                    vals_s.write(pair.slot_start as usize + k, x[src as usize])
                                };
                            }
                        }
                    }
                    barrier.wait();
                    // Gather own inboxes.
                    for q in my {
                        for k in layout.part_slot_ranges[q].clone() {
                            // SAFETY: only q's owner reads q's inbox after
                            // the barrier.
                            let val = unsafe { vals_s.get(k as usize) };
                            for &dst in layout.dests_of(k) {
                                // SAFETY: destinations lie in q.
                                unsafe { y_s.update(dst as usize, |a| *a += val) };
                            }
                        }
                    }
                });
            }
        });
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_graph::gen::{cycle, star};
    use hipa_graph::EdgeList;

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-5 * x.abs().max(1.0))
    }

    #[test]
    fn spmv_cycle_rotates() {
        let g = DiGraph::from_edge_list(&cycle(5));
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        // y[v] = x[v-1 mod 5]
        let y = spmv_reference(&g, &x);
        assert_eq!(y, vec![5.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn spmv_star_sums_spokes() {
        let g = DiGraph::from_edge_list(&star(4));
        let x = vec![10.0, 1.0, 2.0, 3.0];
        let y = spmv_reference(&g, &x);
        assert_eq!(y[0], 6.0);
        assert_eq!(&y[1..], &[10.0, 10.0, 10.0]);
    }

    #[test]
    fn partition_centric_matches_reference() {
        let g = hipa_graph::datasets::small_test_graph(80);
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| (i % 7) as f32 * 0.25 + 0.1).collect();
        let want = spmv_reference(&g, &x);
        for (threads, vpp) in [(1, 64), (3, 64), (4, 301), (8, 4096)] {
            let got = spmv_partition_centric(&g, &x, threads, vpp);
            assert!(close(&got, &want), "threads={threads} vpp={vpp}");
        }
    }

    #[test]
    fn partition_centric_deterministic_across_threads() {
        let g = hipa_graph::datasets::small_test_graph(81);
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| 1.0 / (i + 1) as f32).collect();
        let a = spmv_partition_centric(&g, &x, 1, 128);
        let b = spmv_partition_centric(&g, &x, 6, 128);
        assert_eq!(a, b, "bitwise determinism across thread counts");
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = DiGraph::from_edge_list(&EdgeList::new(0, vec![]));
        assert!(spmv_partition_centric(&g, &[], 4, 16).is_empty());
        let g = DiGraph::from_edge_list(&EdgeList::new(3, vec![]));
        assert_eq!(spmv_partition_centric(&g, &[1.0, 2.0, 3.0], 2, 16), vec![0.0; 3]);
    }
}
