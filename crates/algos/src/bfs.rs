//! Breadth-first search — the paper's third §6 extension target.
//!
//! [`bfs_levels`] is the plain queue-based reference. [`bfs_partition_centric`]
//! is the HiPa-style variant: level-synchronous, with each level's expansion
//! routed through per-partition frontier bins, so that (a) a partition's
//! vertices are expanded together while their adjacency is cache-resident
//! and (b) the level arrays are written partition-by-partition — the same
//! locality discipline the PageRank engine imposes.

use hipa_graph::DiGraph;

/// Level of each vertex from `source` (`u32::MAX` = unreachable).
pub const UNREACHED: u32 = u32::MAX;

/// Plain BFS reference.
pub fn bfs_levels(g: &DiGraph, source: u32) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut level = vec![UNREACHED; n];
    let mut queue = std::collections::VecDeque::new();
    level[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let next = level[v as usize] + 1;
        for &u in g.out_csr().neighbors(v) {
            if level[u as usize] == UNREACHED {
                level[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    level
}

/// Partition-centric level-synchronous BFS.
pub fn bfs_partition_centric(g: &DiGraph, source: u32, verts_per_partition: usize) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let vpp = verts_per_partition.max(1);
    let num_parts = n.div_ceil(vpp);
    let part_of = |v: u32| v as usize / vpp;

    let mut level = vec![UNREACHED; n];
    level[source as usize] = 0;
    // Per-partition frontier bins for the *current* level.
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); num_parts];
    bins[part_of(source)].push(source);
    let mut cur = 0u32;
    let mut remaining: usize = 1;

    while remaining > 0 {
        remaining = 0;
        let mut next_bins: Vec<Vec<u32>> = vec![Vec::new(); num_parts];
        // Expand one source partition at a time: its adjacency and its
        // vertices stay hot while it is being drained.
        for p in 0..num_parts {
            for i in 0..bins[p].len() {
                let v = bins[p][i];
                for &u in g.out_csr().neighbors(v) {
                    if level[u as usize] == UNREACHED {
                        level[u as usize] = cur + 1;
                        next_bins[part_of(u)].push(u);
                        remaining += 1;
                    }
                }
            }
        }
        bins = next_bins;
        cur += 1;
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_graph::gen::{cycle, grid, path, star};
    use hipa_graph::EdgeList;

    #[test]
    fn path_levels_are_distances() {
        let g = DiGraph::from_edge_list(&path(6));
        let l = bfs_levels(&g, 0);
        assert_eq!(l, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn unreachable_marked() {
        let g = DiGraph::from_edge_list(&EdgeList::new(4, vec![(0, 1).into()]));
        let l = bfs_levels(&g, 0);
        assert_eq!(l, vec![0, 1, UNREACHED, UNREACHED]);
    }

    #[test]
    fn star_is_one_hop() {
        let g = DiGraph::from_edge_list(&star(7));
        let l = bfs_levels(&g, 0);
        assert_eq!(l[0], 0);
        assert!(l[1..].iter().all(|&x| x == 1));
    }

    #[test]
    fn partition_centric_matches_reference() {
        for seed in [100u64, 101, 102] {
            let g = hipa_graph::datasets::small_test_graph(seed);
            let want = bfs_levels(&g, 0);
            for vpp in [7usize, 64, 1000, 1 << 20] {
                assert_eq!(bfs_partition_centric(&g, 0, vpp), want, "seed {seed} vpp {vpp}");
            }
        }
    }

    #[test]
    fn partition_centric_on_structured_graphs() {
        for el in [cycle(33), grid(7, 9), path(20)] {
            let g = DiGraph::from_edge_list(&el);
            assert_eq!(bfs_partition_centric(&g, 0, 8), bfs_levels(&g, 0));
        }
    }

    #[test]
    fn different_sources_agree() {
        let g = hipa_graph::datasets::small_test_graph(103);
        for s in [1u32, 17, 500] {
            assert_eq!(bfs_partition_centric(&g, s, 128), bfs_levels(&g, s));
        }
    }
}
