//! Connected components by label propagation, partition-centric.
//!
//! A natural fourth algorithm for the HiPa methodology beyond the paper's
//! §6 list: every vertex repeatedly adopts the minimum label among itself
//! and its in-neighbours; at the fixed point the label identifies the
//! weakly-connected component (when run on a symmetrised graph) or the
//! "min-reachable-ancestor" closure on a directed one. Processing is
//! partition-grouped like the PageRank gather, so label reads concentrate
//! per cache-sized block.

use hipa_graph::DiGraph;

/// Result of label propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelPropagation {
    /// Final label per vertex (the minimum vertex id reachable backwards).
    pub labels: Vec<u32>,
    /// Rounds until the fixed point.
    pub rounds: usize,
}

/// Runs min-label propagation over in-edges until no label changes.
/// On a symmetric graph the labels equal weakly-connected-component
/// representatives (the minimum vertex id of the component).
pub fn label_propagation(g: &DiGraph, max_rounds: usize) -> LabelPropagation {
    let n = g.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0usize;
    let vpp = 1024usize;
    let num_parts = n.div_ceil(vpp).max(1);
    loop {
        if rounds >= max_rounds {
            break;
        }
        let mut changed = false;
        // Partition-grouped sweep: destination blocks processed one at a
        // time so the written label range stays cache-resident.
        for p in 0..num_parts {
            let lo = p * vpp;
            let hi = ((p + 1) * vpp).min(n);
            for v in lo..hi {
                let mut m = labels[v];
                for &u in g.in_csr().neighbors(v as u32) {
                    m = m.min(labels[u as usize]);
                }
                if m < labels[v] {
                    labels[v] = m;
                    changed = true;
                }
            }
        }
        rounds += 1;
        if !changed {
            break;
        }
    }
    LabelPropagation { labels, rounds }
}

/// Convenience: weakly-connected-component labels via propagation on the
/// symmetrised graph (each edge duplicated in both directions).
pub fn wcc_by_propagation(g: &DiGraph, max_rounds: usize) -> LabelPropagation {
    let mut edges = Vec::with_capacity(2 * g.num_edges());
    for (s, d) in g.out_csr().iter_edges() {
        edges.push(hipa_graph::Edge::new(s, d));
        edges.push(hipa_graph::Edge::new(d, s));
    }
    let sym = DiGraph::from_edge_list(&hipa_graph::EdgeList::new(g.num_vertices(), edges));
    label_propagation(&sym, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipa_graph::components::weakly_connected_components;
    use hipa_graph::gen::{cycle, path};
    use hipa_graph::EdgeList;

    #[test]
    fn cycle_collapses_to_zero() {
        let g = DiGraph::from_edge_list(&cycle(17));
        let r = label_propagation(&g, 100);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn directed_path_propagates_min_forward() {
        let g = DiGraph::from_edge_list(&path(5));
        let r = label_propagation(&g, 100);
        assert_eq!(r.labels, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn wcc_matches_union_find_on_random_graphs() {
        for seed in [200u64, 201, 202] {
            let g = hipa_graph::datasets::small_test_graph(seed);
            let lp = wcc_by_propagation(&g, 200);
            let uf = weakly_connected_components(g.out_csr());
            // Same partition of the vertex set: labels agree iff uf labels agree.
            let n = g.num_vertices();
            for a in 0..n {
                for b in (a + 1)..n.min(a + 50) {
                    assert_eq!(
                        lp.labels[a] == lp.labels[b],
                        uf.label[a] == uf.label[b],
                        "seed {seed}: vertices {a},{b} disagree"
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_components_keep_distinct_labels() {
        let el = EdgeList::new(6, vec![(0, 1).into(), (1, 0).into(), (3, 4).into(), (4, 3).into()]);
        let g = DiGraph::from_edge_list(&el);
        let r = label_propagation(&g, 100);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[3], r.labels[4]);
        assert_ne!(r.labels[0], r.labels[3]);
        assert_eq!(r.labels[2], 2);
        assert_eq!(r.labels[5], 5);
    }

    #[test]
    fn round_cap_is_respected() {
        // Star whose hub has the LARGEST id: the in-place ascending sweep
        // updates the hub only at the end of round 1, so the spokes cannot
        // see label 0 before round 2.
        let n = 10u32;
        let hub = n - 1;
        let mut edges = Vec::new();
        for s in 0..hub {
            edges.push((s, hub).into());
            edges.push((hub, s).into());
        }
        let g = DiGraph::from_edge_list(&EdgeList::new(n as usize, edges));
        let capped = label_propagation(&g, 1);
        assert_eq!(capped.rounds, 1);
        assert!(capped.labels[1..hub as usize].iter().any(|&l| l != 0), "{:?}", capped.labels);
        let full = label_propagation(&g, 100);
        assert!(full.labels.iter().all(|&l| l == 0));
        assert!(full.rounds >= 2);
    }
}
