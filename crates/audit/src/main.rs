//! CLI for the workspace soundness audit.
//!
//! ```text
//! hipa-audit [--root PATH] [--summary-only]
//! ```
//!
//! Exit status: 0 when the tree is clean, 1 when any lint fires, 2 on usage
//! or I/O errors. See DESIGN.md §10 for the rules and allowlists.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut summary_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--summary-only" => summary_only = true,
            "--help" | "-h" => {
                println!("usage: hipa-audit [--root PATH] [--summary-only]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        hipa_audit::find_workspace_root(&cwd)
            .or_else(|| hipa_audit::find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))))
    });
    let Some(root) = root else {
        eprintln!("hipa-audit: could not locate a workspace root (pass --root)");
        return ExitCode::from(2);
    };

    let report = match hipa_audit::audit_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hipa-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if !summary_only {
        print!("{}", report.render_findings());
    }
    println!(
        "hipa-audit: {} file(s) scanned under {}, {} finding(s)",
        report.files_scanned,
        root.display(),
        report.findings.len()
    );
    println!();
    print!("{}", report.render_summary());

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
