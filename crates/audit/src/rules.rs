//! The project lint rules over a lexed source file.
//!
//! All rules are *syntactic*: they see code tokens and comment text, not
//! types. That keeps the pass dependency-free and fast, at the cost of
//! documented approximations: rule 3 keys on the `SharedSlice` identifier
//! appearing in a file (not on resolved method receivers), rule 4 keys on
//! `Ordering::<variant>` token paths (the atomic variant names do not
//! collide with `std::cmp::Ordering`'s), rule 6 keys on `thread::<name>`
//! token paths, and rule 7 resolves plan symbols against the set of
//! identifiers that follow a definition keyword anywhere in the scanned
//! tree (see [`collect_definitions`]).
//!
//! Rules 1–6 are per-file ([`check_file`]). Rule 7 is the one *cross-file*
//! check ([`check_plan_symbols`]): the driver collects definitions over the
//! whole tree first, then validates every contract header against them.

use crate::lexer::Lexed;
use std::collections::BTreeSet;

/// A single audit violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

pub const RULE_UNSAFE_SAFETY: &str = "unsafe-needs-safety-comment";
pub const RULE_RAW_PTR: &str = "raw-pointer-confinement";
pub const RULE_DISJOINTNESS: &str = "shared-slice-needs-contract-header";
pub const RULE_ORDERING: &str = "atomic-ordering-discipline";
pub const RULE_STATIC_MUT: &str = "no-static-mut-or-no-mangle";
pub const RULE_BARE_THREAD: &str = "no-bare-std-thread";
pub const RULE_PLAN_SYMBOL: &str = "disjointness-plan-symbol-exists";

/// Modules allowed to contain raw-pointer casts, `transmute`, or
/// `UnsafeCell`: the one audited aliasing primitive, the prefetch-hint
/// helper (a single bounds-checked `as *const i8` for `_mm_prefetch`),
/// plus the vendored shims (third-party stand-ins, reviewed as a unit).
pub const RAW_PTR_ALLOWLIST: &[&str] =
    &["crates/core/src/disjoint.rs", "crates/core/src/prefetch.rs", "crates/shims/"];

/// Files exempt from the `//! disjointness:` header requirement: the module
/// that *defines* `SharedSlice` (its contract is the module itself).
pub const DISJOINTNESS_EXEMPT: &[&str] = &["crates/core/src/disjoint.rs"];

/// Registered Acquire/Release/AcqRel sites, as (path pattern, justification)
/// pairs. Register new pairs here — both sides — when one is introduced;
/// everywhere else the codebase synchronises with barriers and scoped joins.
pub const PAIRED_ORDERING_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/shims/rayon/src/hb.rs",
        "CLAIM_ORDERING: the check-hb claim-cursor AcqRel, defined once here so claim sites \
         carry no bare ordering path. One RMW is both sides of the pair — each claimant's \
         release half is the next claimant's acquire half on the same cursor (DESIGN.md §15).",
    ),
    (
        "crates/shims/rayon/src/pool.rs",
        "the consuming side of the claim-cursor pair (the chunk-claim fetch_add uses \
         hb::CLAIM_ORDERING) plus the pool's condvar-latch hand-offs (work_cv/done_cv, scope \
         completion), which pair through Mutex/Condvar and need no bare orderings.",
    ),
];

/// The atomic memory-ordering variant names (disjoint from
/// `std::cmp::Ordering`'s `Less`/`Equal`/`Greater`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Sites allowed to use bare `std::thread` parallelism (rule 6), as
/// (path pattern, justification) pairs. Threads spawned outside the
/// instrumented pool carry no vector clock: their fork/join edges are
/// invisible to `check-hb`, so any `SharedSlice` traffic they perform is
/// checked against stale clocks. Every entry either *is* the checker
/// machinery, deliberately exploits the blind spot as a negative control,
/// or runs detached service loops that never touch a `SharedSlice`.
pub const BARE_THREAD_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/shims/",
        "the instrumented pool itself: workers are spawned here and every sync edge they \
         create is modeled by rayon::hb (plus the shim's own unit tests of those edges)",
    ),
    (
        "crates/core/src/hipa/native.rs",
        "the documented HiPa barrier-worker site: persistent per-run workers synchronised \
         exclusively by a TrackedBarrier, whose edges the checker models (DESIGN.md §15)",
    ),
    (
        "crates/core/src/disjoint.rs",
        "checker negative controls: bare threads are deliberately outside the modeled edge \
         set, so the overlap tests race deterministically even when serialised",
    ),
    (
        "crates/serve/src/server.rs",
        "detached service loops (census sampler, epoch scheduler): long-lived background \
         threads that share state through channels and locks only, never a SharedSlice",
    ),
    ("tests/check_disjoint.rs", "checker negative control (see crates/core/src/disjoint.rs)"),
    ("tests/check_hb.rs", "checker negative control (see crates/core/src/disjoint.rs)"),
    (
        "crates/bench/benches/pool.rs",
        "benchmark baseline: measures a bare-thread scope against the shim pool, so the \
         bare side must stay bare",
    ),
];

/// Matches a workspace-relative path against an allowlist pattern: a
/// trailing `/` means "anything under this directory", otherwise the
/// pattern must name the file exactly.
fn path_matches(path: &str, pat: &str) -> bool {
    if pat.ends_with('/') {
        path.starts_with(pat)
    } else {
        path == pat
    }
}

fn allowlisted(path: &str, list: &[&str]) -> bool {
    list.iter().any(|pat| path_matches(path, pat))
}

/// True when `line` carries one of `markers` in a comment on the same line,
/// or in the contiguous run of comment / blank / attribute lines
/// immediately above it.
fn annotated(lx: &Lexed, line: usize, markers: &[&str]) -> bool {
    let hit = |text: &str| markers.iter().any(|m| text.contains(m));
    if hit(&lx.line(line).comment) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let li = lx.line(l);
        if hit(&li.comment) {
            return true;
        }
        if li.has_code && !li.is_attr {
            return false;
        }
    }
    false
}

/// Rule 1: every `unsafe` token (block, fn, impl, trait) must carry a
/// `SAFETY:` comment — same line or immediately above — or, for declared
/// `unsafe fn`s, a `# Safety` doc section.
pub fn check_unsafe_safety(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut last_line = 0usize;
    for t in &lx.tokens {
        if t.text != "unsafe" || t.line == last_line {
            continue;
        }
        last_line = t.line;
        if !annotated(lx, t.line, &["SAFETY:", "# Safety"]) {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: RULE_UNSAFE_SAFETY,
                msg: "`unsafe` without a `SAFETY:` comment immediately above (or a \
                      `# Safety` doc section for declarations)"
                    .to_string(),
            });
        }
    }
    out
}

/// Rule 2: raw-pointer casts (`as *const` / `as *mut`), `transmute`, and
/// `UnsafeCell` are confined to the allowlisted audited modules.
pub fn check_raw_ptr_confinement(path: &str, lx: &Lexed) -> Vec<Finding> {
    if allowlisted(path, RAW_PTR_ALLOWLIST) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        let what = match t.text.as_str() {
            "transmute" => Some("`transmute`"),
            "UnsafeCell" => Some("`UnsafeCell`"),
            "as" => {
                let is_cast = toks.get(i + 1).is_some_and(|n| n.text == "*")
                    && toks.get(i + 2).is_some_and(|n| n.text == "const" || n.text == "mut");
                if is_cast {
                    Some("raw-pointer cast")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: RULE_RAW_PTR,
                msg: format!(
                    "{what} outside the audited aliasing modules \
                     (allowlist: {RAW_PTR_ALLOWLIST:?})"
                ),
            });
        }
    }
    out
}

/// Rule 3: a file that touches `SharedSlice` must carry a module-level
/// `//! disjointness:` contract header naming the partition plan that makes
/// its write indices disjoint.
pub fn check_disjointness_header(path: &str, lx: &Lexed) -> Vec<Finding> {
    if allowlisted(path, DISJOINTNESS_EXEMPT) {
        return Vec::new();
    }
    let Some(first) = lx.tokens.iter().find(|t| t.text == "SharedSlice") else {
        return Vec::new();
    };
    let has_header = (1..=lx.num_lines()).any(|l| {
        let c = &lx.line(l).comment;
        c.split("disjointness:").nth(1).is_some_and(|rest| !rest.trim().is_empty())
    });
    if has_header {
        return Vec::new();
    }
    vec![Finding {
        file: path.to_string(),
        line: first.line,
        rule: RULE_DISJOINTNESS,
        msg: "file uses `SharedSlice` but has no `//! disjointness:` contract header \
              naming the partition plan that keeps its writes disjoint"
            .to_string(),
    }]
}

/// Rule 4: atomic `Ordering` discipline. `Relaxed` sites must carry an
/// `ordering:` annotation comment (the project reserves them for
/// work-claim/statistics counters); `Acquire`/`Release`/`AcqRel` must be
/// registered in [`PAIRED_ORDERING_ALLOWLIST`]; `SeqCst` is always flagged.
pub fn check_ordering_discipline(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        if toks[i].text != "Ordering" {
            continue;
        }
        let is_path = toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":");
        let Some(variant) = toks.get(i + 3) else { continue };
        if !is_path || !ATOMIC_ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        let line = variant.line;
        match variant.text.as_str() {
            "SeqCst" => out.push(Finding {
                file: path.to_string(),
                line,
                rule: RULE_ORDERING,
                msg: "`SeqCst` is flagged: no engine invariant needs sequential \
                      consistency — use `Relaxed` with an `ordering:` annotation, or a \
                      registered Acquire/Release pair"
                    .to_string(),
            }),
            "Acquire" | "Release" | "AcqRel" => {
                let registered =
                    PAIRED_ORDERING_ALLOWLIST.iter().any(|(pat, _)| path_matches(path, pat));
                if !registered {
                    out.push(Finding {
                        file: path.to_string(),
                        line,
                        rule: RULE_ORDERING,
                        msg: format!(
                            "`{}` outside the registered acquire/release pairs — add the \
                             site (both sides of the pair) to PAIRED_ORDERING_ALLOWLIST",
                            variant.text
                        ),
                    });
                }
            }
            _ => {
                // Relaxed
                if !annotated(lx, line, &["ordering:"]) {
                    out.push(Finding {
                        file: path.to_string(),
                        line,
                        rule: RULE_ORDERING,
                        msg: "`Relaxed` without an `ordering:` annotation comment stating \
                              why no payload ordering is required"
                            .to_string(),
                    });
                }
            }
        }
    }
    out
}

/// Rule 5: no mutable process-global state or linkage escapes. `static mut`
/// is banned outright (the project's shared mutation goes through
/// `SharedSlice` or atomics, both auditable); `#[no_mangle]` is banned
/// because an unmangled export bypasses the crate boundary the other rules
/// audit along. No allowlist — neither construct has a sanctioned use here.
pub fn check_static_mut(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "static" if toks.get(i + 1).is_some_and(|n| n.text == "mut") => {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: RULE_STATIC_MUT,
                    msg: "`static mut` is banned: use an atomic, a lock, or a \
                          `SharedSlice` with a documented disjointness contract"
                        .to_string(),
                });
            }
            // Only flag the attribute form; an identifier named `no_mangle`
            // in ordinary code has no linkage effect, and attributes are the
            // only place the token appears in practice.
            "no_mangle" if lx.line(t.line).is_attr => {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: RULE_STATIC_MUT,
                    msg: "`#[no_mangle]` is banned: unmangled exports escape the \
                          audited crate boundary"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
    out
}

/// Rule 6: no bare `std::thread` parallelism. `thread::spawn`,
/// `thread::scope`, and `thread::Builder` are banned outside
/// [`BARE_THREAD_ALLOWLIST`]: a thread the shim pool did not spawn carries
/// no vector clock, so the `check-hb` race detector cannot see its fork and
/// join edges — `SharedSlice` traffic on such a thread is checked against
/// stale clocks and races are missed or misattributed. (`thread::sleep`,
/// `thread::current`, and the other non-spawning helpers stay allowed.)
pub fn check_bare_thread(path: &str, lx: &Lexed) -> Vec<Finding> {
    if BARE_THREAD_ALLOWLIST.iter().any(|(pat, _)| path_matches(path, pat)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        if toks[i].text != "thread" {
            continue;
        }
        let is_path = toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":");
        let Some(what) = toks.get(i + 3) else { continue };
        if !is_path || !matches!(what.text.as_str(), "spawn" | "scope" | "Builder") {
            continue;
        }
        out.push(Finding {
            file: path.to_string(),
            line: what.line,
            rule: RULE_BARE_THREAD,
            msg: format!(
                "bare `std::thread::{}` outside the instrumented pool: threads spawned here \
                 are invisible to the check-hb vector clocks (fork/join edges unmodeled), so \
                 races on them are missed — run the work on the rayon shim pool, or register \
                 the site in BARE_THREAD_ALLOWLIST with a justification",
                what.text
            ),
        });
    }
    out
}

/// The keywords whose following identifier declares a name (rule 7's
/// definition set). `fn`/`const` etc. may stack (`pub const fn f`), so a
/// keyword followed by another keyword contributes nothing.
const DEF_KEYWORDS: &[&str] =
    &["fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union"];

/// Identifier-introducing tokens that can sit between a definition keyword
/// and the defined name without naming anything themselves.
const DEF_NOISE: &[&str] = &["mut", "unsafe", "async", "extern", "dyn", "impl"];

/// Collects every identifier the file *defines*: the token following a
/// definition keyword (`fn f`, `struct S`, `const C`, ...). Over-collects
/// harmlessly (e.g. `mod tests`); rule 7 only asks membership.
pub fn collect_definitions(lx: &Lexed) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        if !DEF_KEYWORDS.contains(&toks[i].text.as_str()) {
            continue;
        }
        let Some(n) = toks.get(i + 1) else { continue };
        let is_ident = n.text.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
        if is_ident
            && !DEF_KEYWORDS.contains(&n.text.as_str())
            && !DEF_NOISE.contains(&n.text.as_str())
        {
            out.insert(n.text.clone());
        }
    }
    out
}

/// Extracts the `//! disjointness:` contract headers of a file: lines whose
/// comment text *starts* with `disjointness:` (after doc-comment sigils),
/// concatenated with the contiguous non-code comment lines below them. The
/// strict line-start match keeps prose *mentions* of the marker (like this
/// one) from counting as headers.
fn contract_headers(lx: &Lexed) -> Vec<(usize, String)> {
    let strip = |c: &str| -> String { c.trim_start_matches(['/', '!', ' ', '\t']).to_string() };
    let mut out = Vec::new();
    for l in 1..=lx.num_lines() {
        let t = strip(&lx.line(l).comment);
        let Some(rest) = t.strip_prefix("disjointness:") else { continue };
        let mut text = rest.to_string();
        let mut k = l + 1;
        while k <= lx.num_lines() && !lx.line(k).has_code {
            let cont = strip(&lx.line(k).comment);
            if cont.is_empty() {
                break;
            }
            text.push(' ');
            text.push_str(&cont);
            k += 1;
        }
        out.push((l, text));
    }
    out
}

/// The backtick-quoted symbol candidates in a header text: for each
/// `` `span` ``, the leading identifier of its last `::` segment (so
/// `` `a::b::plan(x)` `` yields `plan`, `` `parts[j]` `` yields `parts`).
fn plan_candidates(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('`') else { break };
        let span = &after[..end];
        rest = &after[end + 1..];
        let seg = span.rsplit("::").next().unwrap_or(span);
        let ident: String =
            seg.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_') {
            out.push(ident);
        }
    }
    out
}

/// Rule 7: every `//! disjointness:` contract header must name — in
/// backticks — at least one plan symbol that is actually *defined* in the
/// scanned tree (`defs`, from [`collect_definitions`] over every file). A
/// header citing a partitioner that no longer exists is a stale contract:
/// the prose promises disjointness that nothing in the tree produces.
pub fn check_plan_symbols(path: &str, lx: &Lexed, defs: &BTreeSet<String>) -> Vec<Finding> {
    if allowlisted(path, DISJOINTNESS_EXEMPT) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (line, text) in contract_headers(lx) {
        let cands = plan_candidates(&text);
        if cands.iter().any(|c| defs.contains(c)) {
            continue;
        }
        let msg = if cands.is_empty() {
            "contract header names no backtick-quoted plan symbol — name the partition \
             plan (a function, struct, or const defined in the tree) that keeps the \
             writes disjoint"
                .to_string()
        } else {
            format!(
                "contract header names {cands:?}, but none of them is defined anywhere \
                 in the scanned tree — the disjointness plan it cites is stale"
            )
        };
        out.push(Finding { file: path.to_string(), line, rule: RULE_PLAN_SYMBOL, msg });
    }
    out
}

/// Runs the six per-file rules over one file. Rule 7 needs the whole tree's
/// definition set — the driver runs [`check_plan_symbols`] separately.
pub fn check_file(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = check_unsafe_safety(path, lx);
    out.extend(check_raw_ptr_confinement(path, lx));
    out.extend(check_disjointness_header(path, lx));
    out.extend(check_ordering_discipline(path, lx));
    out.extend(check_static_mut(path, lx));
    out.extend(check_bare_thread(path, lx));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn unsafe_with_safety_above_passes() {
        let lx = lex("fn f() {\n    // SAFETY: disjoint per thread.\n    unsafe { g() }\n}\n");
        assert!(check_unsafe_safety("x.rs", &lx).is_empty());
    }

    #[test]
    fn unsafe_with_attr_between_passes() {
        let lx = lex("// SAFETY: fine.\n#[inline]\nunsafe fn g() {}\n");
        assert!(check_unsafe_safety("x.rs", &lx).is_empty());
    }

    #[test]
    fn doc_safety_section_passes() {
        let lx =
            lex("/// Does a thing.\n///\n/// # Safety\n/// Caller upholds X.\nunsafe fn g() {}\n");
        assert!(check_unsafe_safety("x.rs", &lx).is_empty());
    }

    #[test]
    fn bare_unsafe_fails() {
        let lx = lex("fn f() {\n    let y = 1;\n    unsafe { g() }\n}\n");
        let f = check_unsafe_safety("x.rs", &lx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn relaxed_needs_annotation() {
        let src = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(check_ordering_discipline("x.rs", &lex(src)).len(), 1);
        let ok = "fn f(c: &AtomicUsize) {\n    // ordering: relaxed (claim counter)\n    \
                  c.fetch_add(1, Ordering::Relaxed);\n}";
        assert!(check_ordering_discipline("x.rs", &lex(ok)).is_empty());
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let lx = lex("fn f(a: u32, b: u32) -> std::cmp::Ordering { std::cmp::Ordering::Less }");
        assert!(check_ordering_discipline("x.rs", &lx).is_empty());
    }

    #[test]
    fn seqcst_always_flagged() {
        let lx = lex("fn f(c: &AtomicUsize) { c.load(Ordering::SeqCst); }");
        assert_eq!(check_ordering_discipline("x.rs", &lx).len(), 1);
    }

    #[test]
    fn raw_ptr_confined() {
        let src = "fn f(x: &mut [u8]) { let _p = x as *mut [u8]; }";
        assert_eq!(check_raw_ptr_confinement("crates/graph/src/csr.rs", &lex(src)).len(), 1);
        assert!(check_raw_ptr_confinement("crates/core/src/disjoint.rs", &lex(src)).is_empty());
        assert!(check_raw_ptr_confinement("crates/shims/rayon/src/lib.rs", &lex(src)).is_empty());
    }

    #[test]
    fn multiplication_after_as_is_not_a_cast() {
        let lx = lex("fn f(x: usize, y: usize) -> usize { (x as usize) * y }");
        assert!(check_raw_ptr_confinement("crates/graph/src/csr.rs", &lx).is_empty());
    }

    #[test]
    fn static_mut_is_flagged() {
        let lx = lex("static mut COUNTER: usize = 0;\n");
        let f = check_static_mut("x.rs", &lx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_STATIC_MUT);
    }

    #[test]
    fn static_lifetime_is_not_static_mut() {
        let lx = lex("fn f(x: &'static mut u32) -> &'static str { \"s\" }\n");
        assert!(check_static_mut("x.rs", &lx).is_empty());
        let imm = lex("static OK: usize = 0;\n");
        assert!(check_static_mut("x.rs", &imm).is_empty());
    }

    #[test]
    fn no_mangle_attr_is_flagged_but_comment_is_not() {
        let lx = lex("#[no_mangle]\npub extern \"C\" fn f() {}\n");
        assert_eq!(check_static_mut("x.rs", &lx).len(), 1);
        let c = lex("// mentions no_mangle in prose only\nfn f() {}\n");
        assert!(check_static_mut("x.rs", &c).is_empty());
    }

    #[test]
    fn bare_thread_spawn_scope_builder_are_flagged() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n    std::thread::scope(|s| {});\n    \
                   let b = std::thread::Builder::new();\n}\n";
        let f = check_bare_thread("crates/graph/src/gen.rs", &lex(src));
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == RULE_BARE_THREAD));
        // Allowlisted paths pass untouched.
        assert!(check_bare_thread("crates/shims/rayon/src/pool.rs", &lex(src)).is_empty());
        assert!(check_bare_thread("crates/core/src/hipa/native.rs", &lex(src)).is_empty());
    }

    #[test]
    fn non_spawning_thread_helpers_are_allowed() {
        let src =
            "fn f() {\n    std::thread::sleep(d);\n    let id = std::thread::current();\n    \
                   std::thread::yield_now();\n}\n";
        assert!(check_bare_thread("crates/graph/src/gen.rs", &lex(src)).is_empty());
        // Mentions in comments and strings never fire.
        let prose = "// call std::thread::spawn here\nfn f() { let s = \"thread::spawn\"; }\n";
        assert!(check_bare_thread("crates/graph/src/gen.rs", &lex(prose)).is_empty());
    }

    #[test]
    fn definitions_are_collected_past_stacked_keywords() {
        let lx = lex("pub const fn plan_a() {}\nstruct PlanB;\nstatic PLAN_C: u32 = 0;\n\
                      type PlanD = u32;\nfn generic<T>(x: T) {}\n");
        let defs = collect_definitions(&lx);
        for name in ["plan_a", "PlanB", "PLAN_C", "PlanD", "generic"] {
            assert!(defs.contains(name), "missing {name} in {defs:?}");
        }
        assert!(!defs.contains("fn") && !defs.contains("u32"));
    }

    #[test]
    fn plan_symbol_must_resolve() {
        let defs: BTreeSet<String> = ["real_plan".to_string()].into_iter().collect();
        let good = "//! disjointness: chunk plan (`real_plan`) — each worker owns a range.\n\
                    fn f() {}\n";
        assert!(check_plan_symbols("x.rs", &lex(good), &defs).is_empty());
        // A path-qualified or called symbol still resolves by last segment.
        let qualified = "//! disjointness: via `crate::plans::real_plan(n)` ranges.\nfn f() {}\n";
        assert!(check_plan_symbols("x.rs", &lex(qualified), &defs).is_empty());
        let stale = "//! disjointness: chunk plan (`gone_plan`) — stale reference.\nfn f() {}\n";
        let f = check_plan_symbols("x.rs", &lex(stale), &defs);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_PLAN_SYMBOL);
        let unnamed = "//! disjointness: writes are disjoint, trust us.\nfn f() {}\n";
        assert_eq!(check_plan_symbols("x.rs", &lex(unnamed), &defs).len(), 1);
    }

    #[test]
    fn plan_symbol_headers_span_continuation_lines() {
        let defs: BTreeSet<String> = ["real_plan".to_string()].into_iter().collect();
        // The symbol sits on the continuation line of the header.
        let wrapped = "//! disjointness: chunked-claim plan — every write below stays inside\n\
                       //! the range `real_plan` hands the claiming worker.\n\nfn f() {}\n";
        assert!(check_plan_symbols("x.rs", &lex(wrapped), &defs).is_empty());
        // A prose *mention* mid-sentence is not a header and never fires.
        let mention = "//! files carry a `//! disjointness:` header (see DESIGN.md).\nfn f() {}\n";
        assert!(check_plan_symbols("x.rs", &lex(mention), &defs).is_empty());
    }

    #[test]
    fn shared_slice_needs_header() {
        let bad = "use hipa_core::disjoint::SharedSlice;\nfn f() {}\n";
        assert_eq!(check_disjointness_header("x.rs", &lex(bad)).len(), 1);
        let good = "//! disjointness: fixed per-thread vertex ranges.\n\
                    use hipa_core::disjoint::SharedSlice;\nfn f() {}\n";
        assert!(check_disjointness_header("x.rs", &lex(good)).is_empty());
        // An empty header does not count.
        let empty = "//! disjointness:\nuse hipa_core::disjoint::SharedSlice;\n";
        assert_eq!(check_disjointness_header("x.rs", &lex(empty)).len(), 1);
    }
}
