//! The four project lint rules over a lexed source file.
//!
//! All rules are *syntactic*: they see code tokens and comment text, not
//! types. That keeps the pass dependency-free and fast, at the cost of two
//! documented approximations: rule 3 keys on the `SharedSlice` identifier
//! appearing in a file (not on resolved method receivers), and rule 4 keys
//! on `Ordering::<variant>` token paths (the atomic variant names do not
//! collide with `std::cmp::Ordering`'s).

use crate::lexer::Lexed;

/// A single audit violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

pub const RULE_UNSAFE_SAFETY: &str = "unsafe-needs-safety-comment";
pub const RULE_RAW_PTR: &str = "raw-pointer-confinement";
pub const RULE_DISJOINTNESS: &str = "shared-slice-needs-contract-header";
pub const RULE_ORDERING: &str = "atomic-ordering-discipline";
pub const RULE_STATIC_MUT: &str = "no-static-mut-or-no-mangle";

/// Modules allowed to contain raw-pointer casts, `transmute`, or
/// `UnsafeCell`: the one audited aliasing primitive, the prefetch-hint
/// helper (a single bounds-checked `as *const i8` for `_mm_prefetch`),
/// plus the vendored shims (third-party stand-ins, reviewed as a unit).
pub const RAW_PTR_ALLOWLIST: &[&str] =
    &["crates/core/src/disjoint.rs", "crates/core/src/prefetch.rs", "crates/shims/"];

/// Files exempt from the `//! disjointness:` header requirement: the module
/// that *defines* `SharedSlice` (its contract is the module itself).
pub const DISJOINTNESS_EXEMPT: &[&str] = &["crates/core/src/disjoint.rs"];

/// Registered Acquire/Release/AcqRel sites, as (path suffix, justification)
/// pairs. Currently empty: the codebase synchronises with barriers and
/// scoped joins, so no hand-rolled acquire/release pairing exists. Register
/// new pairs here — both sides — when one is introduced.
pub const PAIRED_ORDERING_ALLOWLIST: &[(&str, &str)] = &[];

/// The atomic memory-ordering variant names (disjoint from
/// `std::cmp::Ordering`'s `Less`/`Equal`/`Greater`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Matches a workspace-relative path against an allowlist pattern: a
/// trailing `/` means "anything under this directory", otherwise the
/// pattern must name the file exactly.
fn path_matches(path: &str, pat: &str) -> bool {
    if pat.ends_with('/') {
        path.starts_with(pat)
    } else {
        path == pat
    }
}

fn allowlisted(path: &str, list: &[&str]) -> bool {
    list.iter().any(|pat| path_matches(path, pat))
}

/// True when `line` carries one of `markers` in a comment on the same line,
/// or in the contiguous run of comment / blank / attribute lines
/// immediately above it.
fn annotated(lx: &Lexed, line: usize, markers: &[&str]) -> bool {
    let hit = |text: &str| markers.iter().any(|m| text.contains(m));
    if hit(&lx.line(line).comment) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let li = lx.line(l);
        if hit(&li.comment) {
            return true;
        }
        if li.has_code && !li.is_attr {
            return false;
        }
    }
    false
}

/// Rule 1: every `unsafe` token (block, fn, impl, trait) must carry a
/// `SAFETY:` comment — same line or immediately above — or, for declared
/// `unsafe fn`s, a `# Safety` doc section.
pub fn check_unsafe_safety(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut last_line = 0usize;
    for t in &lx.tokens {
        if t.text != "unsafe" || t.line == last_line {
            continue;
        }
        last_line = t.line;
        if !annotated(lx, t.line, &["SAFETY:", "# Safety"]) {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: RULE_UNSAFE_SAFETY,
                msg: "`unsafe` without a `SAFETY:` comment immediately above (or a \
                      `# Safety` doc section for declarations)"
                    .to_string(),
            });
        }
    }
    out
}

/// Rule 2: raw-pointer casts (`as *const` / `as *mut`), `transmute`, and
/// `UnsafeCell` are confined to the allowlisted audited modules.
pub fn check_raw_ptr_confinement(path: &str, lx: &Lexed) -> Vec<Finding> {
    if allowlisted(path, RAW_PTR_ALLOWLIST) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        let what = match t.text.as_str() {
            "transmute" => Some("`transmute`"),
            "UnsafeCell" => Some("`UnsafeCell`"),
            "as" => {
                let is_cast = toks.get(i + 1).is_some_and(|n| n.text == "*")
                    && toks.get(i + 2).is_some_and(|n| n.text == "const" || n.text == "mut");
                if is_cast {
                    Some("raw-pointer cast")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: RULE_RAW_PTR,
                msg: format!(
                    "{what} outside the audited aliasing modules \
                     (allowlist: {RAW_PTR_ALLOWLIST:?})"
                ),
            });
        }
    }
    out
}

/// Rule 3: a file that touches `SharedSlice` must carry a module-level
/// `//! disjointness:` contract header naming the partition plan that makes
/// its write indices disjoint.
pub fn check_disjointness_header(path: &str, lx: &Lexed) -> Vec<Finding> {
    if allowlisted(path, DISJOINTNESS_EXEMPT) {
        return Vec::new();
    }
    let Some(first) = lx.tokens.iter().find(|t| t.text == "SharedSlice") else {
        return Vec::new();
    };
    let has_header = (1..=lx.num_lines()).any(|l| {
        let c = &lx.line(l).comment;
        c.split("disjointness:").nth(1).is_some_and(|rest| !rest.trim().is_empty())
    });
    if has_header {
        return Vec::new();
    }
    vec![Finding {
        file: path.to_string(),
        line: first.line,
        rule: RULE_DISJOINTNESS,
        msg: "file uses `SharedSlice` but has no `//! disjointness:` contract header \
              naming the partition plan that keeps its writes disjoint"
            .to_string(),
    }]
}

/// Rule 4: atomic `Ordering` discipline. `Relaxed` sites must carry an
/// `ordering:` annotation comment (the project reserves them for
/// work-claim/statistics counters); `Acquire`/`Release`/`AcqRel` must be
/// registered in [`PAIRED_ORDERING_ALLOWLIST`]; `SeqCst` is always flagged.
pub fn check_ordering_discipline(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        if toks[i].text != "Ordering" {
            continue;
        }
        let is_path = toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":");
        let Some(variant) = toks.get(i + 3) else { continue };
        if !is_path || !ATOMIC_ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        let line = variant.line;
        match variant.text.as_str() {
            "SeqCst" => out.push(Finding {
                file: path.to_string(),
                line,
                rule: RULE_ORDERING,
                msg: "`SeqCst` is flagged: no engine invariant needs sequential \
                      consistency — use `Relaxed` with an `ordering:` annotation, or a \
                      registered Acquire/Release pair"
                    .to_string(),
            }),
            "Acquire" | "Release" | "AcqRel" => {
                let registered =
                    PAIRED_ORDERING_ALLOWLIST.iter().any(|(pat, _)| path_matches(path, pat));
                if !registered {
                    out.push(Finding {
                        file: path.to_string(),
                        line,
                        rule: RULE_ORDERING,
                        msg: format!(
                            "`{}` outside the registered acquire/release pairs — add the \
                             site (both sides of the pair) to PAIRED_ORDERING_ALLOWLIST",
                            variant.text
                        ),
                    });
                }
            }
            _ => {
                // Relaxed
                if !annotated(lx, line, &["ordering:"]) {
                    out.push(Finding {
                        file: path.to_string(),
                        line,
                        rule: RULE_ORDERING,
                        msg: "`Relaxed` without an `ordering:` annotation comment stating \
                              why no payload ordering is required"
                            .to_string(),
                    });
                }
            }
        }
    }
    out
}

/// Rule 5: no mutable process-global state or linkage escapes. `static mut`
/// is banned outright (the project's shared mutation goes through
/// `SharedSlice` or atomics, both auditable); `#[no_mangle]` is banned
/// because an unmangled export bypasses the crate boundary the other rules
/// audit along. No allowlist — neither construct has a sanctioned use here.
pub fn check_static_mut(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "static" if toks.get(i + 1).is_some_and(|n| n.text == "mut") => {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: RULE_STATIC_MUT,
                    msg: "`static mut` is banned: use an atomic, a lock, or a \
                          `SharedSlice` with a documented disjointness contract"
                        .to_string(),
                });
            }
            // Only flag the attribute form; an identifier named `no_mangle`
            // in ordinary code has no linkage effect, and attributes are the
            // only place the token appears in practice.
            "no_mangle" if lx.line(t.line).is_attr => {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: RULE_STATIC_MUT,
                    msg: "`#[no_mangle]` is banned: unmangled exports escape the \
                          audited crate boundary"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
    out
}

/// Runs all five rules over one file.
pub fn check_file(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = check_unsafe_safety(path, lx);
    out.extend(check_raw_ptr_confinement(path, lx));
    out.extend(check_disjointness_header(path, lx));
    out.extend(check_ordering_discipline(path, lx));
    out.extend(check_static_mut(path, lx));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn unsafe_with_safety_above_passes() {
        let lx = lex("fn f() {\n    // SAFETY: disjoint per thread.\n    unsafe { g() }\n}\n");
        assert!(check_unsafe_safety("x.rs", &lx).is_empty());
    }

    #[test]
    fn unsafe_with_attr_between_passes() {
        let lx = lex("// SAFETY: fine.\n#[inline]\nunsafe fn g() {}\n");
        assert!(check_unsafe_safety("x.rs", &lx).is_empty());
    }

    #[test]
    fn doc_safety_section_passes() {
        let lx =
            lex("/// Does a thing.\n///\n/// # Safety\n/// Caller upholds X.\nunsafe fn g() {}\n");
        assert!(check_unsafe_safety("x.rs", &lx).is_empty());
    }

    #[test]
    fn bare_unsafe_fails() {
        let lx = lex("fn f() {\n    let y = 1;\n    unsafe { g() }\n}\n");
        let f = check_unsafe_safety("x.rs", &lx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn relaxed_needs_annotation() {
        let src = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(check_ordering_discipline("x.rs", &lex(src)).len(), 1);
        let ok = "fn f(c: &AtomicUsize) {\n    // ordering: relaxed (claim counter)\n    \
                  c.fetch_add(1, Ordering::Relaxed);\n}";
        assert!(check_ordering_discipline("x.rs", &lex(ok)).is_empty());
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let lx = lex("fn f(a: u32, b: u32) -> std::cmp::Ordering { std::cmp::Ordering::Less }");
        assert!(check_ordering_discipline("x.rs", &lx).is_empty());
    }

    #[test]
    fn seqcst_always_flagged() {
        let lx = lex("fn f(c: &AtomicUsize) { c.load(Ordering::SeqCst); }");
        assert_eq!(check_ordering_discipline("x.rs", &lx).len(), 1);
    }

    #[test]
    fn raw_ptr_confined() {
        let src = "fn f(x: &mut [u8]) { let _p = x as *mut [u8]; }";
        assert_eq!(check_raw_ptr_confinement("crates/graph/src/csr.rs", &lex(src)).len(), 1);
        assert!(check_raw_ptr_confinement("crates/core/src/disjoint.rs", &lex(src)).is_empty());
        assert!(check_raw_ptr_confinement("crates/shims/rayon/src/lib.rs", &lex(src)).is_empty());
    }

    #[test]
    fn multiplication_after_as_is_not_a_cast() {
        let lx = lex("fn f(x: usize, y: usize) -> usize { (x as usize) * y }");
        assert!(check_raw_ptr_confinement("crates/graph/src/csr.rs", &lx).is_empty());
    }

    #[test]
    fn static_mut_is_flagged() {
        let lx = lex("static mut COUNTER: usize = 0;\n");
        let f = check_static_mut("x.rs", &lx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_STATIC_MUT);
    }

    #[test]
    fn static_lifetime_is_not_static_mut() {
        let lx = lex("fn f(x: &'static mut u32) -> &'static str { \"s\" }\n");
        assert!(check_static_mut("x.rs", &lx).is_empty());
        let imm = lex("static OK: usize = 0;\n");
        assert!(check_static_mut("x.rs", &imm).is_empty());
    }

    #[test]
    fn no_mangle_attr_is_flagged_but_comment_is_not() {
        let lx = lex("#[no_mangle]\npub extern \"C\" fn f() {}\n");
        assert_eq!(check_static_mut("x.rs", &lx).len(), 1);
        let c = lex("// mentions no_mangle in prose only\nfn f() {}\n");
        assert!(check_static_mut("x.rs", &c).is_empty());
    }

    #[test]
    fn shared_slice_needs_header() {
        let bad = "use hipa_core::disjoint::SharedSlice;\nfn f() {}\n";
        assert_eq!(check_disjointness_header("x.rs", &lex(bad)).len(), 1);
        let good = "//! disjointness: fixed per-thread vertex ranges.\n\
                    use hipa_core::disjoint::SharedSlice;\nfn f() {}\n";
        assert!(check_disjointness_header("x.rs", &lex(good)).is_empty());
        // An empty header does not count.
        let empty = "//! disjointness:\nuse hipa_core::disjoint::SharedSlice;\n";
        assert_eq!(check_disjointness_header("x.rs", &lex(empty)).len(), 1);
    }
}
