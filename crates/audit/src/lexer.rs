//! A minimal hand-rolled Rust lexer — just enough structure for the audit's
//! lint rules, with no dependency on `syn` or the registry.
//!
//! The scanner separates *code tokens* (identifiers, numbers, punctuation)
//! from *comment text* and *string/char literal contents*, so rules never
//! fire on the word `unsafe` inside a doc comment or a test string. It also
//! records, per source line, whether the line carries any code, whether that
//! code is an attribute (`#[...]` / `#![...]`), and the concatenated comment
//! text — which is what the "SAFETY: comment immediately above" and
//! "ordering: annotation" checks walk over.

/// One code token: an identifier/number, or a single punctuation character.
#[derive(Debug, Clone)]
pub struct Token {
    pub text: String,
    /// 1-indexed source line the token starts on.
    pub line: usize,
}

/// Per-line classification (1-indexed; index 0 is a dummy).
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// The line carries at least one code character (token or literal).
    pub has_code: bool,
    /// The first code character on the line starts an attribute (`#`).
    pub is_attr: bool,
    /// Concatenated text of all comments touching this line.
    pub comment: String,
}

/// A lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub lines: Vec<LineInfo>,
}

impl Lexed {
    pub fn line(&self, l: usize) -> &LineInfo {
        &self.lines[l]
    }

    pub fn num_lines(&self) -> usize {
        self.lines.len().saturating_sub(1)
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        let n_lines = src.lines().count() + 2;
        Scanner {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Lexed { tokens: Vec::new(), lines: vec![LineInfo::default(); n_lines] },
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn mark_code(&mut self, first_char: u8) {
        let l = self.line;
        if !self.out.lines[l].has_code {
            self.out.lines[l].is_attr = first_char == b'#';
            self.out.lines[l].has_code = true;
        }
    }

    fn push_comment_char(&mut self, c: u8) {
        if c != b'\n' {
            let l = self.line;
            self.out.lines[l].comment.push(c as char);
        }
    }

    fn line_comment(&mut self) {
        // Both slashes already consumed.
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            let c = self.bump();
            self.push_comment_char(c);
        }
    }

    fn block_comment(&mut self) {
        // The opening `/*` is already consumed; block comments nest.
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else {
                let c = self.bump();
                self.push_comment_char(c);
            }
        }
    }

    /// Consumes a (possibly raw, possibly byte) string literal. `hashes` is
    /// the number of `#`s in a raw string's delimiter, 0 for plain strings.
    fn string_literal(&mut self, raw: bool, hashes: usize) {
        loop {
            if self.pos >= self.src.len() {
                return;
            }
            let c = self.peek(0);
            if !raw && c == b'\\' {
                self.bump();
                self.bump();
                continue;
            }
            if c == b'"' {
                self.bump();
                if !raw {
                    return;
                }
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == b'#' {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
                continue;
            }
            let c = self.bump();
            if c == b'\n' {
                // Continuation lines of a multi-line literal count as code
                // so the SAFETY-walk stops at them.
                let l = self.line;
                self.out.lines[l].has_code = true;
            }
        }
    }

    /// Consumes a `'` that may start a char literal or a lifetime.
    fn quote(&mut self) {
        // Lifetime: 'ident not closed by another quote.
        if self.peek(0).is_ascii_alphabetic() || self.peek(0) == b'_' {
            let mut ahead = 1;
            while self.peek(ahead).is_ascii_alphanumeric() || self.peek(ahead) == b'_' {
                ahead += 1;
            }
            if self.peek(ahead) != b'\'' {
                // A lifetime: consume the identifier, emit nothing.
                for _ in 0..ahead {
                    self.bump();
                }
                return;
            }
        }
        // Char literal: consume until the closing quote, honouring escapes.
        loop {
            if self.pos >= self.src.len() {
                return;
            }
            let c = self.bump();
            match c {
                b'\\' => {
                    self.bump();
                }
                b'\'' => return,
                _ => {}
            }
        }
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => {
                    self.bump();
                    self.bump();
                    self.line_comment();
                }
                b'/' if self.peek(1) == b'*' => {
                    self.bump();
                    self.bump();
                    self.block_comment();
                }
                b'"' => {
                    self.mark_code(c);
                    self.bump();
                    self.string_literal(false, 0);
                }
                b'\'' => {
                    self.mark_code(c);
                    self.bump();
                    self.quote();
                }
                b'r' | b'b' if self.is_raw_or_byte_literal() => {
                    self.mark_code(c);
                    self.consume_literal_prefix();
                }
                _ if c.is_ascii_alphabetic() || c == b'_' => {
                    self.mark_code(c);
                    let line = self.line;
                    let mut text = String::new();
                    while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                        text.push(self.bump() as char);
                    }
                    self.out.tokens.push(Token { text, line });
                }
                _ if c.is_ascii_digit() => {
                    self.mark_code(c);
                    let line = self.line;
                    let mut text = String::new();
                    while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                        text.push(self.bump() as char);
                    }
                    self.out.tokens.push(Token { text, line });
                }
                _ => {
                    self.mark_code(c);
                    let line = self.line;
                    self.bump();
                    self.out.tokens.push(Token { text: (c as char).to_string(), line });
                }
            }
        }
        self.out
    }

    /// True when the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`
    /// — i.e. a literal prefix rather than an identifier starting with r/b.
    fn is_raw_or_byte_literal(&self) -> bool {
        matches!(
            (self.peek(0), self.peek(1), self.peek(2)),
            (b'r', b'"' | b'#', _) | (b'b', b'"' | b'\'', _) | (b'b', b'r', b'"' | b'#')
        )
    }

    fn consume_literal_prefix(&mut self) {
        let mut raw = false;
        if self.peek(0) == b'b' {
            self.bump();
        }
        if self.peek(0) == b'r' {
            raw = true;
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            self.bump();
            hashes += 1;
        }
        match self.peek(0) {
            b'"' => {
                self.bump();
                self.string_literal(raw, hashes);
            }
            b'\'' => {
                self.bump();
                self.quote();
            }
            _ => {} // `r#ident` raw identifier: fall through, idents follow.
        }
    }
}

/// Lexes a source file.
pub fn lex(src: &str) -> Lexed {
    Scanner::new(src).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_not_tokens() {
        let lx = lex("// unsafe transmute\nlet x = 1; /* unsafe */\n");
        assert!(lx.tokens.iter().all(|t| t.text != "unsafe" && t.text != "transmute"));
        assert!(lx.line(1).comment.contains("unsafe"));
        assert!(!lx.line(1).has_code);
        assert!(lx.line(2).has_code);
        assert!(lx.line(2).comment.contains("unsafe"));
    }

    #[test]
    fn strings_and_chars_are_not_tokens() {
        let lx = lex("let s = \"unsafe { transmute }\"; let c = 'u'; let r = r#\"unsafe\"#;");
        assert!(lx.tokens.iter().all(|t| t.text != "unsafe" && t.text != "transmute"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let lx = lex("fn f<'a>(x: &'a str) { unsafe { g(x) } }");
        assert!(lx.tokens.iter().any(|t| t.text == "unsafe"));
    }

    #[test]
    fn attributes_are_flagged() {
        let lx = lex("#[inline]\nfn f() {}\n");
        assert!(lx.line(1).is_attr);
        assert!(!lx.line(2).is_attr);
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* a /* unsafe */ b */ fn f() {}");
        assert!(lx.tokens.iter().all(|t| t.text != "unsafe"));
        assert!(lx.tokens.iter().any(|t| t.text == "fn"));
    }

    #[test]
    fn token_lines_are_accurate() {
        let lx = lex("fn f() {\n    unsafe { x() }\n}\n");
        let t = lx.tokens.iter().find(|t| t.text == "unsafe").unwrap();
        assert_eq!(t.line, 2);
    }
}
