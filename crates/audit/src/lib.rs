//! `hipa-audit`: the workspace soundness audit.
//!
//! Every native engine's hot path rests on one hand-upheld invariant:
//! `SharedSlice` writes are structurally disjoint per thread (see
//! `crates/core/src/disjoint.rs` and DESIGN.md §10). This crate enforces the
//! *static* half of that contract with seven lint rules over a hand-rolled
//! lexer (no `syn`, no registry access):
//!
//! 1. every `unsafe` block/fn/impl carries a `SAFETY:` comment (or a
//!    `# Safety` doc section on declarations);
//! 2. raw-pointer casts, `transmute`, and `UnsafeCell` stay confined to the
//!    audited aliasing modules (`disjoint.rs`, `prefetch.rs`, the vendored
//!    shims);
//! 3. files touching `SharedSlice` carry a `//! disjointness:` contract
//!    header naming the partition plan that keeps their writes disjoint;
//! 4. atomic `Ordering` discipline: annotated `Relaxed` only, registered
//!    Acquire/Release pairs only, `SeqCst` flagged;
//! 5. no `static mut` and no `#[no_mangle]`: mutable process-globals and
//!    unmangled exports bypass the contracts the other rules audit;
//! 6. no bare `std::thread` parallelism outside the registered sites: a
//!    thread the shim pool did not spawn carries no vector clock, so the
//!    `check-hb` race detector cannot see its fork/join edges;
//! 7. every `//! disjointness:` header names (in backticks) a plan symbol
//!    that is actually defined somewhere in the tree — a cross-file check,
//!    so stale contracts citing deleted partitioners are caught.
//!
//! The *dynamic* half is the `check-disjoint` / `check-hb` features on
//! `hipa-core`: `SharedSlice` keeps per-element shadow state checked against
//! the shim's vector clocks and panics on unordered access (DESIGN.md §15).
//! Run both locally with:
//!
//! ```text
//! cargo run -q -p hipa-audit
//! cargo test -q --features check-hb
//! ```
#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{check_file, Finding};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Per-crate audit statistics, surfaced in the summary table.
#[derive(Debug, Default, Clone)]
pub struct CrateStats {
    pub files: usize,
    pub unsafe_tokens: usize,
    pub safety_comments: usize,
    pub shared_slice_files: usize,
    pub contract_headers: usize,
    pub relaxed_sites: usize,
    pub paired_sites: usize,
    pub seqcst_sites: usize,
}

/// The result of auditing a workspace tree.
#[derive(Debug, Default)]
pub struct AuditReport {
    pub findings: Vec<Finding>,
    pub stats: BTreeMap<String, CrateStats>,
    pub files_scanned: usize,
}

impl AuditReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the findings list (empty string when clean).
    pub fn render_findings(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.msg);
        }
        out
    }

    /// Renders the per-crate unsafe/SAFETY summary table.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>7} {:>7} {:>9} {:>8} {:>7} {:>7}",
            "crate", "files", "unsafe", "SAFETY", "disjfiles", "headers", "relaxed", "seqcst"
        );
        let mut total = CrateStats::default();
        for (krate, s) in &self.stats {
            let _ = writeln!(
                out,
                "{:<18} {:>5} {:>7} {:>7} {:>9} {:>8} {:>7} {:>7}",
                krate,
                s.files,
                s.unsafe_tokens,
                s.safety_comments,
                s.shared_slice_files,
                s.contract_headers,
                s.relaxed_sites,
                s.seqcst_sites
            );
            total.files += s.files;
            total.unsafe_tokens += s.unsafe_tokens;
            total.safety_comments += s.safety_comments;
            total.shared_slice_files += s.shared_slice_files;
            total.contract_headers += s.contract_headers;
            total.relaxed_sites += s.relaxed_sites;
            total.seqcst_sites += s.seqcst_sites;
        }
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>7} {:>7} {:>9} {:>8} {:>7} {:>7}",
            "TOTAL",
            total.files,
            total.unsafe_tokens,
            total.safety_comments,
            total.shared_slice_files,
            total.contract_headers,
            total.relaxed_sites,
            total.seqcst_sites
        );
        out
    }
}

/// Which crate a workspace-relative path belongs to, for the summary table.
fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/shims/") {
        return format!("shims/{}", rest.split('/').next().unwrap_or("?"));
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next().unwrap_or("?").to_string();
    }
    "hipa (root)".to_string()
}

/// Directories never scanned: build output, VCS, the audit's deliberately
/// violating lint fixtures, and generated experiment output.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Audits a single file's contents, returning its findings. Rule 7 resolves
/// plan symbols against this one file's definitions (the fixture tests use
/// this entry point); the tree walk below resolves against every file's.
pub fn audit_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lx = lexer::lex(src);
    let defs = rules::collect_definitions(&lx);
    let mut out = check_file(rel_path, &lx);
    out.extend(rules::check_plan_symbols(rel_path, &lx, &defs));
    out
}

/// Walks `root` and audits every `.rs` file under it. Two passes: the first
/// lexes everything and unions the definition sets (rule 7's symbol table),
/// the second runs the per-file rules plus the cross-file plan-symbol check.
pub fn audit_tree(root: &Path) -> std::io::Result<AuditReport> {
    let mut files = Vec::new();
    walk(root, &mut files);
    let mut lexed = Vec::with_capacity(files.len());
    let mut defs = std::collections::BTreeSet::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        let lx = lexer::lex(&src);
        defs.append(&mut rules::collect_definitions(&lx));
        lexed.push((rel, lx));
    }
    let mut report = AuditReport::default();
    for (rel, lx) in lexed {
        report.findings.extend(check_file(&rel, &lx));
        report.findings.extend(rules::check_plan_symbols(&rel, &lx, &defs));
        report.files_scanned += 1;

        let s = report.stats.entry(crate_of(&rel)).or_default();
        s.files += 1;
        s.unsafe_tokens += lx.tokens.iter().filter(|t| t.text == "unsafe").count();
        let mut has_shared = false;
        let mut has_header = false;
        for t in &lx.tokens {
            if t.text == "SharedSlice" {
                has_shared = true;
            }
        }
        for l in 1..=lx.num_lines() {
            let c = &lx.line(l).comment;
            s.safety_comments += c.matches("SAFETY:").count();
            if c.split("disjointness:").nth(1).is_some_and(|r| !r.trim().is_empty()) {
                has_header = true;
            }
        }
        s.shared_slice_files += usize::from(has_shared);
        s.contract_headers += usize::from(has_header);
        let toks = &lx.tokens;
        for i in 0..toks.len() {
            if toks[i].text == "Ordering"
                && toks.get(i + 1).is_some_and(|t| t.text == ":")
                && toks.get(i + 2).is_some_and(|t| t.text == ":")
            {
                match toks.get(i + 3).map(|t| t.text.as_str()) {
                    Some("Relaxed") => s.relaxed_sites += 1,
                    Some("Acquire" | "Release" | "AcqRel") => s.paired_sites += 1,
                    Some("SeqCst") => s.seqcst_sites += 1,
                    _ => {}
                }
            }
        }
    }
    report.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Locates the workspace root: walks up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
