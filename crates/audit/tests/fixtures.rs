//! Negative tests: each seeded fixture violation trips exactly its lint
//! rule — and the binary exits nonzero on a tree containing them. Positive
//! tests: the clean fixture and the real workspace audit clean.

use hipa_audit::rules::{
    RULE_BARE_THREAD, RULE_DISJOINTNESS, RULE_ORDERING, RULE_PLAN_SYMBOL, RULE_RAW_PTR,
    RULE_STATIC_MUT, RULE_UNSAFE_SAFETY,
};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn rules_fired(name: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> =
        hipa_audit::audit_source(name, &fixture(name)).iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn missing_safety_fixture_trips_rule_1_only() {
    assert_eq!(rules_fired("missing_safety.rs"), vec![RULE_UNSAFE_SAFETY]);
}

#[test]
fn stray_raw_ptr_fixture_trips_rule_2_only() {
    let fired = rules_fired("stray_raw_ptr.rs");
    assert!(fired.iter().all(|r| *r == RULE_RAW_PTR), "unexpected rules: {fired:?}");
    // All the triggers fire: two UnsafeCell mentions (the import and the
    // field), the cast, and the transmute.
    let findings = hipa_audit::audit_source("stray_raw_ptr.rs", &fixture("stray_raw_ptr.rs"));
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn missing_contract_fixture_trips_rule_3_only() {
    assert_eq!(rules_fired("missing_contract.rs"), vec![RULE_DISJOINTNESS]);
}

#[test]
fn bad_ordering_fixture_trips_rule_4_only() {
    let findings = hipa_audit::audit_source("bad_ordering.rs", &fixture("bad_ordering.rs"));
    assert!(findings.iter().all(|f| f.rule == RULE_ORDERING), "{findings:?}");
    // Relaxed-unannotated + unregistered Acquire + SeqCst.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn static_mut_fixture_trips_rule_5_only() {
    let findings = hipa_audit::audit_source("static_mut.rs", &fixture("static_mut.rs"));
    assert!(findings.iter().all(|f| f.rule == RULE_STATIC_MUT), "{findings:?}");
    // The mutable global and the unmangled export each fire once.
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn bare_thread_fixture_trips_rule_6_only() {
    let findings = hipa_audit::audit_source("bare_thread.rs", &fixture("bare_thread.rs"));
    assert!(findings.iter().all(|f| f.rule == RULE_BARE_THREAD), "{findings:?}");
    // spawn, scope, and Builder each fire once.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn stale_plan_fixture_trips_rule_7_only() {
    let findings = hipa_audit::audit_source("stale_plan.rs", &fixture("stale_plan.rs"));
    assert!(findings.iter().all(|f| f.rule == RULE_PLAN_SYMBOL), "{findings:?}");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].msg.contains("no_such_plan_symbol"), "{findings:?}");
}

#[test]
fn clean_fixture_is_clean() {
    assert!(rules_fired("clean.rs").is_empty());
}

fn workspace_root() -> PathBuf {
    hipa_audit::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/audit")
}

#[test]
fn the_workspace_tree_audits_clean() {
    let report = hipa_audit::audit_tree(&workspace_root()).expect("scan workspace");
    assert!(report.files_scanned > 50, "walker found too few files: {}", report.files_scanned);
    assert!(report.clean(), "workspace has audit findings:\n{}", report.render_findings());
    // Every unsafe site is covered: the audit would have flagged any gap, so
    // counts being nonzero here just documents that the rules saw real code.
    let core = report.stats.get("core").expect("core crate scanned");
    assert!(core.unsafe_tokens > 0 && core.safety_comments > 0);
}

#[test]
fn audit_binary_exits_nonzero_on_seeded_violations() {
    // Run the audit over the fixtures directory itself (the walker skips
    // `fixtures/` only *inside* a scanned tree root's subdirectories — so
    // copy them into a temp tree).
    let tmp = std::env::temp_dir().join(format!("hipa-audit-fixture-{}", std::process::id()));
    let src_dir = tmp.join("src");
    std::fs::create_dir_all(&src_dir).unwrap();
    for name in [
        "missing_safety.rs",
        "stray_raw_ptr.rs",
        "missing_contract.rs",
        "bad_ordering.rs",
        "static_mut.rs",
        "bare_thread.rs",
        "stale_plan.rs",
    ] {
        std::fs::write(src_dir.join(name), fixture(name)).unwrap();
    }
    let report = hipa_audit::audit_tree(&tmp).expect("scan temp tree");
    assert!(!report.clean());
    // One exercise of the exit path per rule: the binary maps findings to
    // ExitCode::FAILURE; here we assert the report drives that branch.
    let rules: std::collections::BTreeSet<_> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        [
            RULE_UNSAFE_SAFETY,
            RULE_RAW_PTR,
            RULE_DISJOINTNESS,
            RULE_ORDERING,
            RULE_STATIC_MUT,
            RULE_BARE_THREAD,
            RULE_PLAN_SYMBOL,
        ]
        .into_iter()
        .collect()
    );
    // And the real binary: nonzero on the seeded tree, zero on the
    // workspace.
    let bin = env!("CARGO_BIN_EXE_hipa-audit");
    let bad = std::process::Command::new(bin)
        .args(["--root", tmp.to_str().unwrap()])
        .output()
        .expect("run hipa-audit on seeded tree");
    assert_eq!(bad.status.code(), Some(1), "expected exit 1 on seeded violations");
    let good = std::process::Command::new(bin)
        .args(["--root", workspace_root().to_str().unwrap(), "--summary-only"])
        .output()
        .expect("run hipa-audit on workspace");
    assert_eq!(
        good.status.code(),
        Some(0),
        "expected exit 0 on the tree; stdout:\n{}",
        String::from_utf8_lossy(&good.stdout)
    );
    std::fs::remove_dir_all(&tmp).ok();
}
