// Fixture: rule 3 violation — uses SharedSlice with no contract header
// naming the partition plan. Rule 1 is satisfied so only rule 3 fires.
// (Never compiled; scanned by tests/fixtures.rs only.)

use hipa_core::disjoint::SharedSlice;

fn main() {
    let mut v = vec![0u32; 8];
    let s = SharedSlice::new(&mut v);
    // SAFETY: single-threaded (fixture).
    unsafe { s.write(0, 1) };
}
