//! Seeded violation for rule 5 only: a mutable process-global and an
//! unmangled export, with none of the other rules' triggers present.

static mut GLOBAL_TICKS: u64 = 0;

#[no_mangle]
pub extern "C" fn hipa_tick() -> u64 {
    1
}
