// Fixture: rule 2 violations — raw-pointer cast, transmute, and UnsafeCell
// outside the audited aliasing modules. Rule 1 is satisfied so only rule 2
// fires. (Never compiled; scanned by tests/fixtures.rs only.)

use std::cell::UnsafeCell;

struct Cell(UnsafeCell<u32>);

fn main() {
    let mut x = 7u32;
    let p = &mut x as *mut u32;
    // SAFETY: p is a valid unique pointer (fixture).
    unsafe { *p = 8 };
    // SAFETY: u32 and i32 have identical layout (fixture).
    let _y: i32 = unsafe { std::mem::transmute(x) };
}
