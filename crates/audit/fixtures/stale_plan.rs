//! Seeded violation for rule 7: the contract header below cites a partition
//! plan that is not defined anywhere in the scanned tree, so the promised
//! disjointness has no producer — a stale contract.
//! (Never compiled; scanned by tests/fixtures.rs only.)
//!
//! disjointness: phantom plan (`no_such_plan_symbol`) — claims each worker
//! writes only the vertex range handed out by a partitioner this tree does
//! not define.

use hipa_core::disjoint::SharedSlice;

fn touch(s: &SharedSlice<'_, u64>) {
    let _ = s.len();
}
