//! Seeded violation for rule 6: data-parallel work on bare `std::thread`.
//! Threads spawned here carry no vector clock, so the check-hb detector
//! cannot order anything they do — the lint forces this onto the shim pool.
//! (Never compiled; scanned by tests/fixtures.rs only.)

fn fan_out(xs: &mut [u64]) {
    std::thread::scope(|s| {
        for chunk in xs.chunks_mut(16) {
            s.spawn(|| chunk.iter_mut().for_each(|x| *x += 1));
        }
    });
    let handle = std::thread::spawn(|| 7u64);
    handle.join().unwrap();
    let builder = std::thread::Builder::new().name("rogue".into());
    drop(builder);
}
