//! disjointness: fixture plan (`single_owner_plan`) — one thread owns the
//! whole index range, so every write index is trivially disjoint.
//!
//! Positive control: satisfies all the lint rules.
//! (Never compiled; scanned by tests/fixtures.rs only.)

use hipa_core::disjoint::SharedSlice;
use std::sync::atomic::{AtomicUsize, Ordering};

fn single_owner_plan() {
    let mut v = vec![0u32; 8];
    let s = SharedSlice::new(&mut v);
    // SAFETY: single-threaded — no concurrent access to any element.
    unsafe { s.write(0, 1) };
    let c = AtomicUsize::new(0);
    // ordering: relaxed (statistics counter; no payload is published).
    c.fetch_add(1, Ordering::Relaxed);
}
