// Fixture: rule 4 violations — an unannotated Relaxed, an unregistered
// Acquire, and a SeqCst. (Never compiled; scanned by tests/fixtures.rs
// only.)

use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    let c = AtomicUsize::new(0);
    c.fetch_add(1, Ordering::Relaxed);
    let _ = c.load(Ordering::Acquire);
    let _ = c.load(Ordering::SeqCst);
}
