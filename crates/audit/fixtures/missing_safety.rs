// Fixture: rule 1 violation — an `unsafe` block with no SAFETY: comment.
// (Never compiled; scanned by tests/fixtures.rs only.)

fn main() {
    let mut v = vec![0u8; 4];
    let p = v.as_mut_ptr();
    unsafe { *p = 1 };
    let _ = v;
}
