//! The serializable trace of one engine run.
//!
//! A [`RunTrace`] is the snapshot a [`Recorder`](crate::Recorder) produces:
//! run metadata, raw phase spans (per thread, per iteration), per-iteration
//! gauges (the convergence trajectory), and named counters. Native and
//! simulated paths share the schema — native spans are wall-clock
//! nanoseconds (`time_unit: "ns"`), simulated spans are modelled cycles
//! (`time_unit: "cycles"`) — so the two sides of one engine are directly
//! diffable. DESIGN.md §9 documents the schema and the sim-counter mapping.

use crate::json::Json;

/// Span sentinel: `thread == RUN_LEVEL` marks a whole-region (not
/// per-thread) sample; `iter == RUN_LEVEL` marks a whole-run sample.
pub const RUN_LEVEL: i64 = -1;

/// One timed (or counted) sample. `value` is in the trace's `time_unit` for
/// timing phases; phases named `*.claims` are partition-claim counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSample {
    pub phase: String,
    /// Worker index, or [`RUN_LEVEL`] for a region-level sample.
    pub thread: i64,
    /// Iteration index, or [`RUN_LEVEL`] for a whole-run sample
    /// (e.g. `preprocess`).
    pub iter: i64,
    pub value: f64,
}

/// Per-iteration gauges: the convergence trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationGauge {
    pub iter: u64,
    /// L1 rank delta of this iteration (`hipa_core::convergence` semantics);
    /// `None` when the engine did not track residuals.
    pub residual: Option<f64>,
    /// Partitions processed this iteration (`None` for vertex-centric
    /// engines with no partition structure).
    pub active_partitions: Option<u64>,
}

/// Aggregate of all samples of one phase (derived, not serialized).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTotal {
    pub phase: String,
    pub samples: u64,
    pub total: f64,
    pub max: f64,
}

/// Run metadata handed to [`Recorder::finish`](crate::Recorder::finish).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Engine label as in the paper's tables ("HiPa", "p-PR", ...).
    pub engine: String,
    /// `"native"` or `"sim"`.
    pub path: &'static str,
    /// Machine preset name (sim paths only).
    pub machine: Option<String>,
    pub vertices: u64,
    pub edges: u64,
    pub threads: u64,
    /// Cache-partition count (`None` for vertex-centric engines).
    pub partitions: Option<u64>,
    pub iterations_run: u64,
    pub converged: bool,
}

/// Execution-path tag for native runs.
pub const PATH_NATIVE: &str = "native";
/// Execution-path tag for simulated runs.
pub const PATH_SIM: &str = "sim";

const SCHEMA: &str = "hipa-obs/v1";

/// Full structured trace of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    pub meta: TraceMeta,
    pub spans: Vec<SpanSample>,
    pub iterations: Vec<IterationGauge>,
    /// Named event counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl RunTrace {
    /// `"ns"` for native traces, `"cycles"` for simulated ones.
    pub fn time_unit(&self) -> &'static str {
        if self.meta.path == PATH_SIM {
            "cycles"
        } else {
            "ns"
        }
    }

    /// Counter lookup by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Per-iteration residuals in iteration order (the convergence
    /// trajectory).
    pub fn residuals(&self) -> Vec<Option<f64>> {
        self.iterations.iter().map(|g| g.residual).collect()
    }

    /// Sum of all samples of `phase`.
    pub fn phase_value(&self, phase: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut any = false;
        for s in &self.spans {
            if s.phase == phase {
                total += s.value;
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Aggregates samples per phase, first-seen order. Region-level samples
    /// are kept separate from per-thread ones (suffix `[region]`) so a
    /// doubly-recorded phase is not double-counted.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut out: Vec<PhaseTotal> = Vec::new();
        for s in &self.spans {
            let key = if s.thread == RUN_LEVEL && s.iter != RUN_LEVEL {
                format!("{} [region]", s.phase)
            } else {
                s.phase.clone()
            };
            match out.iter_mut().find(|t| t.phase == key) {
                Some(t) => {
                    t.samples += 1;
                    t.total += s.value;
                    t.max = t.max.max(s.value);
                }
                None => {
                    out.push(PhaseTotal { phase: key, samples: 1, total: s.value, max: s.value })
                }
            }
        }
        out
    }

    /// Flamegraph-style collapsed-stack export of the span samples: one
    /// `stack value` line per aggregated frame, stacks joined with `;`,
    /// values rounded to integers in the trace's [`Self::time_unit`]
    /// (`flamegraph.pl` / inferno input format).
    ///
    /// Stack shaping follows the repo-wide span conventions:
    ///
    /// * per-thread samples become leaves `engine;path;compute;PHASE;tJ`;
    /// * region samples (iteration-level, no thread) become
    ///   `engine;path;compute;PHASE`, skipped when the phase also has
    ///   per-thread samples (the threads carry the detail, and wall time
    ///   must not double under aggregate thread time);
    /// * whole-run samples become roots `engine;path;PHASE`, except the
    ///   `compute` rollup, which is dropped whenever any iteration-level
    ///   frame was emitted (its children already cover it);
    /// * dotted phases (`scatter.claims`, `pool.*`) are metric samples, not
    ///   time spans, and are excluded.
    pub fn to_collapsed(&self) -> String {
        let root = format!("{};{}", self.meta.engine, self.meta.path);
        let mut frames: Vec<(String, f64)> = Vec::new();
        let mut bump = |stack: String, v: f64| match frames.iter_mut().find(|(s, _)| *s == stack) {
            Some((_, total)) => *total += v,
            None => frames.push((stack, v)),
        };
        let mut threaded_phases: Vec<&str> = Vec::new();
        let mut iter_level = false;
        for s in &self.spans {
            if s.phase.contains('.') {
                continue;
            }
            if s.thread != RUN_LEVEL {
                if !threaded_phases.contains(&s.phase.as_str()) {
                    threaded_phases.push(&s.phase);
                }
                iter_level = true;
            } else if s.iter != RUN_LEVEL {
                iter_level = true;
            }
        }
        for s in &self.spans {
            if s.phase.contains('.') {
                continue;
            }
            if s.thread != RUN_LEVEL {
                bump(format!("{root};compute;{};t{}", s.phase, s.thread), s.value);
            } else if s.iter != RUN_LEVEL {
                if !threaded_phases.contains(&s.phase.as_str()) {
                    bump(format!("{root};compute;{}", s.phase), s.value);
                }
            } else if !(s.phase == "compute" && iter_level) {
                bump(format!("{root};{}", s.phase), s.value);
            }
        }
        let mut out = String::new();
        for (stack, v) in frames {
            out.push_str(&format!("{stack} {}\n", v.round() as i64));
        }
        out
    }

    // ---- JSON ----

    fn to_value(&self) -> Json {
        let m = &self.meta;
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("engine".into(), Json::Str(m.engine.clone())),
            ("path".into(), Json::Str(m.path.into())),
            ("machine".into(), m.machine.as_ref().map_or(Json::Null, |s| Json::Str(s.clone()))),
            ("time_unit".into(), Json::Str(self.time_unit().into())),
            ("vertices".into(), Json::Num(m.vertices as f64)),
            ("edges".into(), Json::Num(m.edges as f64)),
            ("threads".into(), Json::Num(m.threads as f64)),
            ("partitions".into(), m.partitions.map_or(Json::Null, |p| Json::Num(p as f64))),
            ("iterations_run".into(), Json::Num(m.iterations_run as f64)),
            ("converged".into(), Json::Bool(m.converged)),
            (
                "counters".into(),
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(n, v)| Json::Arr(vec![Json::Str(n.clone()), Json::Num(*v as f64)]))
                        .collect(),
                ),
            ),
            (
                "iterations".into(),
                Json::Arr(
                    self.iterations
                        .iter()
                        .map(|g| {
                            Json::Obj(vec![
                                ("iter".into(), Json::Num(g.iter as f64)),
                                ("residual".into(), g.residual.map_or(Json::Null, Json::Num)),
                                (
                                    "active_partitions".into(),
                                    g.active_partitions.map_or(Json::Null, |p| Json::Num(p as f64)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spans".into(),
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("phase".into(), Json::Str(s.phase.clone())),
                                ("thread".into(), Json::Num(s.thread as f64)),
                                ("iter".into(), Json::Num(s.iter as f64)),
                                ("value".into(), Json::Num(s.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Compact JSON serialisation.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Serialises a set of traces as one JSON array (`compare --trace-out`,
    /// the `trace` census).
    pub fn array_to_json(traces: &[RunTrace]) -> String {
        Json::Arr(traces.iter().map(|t| t.to_value()).collect()).render()
    }

    fn from_value(v: &Json) -> Result<RunTrace, String> {
        // Forward compatibility contract: unknown object fields anywhere in
        // the document are skipped (every lookup below is by key), but a
        // schema-version mismatch is a hard error — a bump to `hipa-obs/v2`
        // signals changed semantics, not just added fields.
        match v.get("schema") {
            None => return Err(format!("missing 'schema' field (expected '{SCHEMA}')")),
            Some(s) => {
                let got = s.as_str().ok_or("'schema' not a string")?;
                if got != SCHEMA {
                    return Err(format!(
                        "unsupported trace schema '{got}': this build reads '{SCHEMA}'"
                    ));
                }
            }
        }
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field '{k}'"));
        let num = |k: &str| field(k)?.as_u64().ok_or_else(|| format!("field '{k}' not a count"));
        let meta = TraceMeta {
            engine: field("engine")?.as_str().ok_or("'engine' not a string")?.to_string(),
            path: match field("path")?.as_str() {
                Some(p) if p == PATH_SIM => PATH_SIM,
                Some(p) if p == PATH_NATIVE => PATH_NATIVE,
                other => return Err(format!("bad 'path': {other:?}")),
            },
            machine: field("machine")?.as_str().map(str::to_string),
            vertices: num("vertices")?,
            edges: num("edges")?,
            threads: num("threads")?,
            partitions: field("partitions")?.as_u64(),
            iterations_run: num("iterations_run")?,
            converged: field("converged")?.as_bool().ok_or("'converged' not a bool")?,
        };
        let counters = field("counters")?
            .as_arr()
            .ok_or("'counters' not an array")?
            .iter()
            .map(|pair| {
                let items = pair.as_arr().filter(|a| a.len() == 2).ok_or("bad counter pair")?;
                Ok((
                    items[0].as_str().ok_or("counter name not a string")?.to_string(),
                    items[1].as_u64().ok_or("counter value not a count")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let iterations = field("iterations")?
            .as_arr()
            .ok_or("'iterations' not an array")?
            .iter()
            .map(|g| {
                Ok(IterationGauge {
                    iter: g.get("iter").and_then(Json::as_u64).ok_or("gauge missing 'iter'")?,
                    residual: g.get("residual").and_then(Json::as_f64),
                    active_partitions: g.get("active_partitions").and_then(Json::as_u64),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let spans = field("spans")?
            .as_arr()
            .ok_or("'spans' not an array")?
            .iter()
            .map(|s| {
                Ok(SpanSample {
                    phase: s
                        .get("phase")
                        .and_then(Json::as_str)
                        .ok_or("span missing 'phase'")?
                        .to_string(),
                    thread: s.get("thread").and_then(Json::as_i64).ok_or("span 'thread'")?,
                    iter: s.get("iter").and_then(Json::as_i64).ok_or("span 'iter'")?,
                    value: s.get("value").and_then(Json::as_f64).ok_or("span 'value'")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunTrace { meta, spans, iterations, counters })
    }

    /// Parses one trace object.
    pub fn from_json(s: &str) -> Result<RunTrace, String> {
        Self::from_value(&Json::parse(s)?)
    }

    /// Parses a trace document that is either one object or an array of
    /// objects (the two shapes the CLI writes).
    pub fn parse_many(s: &str) -> Result<Vec<RunTrace>, String> {
        let v = Json::parse(s)?;
        match &v {
            Json::Arr(items) => items.iter().map(Self::from_value).collect(),
            _ => Ok(vec![Self::from_value(&v)?]),
        }
    }

    // ---- Human rendering ----

    /// Multi-section human-readable rendering (the `--bin trace`
    /// pretty-printer and the CLI use this).
    pub fn render(&self) -> String {
        let m = &self.meta;
        let mut out = String::new();
        let machine = m.machine.as_deref().map(|s| format!(" on {s}")).unwrap_or_default();
        let parts = m.partitions.map(|p| format!(", {p} partitions")).unwrap_or_default();
        out.push_str(&format!(
            "[{} / {}{machine}] {} vertices, {} edges, {} threads{parts}\n\
             iterations: {}{} (unit: {})\n",
            m.engine,
            m.path,
            m.vertices,
            m.edges,
            m.threads,
            m.iterations_run,
            if m.converged { ", converged" } else { "" },
            self.time_unit(),
        ));

        let totals = self.phase_totals();
        if !totals.is_empty() {
            let mut t =
                hipa_report::Table::new("phases", &["phase", "samples", "total", "mean", "max"]);
            for pt in &totals {
                let f = |v: f64| self.fmt_value(&pt.phase, v);
                t.row(vec![
                    pt.phase.clone(),
                    pt.samples.to_string(),
                    f(pt.total),
                    f(pt.total / pt.samples as f64),
                    f(pt.max),
                ]);
            }
            out.push_str(&t.render());
        }

        if !self.iterations.is_empty() {
            let mut t = hipa_report::Table::new(
                "convergence trajectory",
                &["iter", "L1 residual", "active parts"],
            );
            let n = self.iterations.len();
            for (i, g) in self.iterations.iter().enumerate() {
                // Long trajectories: head + tail with an ellipsis row.
                if n > 40 && i >= 20 && i + 10 < n {
                    if i == 20 {
                        t.row(vec!["...".into(), "...".into(), "...".into()]);
                    }
                    continue;
                }
                t.row(vec![
                    g.iter.to_string(),
                    g.residual.map_or("-".into(), |r| format!("{r:.3e}")),
                    g.active_partitions.map_or("-".into(), |p| p.to_string()),
                ]);
            }
            out.push_str(&t.render());
        }

        if !self.counters.is_empty() {
            let mut t = hipa_report::Table::new("counters", &["counter", "value"]);
            for (name, v) in &self.counters {
                t.row(vec![name.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// Formats a span value: claim phases are integer counts, native phases
    /// humanised wall time, sim phases cycles.
    fn fmt_value(&self, phase: &str, v: f64) -> String {
        if phase.contains(".claims") {
            format!("{v:.0}")
        } else if self.time_unit() == "ns" {
            fmt_ns(v)
        } else {
            format!("{v:.3e}")
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RunTrace {
        RunTrace {
            meta: TraceMeta {
                engine: "HiPa".into(),
                path: PATH_NATIVE,
                machine: None,
                vertices: 1024,
                edges: 8192,
                threads: 4,
                partitions: Some(16),
                iterations_run: 2,
                converged: true,
            },
            spans: vec![
                SpanSample {
                    phase: "preprocess".into(),
                    thread: RUN_LEVEL,
                    iter: RUN_LEVEL,
                    value: 1500.0,
                },
                SpanSample { phase: "scatter".into(), thread: 0, iter: 0, value: 100.5 },
                SpanSample { phase: "scatter".into(), thread: 1, iter: 0, value: 200.0 },
                SpanSample { phase: "gather".into(), thread: 0, iter: 0, value: 50.0 },
                SpanSample { phase: "scatter".into(), thread: RUN_LEVEL, iter: 1, value: 310.0 },
            ],
            iterations: vec![
                IterationGauge { iter: 0, residual: Some(0.25), active_partitions: Some(16) },
                IterationGauge { iter: 1, residual: None, active_partitions: None },
            ],
            counters: vec![("mem.reads".into(), 12345), ("partition_claims".into(), 64)],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = sample_trace();
        let parsed = RunTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn array_round_trip() {
        let t = sample_trace();
        let doc = RunTrace::array_to_json(&[t.clone(), t.clone()]);
        let parsed = RunTrace::parse_many(&doc).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], t);
        // A single object also parses via parse_many.
        assert_eq!(RunTrace::parse_many(&t.to_json()).unwrap(), vec![t]);
    }

    #[test]
    fn phase_totals_aggregate_and_separate_region_samples() {
        let t = sample_trace();
        let totals = t.phase_totals();
        let scatter = totals.iter().find(|p| p.phase == "scatter").unwrap();
        assert_eq!(scatter.samples, 2);
        assert!((scatter.total - 300.5).abs() < 1e-12);
        assert!((scatter.max - 200.0).abs() < 1e-12);
        let region = totals.iter().find(|p| p.phase == "scatter [region]").unwrap();
        assert_eq!(region.samples, 1);
        assert!((region.total - 310.0).abs() < 1e-12);
    }

    #[test]
    fn collapsed_export_shapes_stacks_and_aggregates() {
        let mut t = sample_trace();
        t.spans.push(SpanSample { phase: "scatter".into(), thread: 0, iter: 1, value: 99.5 });
        t.spans.push(SpanSample {
            phase: "compute".into(),
            thread: RUN_LEVEL,
            iter: RUN_LEVEL,
            value: 700.0,
        });
        t.spans.push(SpanSample { phase: "scatter.claims".into(), thread: 0, iter: 0, value: 8.0 });
        let folded = t.to_collapsed();
        let lines: Vec<&str> = folded.lines().collect();
        // preprocess is a root; compute's rollup is dropped (its children
        // carry the detail); the dotted metric is excluded.
        assert!(lines.contains(&"HiPa;native;preprocess 1500"));
        assert!(!folded.contains("claims"));
        assert!(!lines.iter().any(|l| l.starts_with("HiPa;native;compute ")));
        // scatter thread 0 aggregates across iterations (100.5 + 99.5).
        assert!(lines.contains(&"HiPa;native;compute;scatter;t0 200"), "{folded}");
        assert!(lines.contains(&"HiPa;native;compute;scatter;t1 200"));
        assert!(lines.contains(&"HiPa;native;compute;gather;t0 50"));
        // The scatter region sample is skipped: per-thread samples exist.
        assert!(!lines.iter().any(|l| l.starts_with("HiPa;native;compute;scatter ")), "{folded}");
    }

    #[test]
    fn collapsed_export_falls_back_to_region_and_run_frames() {
        let mut t = sample_trace();
        // Drop the per-thread samples: only preprocess + a scatter region
        // sample remain, plus a compute rollup.
        t.spans.retain(|s| s.thread == RUN_LEVEL);
        t.spans.push(SpanSample {
            phase: "compute".into(),
            thread: RUN_LEVEL,
            iter: RUN_LEVEL,
            value: 700.0,
        });
        let folded = t.to_collapsed();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"HiPa;native;compute;scatter 310"), "{folded}");
        // compute rollup still dropped: an iteration-level frame exists.
        assert!(!lines.iter().any(|l| l.starts_with("HiPa;native;compute ")));
        // With no iteration-level frames at all, the rollup survives.
        t.spans.retain(|s| s.iter == RUN_LEVEL);
        let folded = t.to_collapsed();
        assert!(folded.lines().any(|l| l == "HiPa;native;compute 700"), "{folded}");
    }

    #[test]
    fn counter_and_residual_lookups() {
        let t = sample_trace();
        assert_eq!(t.counter("mem.reads"), Some(12345));
        assert_eq!(t.counter("nope"), None);
        assert_eq!(t.residuals(), vec![Some(0.25), None]);
        assert_eq!(t.phase_value("gather"), Some(50.0));
        assert_eq!(t.phase_value("apply"), None);
    }

    #[test]
    fn render_contains_key_sections() {
        let out = sample_trace().render();
        assert!(out.contains("HiPa / native"));
        assert!(out.contains("scatter"));
        assert!(out.contains("convergence trajectory"));
        assert!(out.contains("partition_claims"));
        assert!(out.contains("2.500e-1") || out.contains("2.500e-01"), "{out}");
    }

    #[test]
    fn unknown_fields_skip_but_schema_bumps_reject() {
        let t = sample_trace();
        // Unknown top-level and nested fields are ignored.
        let doc = t
            .to_json()
            .replacen('{', "{\"x_future\":[1,{\"nested\":true}],", 1)
            .replace("\"phase\":", "\"x_span_ext\":null,\"phase\":");
        assert_eq!(RunTrace::from_json(&doc).unwrap(), t);
        // A schema bump is a hard, named error.
        let bumped = t.to_json().replace("hipa-obs/v1", "hipa-obs/v2");
        let err = RunTrace::from_json(&bumped).unwrap_err();
        assert!(err.contains("hipa-obs/v2") && err.contains("hipa-obs/v1"), "{err}");
        // A missing schema field is rejected too (every writer emits it).
        let stripped = t.to_json().replacen("\"schema\":\"hipa-obs/v1\",", "", 1);
        assert!(RunTrace::from_json(&stripped).unwrap_err().contains("schema"));
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(RunTrace::from_json("{}").is_err());
        assert!(RunTrace::from_json("[1,2]").is_err());
        let mut t = sample_trace();
        t.meta.machine = Some("skylake".into());
        let doc = t.to_json().replace("\"sim\"", "\"warp\"");
        let _ = doc; // path is "native" here; just check an invalid path string
        assert!(RunTrace::from_json(&t.to_json().replace("\"native\"", "\"warp\"")).is_err());
    }
}
