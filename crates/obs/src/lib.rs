//! `hipa-obs` — zero-overhead-when-off metrics and structured tracing for
//! the HiPa reproduction.
//!
//! The paper argues through counters: remote-access fractions (Fig. 5),
//! migration ledgers (§3.3), LLC hits vs partition size (Fig. 7). The
//! simulator always had that visibility (`hipa_numasim::MemCounters`); this
//! crate gives the *native* paths the same per-phase, per-thread,
//! per-iteration breakdown, and snapshots either side into one serializable
//! [`RunTrace`] so a native run and its simulation are diffable.
//!
//! Three layers:
//! - [`Recorder`] — the front-end engines write to: atomic [`Counter`]s,
//!   span timers (shared or per-thread via [`ThreadSpans`]), and
//!   per-iteration gauges. Disabled at run time (`Recorder::new(false)`) or
//!   at compile time (the `off` cargo feature) it is a no-op carrying no
//!   locks and reading no clocks.
//! - [`RunTrace`] — the snapshot: metadata, spans, convergence trajectory,
//!   counters; JSON (hand-rolled, registry-free) and human-table rendering.
//! - [`bridge`] — maps a [`hipa_numasim::SimReport`] onto the same counter
//!   namespace.
#![forbid(unsafe_code)]

pub mod bridge;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod trace;

pub use bridge::{record_sim_report, PoolCounters};
pub use hist::Histogram;
pub use json::Json;
pub use recorder::{Counter, CounterHandle, Recorder, SpanStart, ThreadSpans};
pub use trace::{
    IterationGauge, PhaseTotal, RunTrace, SpanSample, TraceMeta, PATH_NATIVE, PATH_SIM, RUN_LEVEL,
};
