//! Minimal JSON value, writer and parser.
//!
//! The build host has no registry access, so `hipa-obs` carries its own
//! ~200-line JSON layer instead of `serde_json`: enough to round-trip
//! [`RunTrace`](crate::RunTrace) losslessly. Numbers are stored as f64 and
//! written with Rust's shortest-round-trip formatting (`{:?}`), so
//! `parse(render(x)) == x` for every finite value; non-finite numbers are
//! rejected at write time (`RunTrace` uses `null` for absent gauges).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact serialisation (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                assert!(x.is_finite(), "JSON cannot represent {x}; use null");
                // Integers print without the trailing `.0` of `{:?}`.
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected a value at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "42", "-7", "0.5", "1e-5"] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn round_trips_structures() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("Hi\"Pa\n".into())),
            ("xs".into(), Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(true)])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [1.0 / 3.0, 1e-5_f64, 123456789.125, f64::MIN_POSITIVE] {
            let v = Json::Num(x);
            assert_eq!(Json::parse(&v.render()).unwrap().as_f64().unwrap(), x);
        }
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(Json::Num(1024.0).render(), "1024");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , \"x\\u0041\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str().unwrap(), "xA");
    }
}
