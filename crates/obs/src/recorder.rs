//! The recording front-end: counters, span timers, per-iteration gauges.
//!
//! A [`Recorder`] is either *live* (holds buffers behind mutexes) or a
//! *no-op* (`inner: None`) — the no-op is what every engine path gets when
//! tracing is disabled, and all its methods reduce to an `Option` check on
//! an immutable field, so the hot loops pay no atomics, no locks, and no
//! `Instant::now()` calls. The `off` cargo feature folds the constructor to
//! the no-op unconditionally, making the entire layer dead code at compile
//! time. A criterion bench (`obs_overhead`) holds the off-path to <1%
//! engine-throughput impact.
//!
//! Worker threads should not contend on the shared buffers once per sample;
//! they accumulate locally in a [`ThreadSpans`] and flush once when the
//! thread finishes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::{IterationGauge, RunTrace, SpanSample, TraceMeta};

/// A named atomic event counter. Increments are `Relaxed`: counts are exact
/// (fetch_add never loses updates) but impose no ordering on the payload.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn add(&self, n: u64) {
        // ordering: relaxed (statistics counter — exact count, no payload).
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        // ordering: relaxed (statistics read; totals are reported after the
        // parallel regions join).
        self.value.load(Ordering::Relaxed)
    }
}

/// Cloneable handle to a registered [`Counter`]; a handle from a disabled
/// recorder is empty and its methods do nothing.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    pub fn incr(&self) {
        self.add(1);
    }
}

/// Token from [`Recorder::start`] / [`ThreadSpans::start`]; `None` when the
/// recorder is disabled, so the off-path never reads the clock.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(Option<Instant>);

#[derive(Debug, Default)]
struct Buffers {
    spans: Mutex<Vec<SpanSample>>,
    gauges: Mutex<Vec<IterationGauge>>,
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
}

/// The recording front-end shared (by reference) across worker threads.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<Buffers>,
}

impl Recorder {
    /// A live recorder when `enabled` (and the crate was not built with the
    /// `off` feature); the no-op recorder otherwise.
    pub fn new(enabled: bool) -> Recorder {
        if cfg!(feature = "off") || !enabled {
            Recorder { inner: None }
        } else {
            Recorder { inner: Some(Buffers::default()) }
        }
    }

    /// The no-op recorder (same as `Recorder::new(false)`).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Begins a span; reads the clock only when enabled.
    pub fn start(&self) -> SpanStart {
        SpanStart(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Ends a span begun with [`start`](Self::start), recording elapsed
    /// nanoseconds. Pass [`RUN_LEVEL`] for `thread`/`iter` when the sample
    /// is not per-thread / per-iteration.
    pub fn end(&self, start: SpanStart, phase: &str, thread: i64, iter: i64) {
        if let (Some(buf), Some(t0)) = (&self.inner, start.0) {
            push_span(buf, phase, thread, iter, t0.elapsed().as_nanos() as f64);
        }
    }

    /// Records a span with an externally measured value (simulated cycles,
    /// pre-computed nanoseconds, claim counts).
    pub fn record(&self, phase: &str, thread: i64, iter: i64, value: f64) {
        if let Some(buf) = &self.inner {
            push_span(buf, phase, thread, iter, value);
        }
    }

    /// Records the per-iteration gauges (convergence trajectory).
    pub fn gauge(&self, iter: usize, residual: Option<f64>, active_partitions: Option<u64>) {
        if let Some(buf) = &self.inner {
            buf.gauges.lock().unwrap().push(IterationGauge {
                iter: iter as u64,
                residual,
                active_partitions,
            });
        }
    }

    /// Registers (or finds) a named counter and returns a handle to it.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let Some(buf) = &self.inner else {
            return CounterHandle(None);
        };
        let mut reg = buf.counters.lock().unwrap();
        if let Some((_, c)) = reg.iter().find(|(n, _)| n == name) {
            return CounterHandle(Some(Arc::clone(c)));
        }
        let c = Arc::new(Counter::default());
        reg.push((name.to_string(), Arc::clone(&c)));
        CounterHandle(Some(c))
    }

    /// Sets a counter to an externally computed total (sim bridge).
    pub fn set_counter(&self, name: &str, value: u64) {
        if let Some(c) = self.counter(name).0 {
            // Counters start at 0 and the bridge sets each name once.
            c.add(value.saturating_sub(c.get()));
        }
    }

    /// A thread-local span buffer for worker `thread`; accumulates samples
    /// without touching the shared mutexes until
    /// [`flush`](ThreadSpans::flush).
    pub fn thread_spans(&self, thread: usize) -> ThreadSpans {
        ThreadSpans { thread: thread as i64, enabled: self.enabled(), buf: Vec::new() }
    }

    /// Consumes the recorder into a [`RunTrace`]; `None` when disabled.
    /// Spans are sorted (iter, thread, insertion order preserved otherwise)
    /// and counters by name, so traces are deterministic across runs with
    /// the same schedule.
    pub fn finish(self, meta: TraceMeta) -> Option<RunTrace> {
        let buf = self.inner?;
        let mut spans = buf.spans.into_inner().unwrap();
        spans.sort_by_key(|a| (a.iter, a.thread));
        let mut gauges = buf.gauges.into_inner().unwrap();
        gauges.sort_by_key(|g| g.iter);
        let mut counters: Vec<(String, u64)> =
            buf.counters.into_inner().unwrap().into_iter().map(|(n, c)| (n, c.get())).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        Some(RunTrace { meta, spans, iterations: gauges, counters })
    }
}

fn push_span(buf: &Buffers, phase: &str, thread: i64, iter: i64, value: f64) {
    buf.spans.lock().unwrap().push(SpanSample { phase: phase.to_string(), thread, iter, value });
}

/// Per-worker span accumulator; see [`Recorder::thread_spans`].
#[derive(Debug)]
pub struct ThreadSpans {
    thread: i64,
    enabled: bool,
    buf: Vec<SpanSample>,
}

impl ThreadSpans {
    pub fn start(&self) -> SpanStart {
        SpanStart(self.enabled.then(Instant::now))
    }

    /// Ends a span begun with [`start`](Self::start) at iteration `iter`.
    pub fn end(&mut self, start: SpanStart, phase: &str, iter: usize) {
        if let Some(t0) = start.0 {
            self.record(phase, iter, t0.elapsed().as_nanos() as f64);
        }
    }

    /// Records an externally measured per-thread value.
    pub fn record(&mut self, phase: &str, iter: usize, value: f64) {
        if self.enabled {
            self.buf.push(SpanSample {
                phase: phase.to_string(),
                thread: self.thread,
                iter: iter as i64,
                value,
            });
        }
    }

    /// Appends the accumulated samples to the shared recorder — one lock
    /// acquisition per worker thread per run.
    pub fn flush(self, rec: &Recorder) {
        if let Some(buf) = &rec.inner {
            if !self.buf.is_empty() {
                buf.spans.lock().unwrap().extend(self.buf);
            }
        }
    }
}

/// Convenience: a [`TraceMeta`] with everything zeroed, for tests and
/// callers that fill fields incrementally.
impl Default for TraceMeta {
    fn default() -> TraceMeta {
        TraceMeta {
            engine: String::new(),
            path: crate::trace::PATH_NATIVE,
            machine: None,
            vertices: 0,
            edges: 0,
            threads: 0,
            partitions: None,
            iterations_run: 0,
            converged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RUN_LEVEL;

    #[test]
    fn disabled_recorder_produces_no_trace() {
        let rec = Recorder::new(false);
        assert!(!rec.enabled());
        let s = rec.start();
        rec.end(s, "scatter", 0, 0);
        rec.record("gather", 0, 0, 1.0);
        rec.gauge(0, Some(0.5), None);
        rec.counter("claims").incr();
        let mut ts = rec.thread_spans(3);
        let s2 = ts.start();
        ts.end(s2, "scatter", 0);
        ts.flush(&rec);
        assert!(rec.finish(TraceMeta::default()).is_none());
    }

    /// With the `off` feature, even an "enabled" recorder records nothing —
    /// the kill switch is compile-time.
    #[cfg(feature = "off")]
    #[test]
    fn off_feature_disables_enabled_recorder() {
        let rec = Recorder::new(true);
        assert!(!rec.enabled());
        rec.record("scatter", 0, 0, 1.0);
        assert!(rec.finish(TraceMeta::default()).is_none());
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn spans_and_gauges_are_captured_and_sorted() {
        let rec = Recorder::new(true);
        rec.record("gather", RUN_LEVEL, 1, 10.0);
        rec.record("scatter", 2, 0, 5.0);
        rec.record("scatter", 0, 0, 7.0);
        rec.gauge(1, Some(0.1), Some(4));
        rec.gauge(0, Some(0.2), Some(4));
        let trace = rec.finish(TraceMeta::default()).unwrap();
        let order: Vec<(i64, i64)> = trace.spans.iter().map(|s| (s.iter, s.thread)).collect();
        assert_eq!(order, vec![(0, 0), (0, 2), (1, RUN_LEVEL)]);
        assert_eq!(trace.iterations[0].iter, 0);
        assert_eq!(trace.iterations[1].residual, Some(0.1));
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn counters_register_once_and_accumulate() {
        let rec = Recorder::new(true);
        let a = rec.counter("claims");
        let b = rec.counter("claims");
        a.add(3);
        b.incr();
        rec.set_counter("mem.reads", 100);
        let trace = rec.finish(TraceMeta::default()).unwrap();
        assert_eq!(trace.counter("claims"), Some(4));
        assert_eq!(trace.counter("mem.reads"), Some(100));
        // Sorted by name.
        assert_eq!(trace.counters[0].0, "claims");
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn thread_spans_flush_once() {
        let rec = Recorder::new(true);
        rayon::scope(|scope| {
            for j in 0..4usize {
                let rec = &rec;
                scope.spawn(move |_| {
                    let mut ts = rec.thread_spans(j);
                    for it in 0..3usize {
                        ts.record("scatter", it, 1.0);
                    }
                    ts.flush(rec);
                });
            }
        });
        let trace = rec.finish(TraceMeta::default()).unwrap();
        assert_eq!(trace.spans.len(), 12);
        assert_eq!(trace.phase_value("scatter"), Some(12.0));
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn concurrent_counter_increments_are_exact() {
        let rec = Recorder::new(true);
        let handle = rec.counter("events");
        rayon::scope(|scope| {
            for _ in 0..8 {
                let h = handle.clone();
                scope.spawn(move |_| {
                    for _ in 0..10_000 {
                        h.incr();
                    }
                });
            }
        });
        let trace = rec.finish(TraceMeta::default()).unwrap();
        assert_eq!(trace.counter("events"), Some(80_000));
    }
}
