//! A lock-free fixed-bucket latency histogram.
//!
//! The serve layer records one sample per request (nanoseconds, but any
//! `u64` works) from many client threads concurrently and asks for
//! p50/p95/p99 afterwards. Buckets are HDR-style — a power-of-two exponent
//! with 16 linear sub-buckets — so the quantile error is bounded at ~6.25%
//! of the value, with a fixed 1024-counter footprint and no allocation on
//! the record path. Because buckets are plain commutative counters, the
//! histogram's state (and thus every quantile) depends only on the multiset
//! of recorded samples, never on thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two range (4 mantissa bits ⇒ ≤ 1/16 relative
/// quantile error).
const SUB: usize = 16;
/// Exponent ranges: values up to `2^64 - 1`.
const EXPS: usize = 64;
const BUCKETS: usize = EXPS * SUB;

/// Concurrent histogram; `record` from any thread, read quantiles whenever.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of a value: values below 16 get exact unit buckets, larger
/// ones land in (exponent, top-4-mantissa-bits).
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (e - 4)) & 0xF) as usize;
    (e - 3) * SUB + sub
}

/// Upper edge (inclusive) of a bucket — the value reported for quantiles
/// falling into it, an overestimate by at most one sub-bucket width.
fn upper_edge(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let e = b / SUB + 3;
    let sub = (b % SUB) as u128;
    // Lower edge is (16 + sub) << (e - 4); the bucket spans one sub-step.
    // u128 keeps the top exponent's edge from overflowing before saturation.
    (((SUB as u128 + sub + 1) << (e - 4)) - 1).min(u64::MAX as u128) as u64
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free; safe from any thread.
    pub fn record(&self, v: u64) {
        // ordering: relaxed (commutative statistics counters — totals are
        // read after the recording threads are joined/drained, and no other
        // data is published through them).
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // ordering: relaxed (see above).
        self.count.fetch_add(1, Ordering::Relaxed);
        // ordering: relaxed (see above).
        self.sum.fetch_add(v, Ordering::Relaxed);
        // ordering: relaxed (see above).
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        // ordering: relaxed (statistics read after recording settled).
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        // ordering: relaxed (statistics read after recording settled).
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        // ordering: relaxed (statistics read after recording settled).
        self.max.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Merges `other` into `self`, bucket-wise (saturating adds). The state
    /// is a plain commutative counter vector, so merging is equivalent to
    /// having recorded both sample multisets into one histogram — every
    /// merged quantile keeps the documented ≤6.25% relative error bound.
    /// Safe concurrently with `record` on either side (a racing sample lands
    /// wholly before or wholly after the merge of its bucket).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            // ordering: relaxed (commutative statistics counters; totals are
            // read after recording settles, no payload is published).
            let v = theirs.load(Ordering::Relaxed);
            if v != 0 {
                saturating_acc(mine, v);
            }
        }
        // ordering: relaxed (see above).
        saturating_acc(&self.count, other.count.load(Ordering::Relaxed));
        // ordering: relaxed (see above).
        saturating_acc(&self.sum, other.sum.load(Ordering::Relaxed));
        // ordering: relaxed (see above).
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A frozen copy of the current state (the serve sampler's per-tick
    /// snapshot primitive): a fresh histogram with `other == self` merged in.
    pub fn snapshot(&self) -> Histogram {
        let h = Histogram::new();
        h.merge(self);
        h
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper edge of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample (so `quantile(0.5)` is an
    /// upper bound on the median within one sub-bucket). Exact for values
    /// `< 16`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            // ordering: relaxed (statistics read after recording settled).
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return upper_edge(b);
            }
        }
        self.max()
    }
}

/// Saturating (never wrapping) atomic accumulate — merged histograms clamp
/// at `u64::MAX` instead of silently restarting a bucket from zero.
fn saturating_acc(c: &AtomicU64, v: u64) {
    // ordering: relaxed (commutative statistics counter, no payload).
    let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_add(v)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_are_monotone_and_aligned() {
        // Every value maps to a bucket whose upper edge is >= the value and
        // within the promised relative error.
        for v in (0u64..4096).chain([1 << 20, (1 << 40) + 12345, u64::MAX]) {
            let b = bucket_of(v);
            let hi = upper_edge(b);
            assert!(hi >= v || b == BUCKETS - 1, "v={v} b={b} hi={hi}");
            if v >= 16 && b < BUCKETS - 1 {
                assert!((hi - v) as f64 <= v as f64 / 16.0 + 1.0, "v={v} hi={hi}");
            }
        }
        // Bucket index is monotone in the value.
        let mut prev = 0;
        for v in 0u64..100_000 {
            let b = bucket_of(v);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 5, 5, 5, 9, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), 45);
        assert_eq!(h.mean(), 5);
    }

    #[test]
    fn quantiles_bound_the_true_percentile() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, truth) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let est = h.quantile(q);
            assert!(est >= truth, "q={q}: {est} < {truth}");
            assert!(est as f64 <= truth as f64 * 1.07 + 1.0, "q={q}: {est} too far above {truth}");
        }
    }

    #[test]
    fn concurrent_recording_is_exact_in_count() {
        let h = Histogram::new();
        rayon::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move |_| {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 97);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert!(h.quantile(1.0) >= h.max());
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [0u64, 3, 17, 1000, 1 << 30] {
            a.record(v);
            combined.record(v);
        }
        for v in [5u64, 5, 900, u64::MAX] {
            b.record(v);
            combined.record(v);
        }
        let merged = a.snapshot();
        merged.merge(&b);
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.sum(), combined.sum());
        assert_eq!(merged.max(), combined.max());
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), combined.quantile(q), "q={q}");
        }
        // Merging an empty histogram is a no-op; `a` itself is untouched.
        let before = merged.count();
        merged.merge(&Histogram::new());
        assert_eq!(merged.count(), before);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let c = AtomicU64::new(u64::MAX - 3);
        saturating_acc(&c, 10);
        // ordering: relaxed (single-threaded test, no payload published)
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
        // Sum saturation end-to-end: two near-max sums clamp, not wrap.
        let a = Histogram::new();
        a.record(u64::MAX);
        let b = a.snapshot();
        b.merge(&a); // sum would overflow 2^64
        assert_eq!(b.sum(), u64::MAX);
        assert_eq!(b.count(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merged quantiles are exactly those of a histogram that recorded
        /// the union multiset, and stay within the documented ≤6.25%
        /// relative error of the true percentile of the union.
        #[test]
        fn merged_quantiles_stay_within_error_bound(
            xs in prop::collection::vec(0u64..1_000_000, 1..200),
            ys in prop::collection::vec(0u64..1_000_000, 1..200),
            q in 0.0f64..1.0,
        ) {
            let hx = Histogram::new();
            let hy = Histogram::new();
            let combined = Histogram::new();
            for &v in &xs {
                hx.record(v);
                combined.record(v);
            }
            for &v in &ys {
                hy.record(v);
                combined.record(v);
            }
            let merged = Histogram::new();
            merged.merge(&hx);
            merged.merge(&hy);
            prop_assert_eq!(merged.count(), combined.count());
            prop_assert_eq!(merged.sum(), combined.sum());
            prop_assert_eq!(merged.max(), combined.max());
            for qq in [0.0, 0.5, 0.9, 0.99, 1.0, q] {
                prop_assert_eq!(merged.quantile(qq), combined.quantile(qq));
            }
            // True percentile of the union multiset (the sample the
            // quantile's bucket contains).
            let mut all: Vec<u64> = xs.iter().chain(&ys).copied().collect();
            all.sort_unstable();
            let target = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let truth = all[target - 1];
            let est = merged.quantile(q);
            prop_assert!(est >= truth, "quantile must upper-bound the sample: {est} < {truth}");
            prop_assert!(
                est as f64 <= truth as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "error bound exceeded: est {est} vs truth {truth}"
            );
        }
    }
}
