//! Bridges `numasim`'s machine-level counters into the `RunTrace` schema,
//! so native and simulated runs of one engine are diffable side by side.
//!
//! Counter naming: memory-hierarchy events are `mem.*` (matching the
//! `MemCounters` field names), scheduler events keep their `SimReport`
//! names, and the rayon shim's pool statistics land under `pool.*` (via
//! [`PoolCounters`]). DESIGN.md §9 tabulates the mapping.

use hipa_numasim::SimReport;

use crate::Recorder;

/// Copies every `SimReport` counter into the recorder. No-op when the
/// recorder is disabled.
pub fn record_sim_report(rec: &Recorder, report: &SimReport) {
    if !rec.enabled() {
        return;
    }
    let m = &report.mem;
    for (name, value) in [
        ("mem.reads", m.reads),
        ("mem.writes", m.writes),
        ("mem.l1_hits", m.l1_hits),
        ("mem.l2_hits", m.l2_hits),
        ("mem.llc_hits", m.llc_hits),
        ("mem.dram_local", m.dram_local),
        ("mem.dram_remote", m.dram_remote),
        ("mem.wb_local", m.wb_local),
        ("mem.wb_remote", m.wb_remote),
        ("mem.atomics", m.atomics),
        ("mem.compute_ops", m.compute_ops),
        ("mem.prefetch", m.prefetches),
        ("threads_created", report.threads_created),
        ("migrations", report.migrations),
        ("phases", report.phases),
        ("bandwidth_bound_phases", report.bandwidth_bound_phases),
    ] {
        rec.set_counter(name, value);
    }
}

/// Bridges the rayon shim's process-wide scheduler statistics into a run's
/// `pool.*` trace counters: [`start`](PoolCounters::start) snapshots before
/// the engine's parallel work, [`finish`](PoolCounters::finish) records the
/// deltas (plus the pool width the engine ran with). Zero overhead when the
/// recorder is off: the disabled path never reads the statistics cells.
///
/// The shim's counters are cumulative across the whole process, so the
/// deltas attribute whatever pool activity happened *between* the two calls
/// to this run — exact for the single-engine benchmark processes the trace
/// census reads, approximate if unrelated pool work runs concurrently.
#[derive(Debug, Default)]
pub struct PoolCounters {
    start: Option<rayon::PoolStats>,
}

impl PoolCounters {
    /// Snapshots the pool statistics; a no-op (no snapshot, no atomics read)
    /// when the recorder is disabled.
    pub fn start(rec: &Recorder) -> PoolCounters {
        PoolCounters { start: rec.enabled().then(rayon::pool_stats) }
    }

    /// Records the deltas since [`start`](PoolCounters::start) and the
    /// engine's pool width into the recorder.
    pub fn finish(self, rec: &Recorder, width: u64) {
        let Some(s0) = self.start else {
            return;
        };
        let s1 = rayon::pool_stats();
        for (name, value) in [
            ("pool.width", width),
            ("pool.workers_spawned", s1.workers_spawned - s0.workers_spawned),
            ("pool.jobs", s1.jobs - s0.jobs),
            ("pool.tasks_claimed", s1.tasks_claimed - s0.tasks_claimed),
            ("pool.steals", s1.steals - s0.steals),
            ("pool.parks", s1.parks - s0.parks),
            ("pool.unparks", s1.unparks - s0.unparks),
        ] {
            rec.set_counter(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceMeta;
    use hipa_numasim::MemCounters;

    fn report() -> SimReport {
        SimReport {
            label: "HiPa".into(),
            machine: "skylake-4210".into(),
            cycles: 1e9,
            ghz: 2.2,
            line_bytes: 64,
            mem: MemCounters {
                reads: 100,
                writes: 50,
                dram_remote: 7,
                atomics: 3,
                prefetches: 11,
                ..Default::default()
            },
            threads_created: 40,
            migrations: 2,
            phases: 20,
            bandwidth_bound_phases: 5,
        }
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn report_counters_land_in_trace() {
        let rec = Recorder::new(true);
        record_sim_report(&rec, &report());
        let trace = rec.finish(TraceMeta::default()).unwrap();
        assert_eq!(trace.counter("mem.reads"), Some(100));
        assert_eq!(trace.counter("mem.dram_remote"), Some(7));
        assert_eq!(trace.counter("threads_created"), Some(40));
        assert_eq!(trace.counter("bandwidth_bound_phases"), Some(5));
        assert_eq!(trace.counter("mem.prefetch"), Some(11));
        assert_eq!(trace.counters.len(), 16);
    }

    #[test]
    fn disabled_recorder_ignores_report() {
        let rec = Recorder::new(false);
        record_sim_report(&rec, &report());
        assert!(rec.finish(TraceMeta::default()).is_none());
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn pool_counters_record_width_and_deltas() {
        let rec = Recorder::new(true);
        let pc = PoolCounters::start(&rec);
        // Drive some pool work between the snapshots.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {});
            }
        });
        pc.finish(&rec, 2);
        let trace = rec.finish(TraceMeta::default()).unwrap();
        assert_eq!(trace.counter("pool.width"), Some(2));
        assert!(trace.counter("pool.jobs").unwrap() >= 4);
        assert!(trace.counter("pool.workers_spawned").unwrap() >= 2);
        assert!(trace.counter("pool.tasks_claimed").is_some());
        assert!(trace.counter("pool.steals").is_some());
        assert!(trace.counter("pool.parks").is_some());
        assert!(trace.counter("pool.unparks").is_some());
    }

    #[test]
    fn disabled_recorder_skips_pool_snapshot() {
        let rec = Recorder::new(false);
        let pc = PoolCounters::start(&rec);
        pc.finish(&rec, 4);
        assert!(rec.finish(TraceMeta::default()).is_none());
    }
}
