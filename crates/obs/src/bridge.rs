//! Bridges `numasim`'s machine-level counters into the `RunTrace` schema,
//! so native and simulated runs of one engine are diffable side by side.
//!
//! Counter naming: memory-hierarchy events are `mem.*` (matching the
//! `MemCounters` field names), scheduler events keep their `SimReport`
//! names. DESIGN.md §9 tabulates the mapping.

use hipa_numasim::SimReport;

use crate::Recorder;

/// Copies every `SimReport` counter into the recorder. No-op when the
/// recorder is disabled.
pub fn record_sim_report(rec: &Recorder, report: &SimReport) {
    if !rec.enabled() {
        return;
    }
    let m = &report.mem;
    for (name, value) in [
        ("mem.reads", m.reads),
        ("mem.writes", m.writes),
        ("mem.l1_hits", m.l1_hits),
        ("mem.l2_hits", m.l2_hits),
        ("mem.llc_hits", m.llc_hits),
        ("mem.dram_local", m.dram_local),
        ("mem.dram_remote", m.dram_remote),
        ("mem.wb_local", m.wb_local),
        ("mem.wb_remote", m.wb_remote),
        ("mem.atomics", m.atomics),
        ("mem.compute_ops", m.compute_ops),
        ("threads_created", report.threads_created),
        ("migrations", report.migrations),
        ("phases", report.phases),
        ("bandwidth_bound_phases", report.bandwidth_bound_phases),
    ] {
        rec.set_counter(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceMeta;
    use hipa_numasim::MemCounters;

    fn report() -> SimReport {
        SimReport {
            label: "HiPa".into(),
            machine: "skylake-4210".into(),
            cycles: 1e9,
            ghz: 2.2,
            line_bytes: 64,
            mem: MemCounters {
                reads: 100,
                writes: 50,
                dram_remote: 7,
                atomics: 3,
                ..Default::default()
            },
            threads_created: 40,
            migrations: 2,
            phases: 20,
            bandwidth_bound_phases: 5,
        }
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn report_counters_land_in_trace() {
        let rec = Recorder::new(true);
        record_sim_report(&rec, &report());
        let trace = rec.finish(TraceMeta::default()).unwrap();
        assert_eq!(trace.counter("mem.reads"), Some(100));
        assert_eq!(trace.counter("mem.dram_remote"), Some(7));
        assert_eq!(trace.counter("threads_created"), Some(40));
        assert_eq!(trace.counter("bandwidth_bound_phases"), Some(5));
        assert_eq!(trace.counters.len(), 15);
    }

    #[test]
    fn disabled_recorder_ignores_report() {
        let rec = Recorder::new(false);
        record_sim_report(&rec, &report());
        assert!(rec.finish(TraceMeta::default()).is_none());
    }
}
