//! Plan-quality metrics: how well a hierarchical plan realises the paper's
//! balance goals (Eq. 2–4). Used by diagnostics, tests and the partitioning
//! example.

use crate::plan::HiPaPlan;

/// Balance metrics of a [`HiPaPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanQuality {
    /// max node edge count / ideal (|E|/N); 1.0 = perfect balance.
    pub node_edge_imbalance: f64,
    /// max thread edge count / ideal (|E|/threads), over non-empty threads.
    pub thread_edge_imbalance: f64,
    /// Smallest and largest per-thread partition-group sizes (`mⱼ`).
    pub min_partitions_per_thread: usize,
    pub max_partitions_per_thread: usize,
    /// Threads that received no partitions (possible when partitions are
    /// fewer than threads).
    pub idle_threads: usize,
}

/// Computes balance metrics for a plan.
pub fn plan_quality(plan: &HiPaPlan) -> PlanQuality {
    let nodes = plan.nodes.len().max(1);
    let threads = plan.total_threads().max(1);
    let ideal_node = plan.num_edges as f64 / nodes as f64;
    let ideal_thread = plan.num_edges as f64 / threads as f64;

    let max_node = plan.nodes.iter().map(|n| n.edges).max().unwrap_or(0) as f64;
    let mut max_thread = 0u64;
    let mut min_m = usize::MAX;
    let mut max_m = 0usize;
    let mut idle = 0usize;
    for (_, _, t) in plan.threads() {
        max_thread = max_thread.max(t.edges);
        let m = t.part_range.len();
        min_m = min_m.min(m);
        max_m = max_m.max(m);
        if m == 0 {
            idle += 1;
        }
    }
    PlanQuality {
        node_edge_imbalance: if ideal_node > 0.0 { max_node / ideal_node } else { 1.0 },
        thread_edge_imbalance: if ideal_thread > 0.0 {
            max_thread as f64 / ideal_thread
        } else {
            1.0
        },
        min_partitions_per_thread: if min_m == usize::MAX { 0 } else { min_m },
        max_partitions_per_thread: max_m,
        idle_threads: idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::hipa_plan;

    #[test]
    fn uniform_degrees_balance_perfectly() {
        let degs = vec![4u32; 256];
        let plan = hipa_plan(&degs, 2, 4, 16);
        let q = plan_quality(&plan);
        assert!((q.node_edge_imbalance - 1.0).abs() < 1e-9);
        assert!((q.thread_edge_imbalance - 1.0).abs() < 1e-9);
        assert_eq!(q.idle_threads, 0);
        assert_eq!(q.min_partitions_per_thread, 2);
        assert_eq!(q.max_partitions_per_thread, 2);
    }

    #[test]
    fn hot_vertex_shows_up_as_imbalance() {
        let mut degs = vec![1u32; 64];
        degs[0] = 1000;
        let plan = hipa_plan(&degs, 2, 2, 8);
        let q = plan_quality(&plan);
        // The hot partition cannot be split below one partition, so the
        // owning thread is overloaded.
        assert!(q.thread_edge_imbalance > 1.5, "{q:?}");
    }

    #[test]
    fn skewed_dataset_plans_are_reasonably_balanced() {
        let g = hipa_graph::datasets::small_test_graph(66);
        let plan = hipa_plan(g.out_degrees(), 2, 10, 64);
        let q = plan_quality(&plan);
        assert!(q.node_edge_imbalance < 1.6, "{q:?}");
        // Cache-partition granularity bounds how evenly threads can split.
        assert!(q.thread_edge_imbalance < 3.0, "{q:?}");
    }

    #[test]
    fn more_threads_than_partitions_idles_threads() {
        let degs = vec![1u32; 16];
        let plan = hipa_plan(&degs, 1, 8, 8); // 2 partitions, 8 threads
        let q = plan_quality(&plan);
        assert!(q.idle_threads >= 6);
    }
}
